//! Property test of the multi-worker engine's canonical effect merge.
//!
//! Each sampled case is a random cross-shard program on the raw simulation
//! engine: threads pinned to distinct shards run schedules of sleeps whose
//! durations *collide on purpose* (everything is a multiple of a few
//! microseconds, so many events share an instant), and at sampled points
//! they send messages to other shards' channels, wake other shards' threads
//! and spawn children. The observable record — per-receiver message
//! sequences with their arrival times, per-thread wake times, and the run's
//! final virtual time — must be bit-identical whether the program runs on
//! one worker (the historical serial engine), two, or four: the canonical
//! `(parent event seq, emission index)` merge makes the global event order a
//! pure function of the program, independent of how the instant's events
//! were interleaved across worker OS threads.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use dsm_pm2::sim::{
    channel_on, Engine, EngineConfig, SimDuration, SimReceiver, SimSender, SimTuning,
};

const SHARDS: u64 = 4;

/// One sampled step of a thread's schedule: (sleep slot multiplier 0..4,
/// action selector). Action: 0‑2 → send `(shard, step)` to channel
/// `(shard + 1 + sel) % SHARDS`; 3 → wake the next shard's thread; 4 → spawn
/// a child that sleeps one slot and sends one message home; 5+ → no action,
/// just the sleep.
type Step = (u64, u8);

/// The per-shard observation record: (messages in arrival order with their
/// arrival times, wake times of the shard's main thread).
type ShardLog = (Vec<((u64, u64), u64)>, Vec<u64>);

fn run(programs: &[Vec<Step>], workers: usize) -> (Vec<ShardLog>, u64, u64) {
    let mut engine = Engine::with_config(EngineConfig {
        tuning: SimTuning::default().with_workers(workers),
        ..EngineConfig::default()
    });
    let ctl = engine.ctl();

    // One channel per shard, receivers pinned to the channel's shard.
    let mut senders: Vec<SimSender<(u64, u64)>> = Vec::new();
    let mut receivers: Vec<Option<SimReceiver<(u64, u64)>>> = Vec::new();
    for shard in 0..SHARDS {
        let (tx, rx) = channel_on::<(u64, u64)>(ctl.clone(), shard);
        senders.push(tx);
        receivers.push(Some(rx));
    }

    // Count the messages each shard will receive so its receiver can stop.
    let mut expected = vec![0usize; SHARDS as usize];
    for (shard, program) in programs.iter().enumerate() {
        for &(_, sel) in program {
            match sel {
                0..=2 => {
                    let to = (shard as u64 + 1 + u64::from(sel)) % SHARDS;
                    expected[to as usize] += 1;
                }
                4 => expected[shard] += 1, // the spawned child sends home
                _ => {}
            }
        }
    }

    let logs: Vec<Arc<Mutex<ShardLog>>> = (0..SHARDS)
        .map(|_| Arc::new(Mutex::new((Vec::new(), Vec::new()))))
        .collect();

    // Receivers, one per shard, on the shard.
    for shard in 0..SHARDS as usize {
        let rx = receivers[shard].take().expect("receiver exists");
        let log = logs[shard].clone();
        let count = expected[shard];
        engine.spawn_on(shard as u64, format!("rx{shard}"), move |h| {
            for _ in 0..count {
                let msg = rx.recv(h);
                log.lock().0.push((msg, h.now().as_nanos()));
            }
        });
    }

    // Main thread of each shard, plus a tid registry so wake actions can
    // target the *next* shard's main thread (all registrations complete
    // during setup, before the engine runs).
    let tids: Arc<Mutex<Vec<Option<dsm_pm2::sim::ThreadId>>>> =
        Arc::new(Mutex::new(vec![None; SHARDS as usize]));
    for (shard, program) in programs.iter().enumerate() {
        let program = program.clone();
        let log = logs[shard].clone();
        let ctl2 = ctl.clone();
        let tids2 = Arc::clone(&tids);
        let senders = senders.clone();
        let tid = engine.spawn_on(shard as u64, format!("main{shard}"), move |h| {
            for (step, &(slot, sel)) in program.iter().enumerate() {
                // Colliding sleep quanta: many same-instant events.
                h.sleep(SimDuration::from_micros(5 * (slot + 1)));
                log.lock().1.push(h.now().as_nanos());
                match sel {
                    0..=2 => {
                        let to = (shard as u64 + 1 + u64::from(sel)) % SHARDS;
                        senders[to as usize].send_delayed(
                            h,
                            (shard as u64, step as u64),
                            SimDuration::from_micros(5),
                        );
                    }
                    3 => {
                        let target = (shard + 1) % SHARDS as usize;
                        if let Some(tid) = tids2.lock()[target] {
                            ctl2.wake_at(tid, h.now());
                        }
                    }
                    4 => {
                        let tx = senders[shard].clone();
                        h.spawn(format!("child{shard}-{step}"), move |h| {
                            h.sleep(SimDuration::from_micros(5));
                            tx.send(h, (u64::MAX, u64::MAX));
                        });
                    }
                    _ => {}
                }
            }
        });
        tids.lock()[shard] = Some(tid);
    }

    let report = engine.run().expect("program must terminate");
    let logs = logs.iter().map(|l| l.lock().clone()).collect();
    (logs, report.final_time.as_nanos(), report.threads_spawned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// The canonical merge order is independent of worker execution order:
    /// 1-, 2- and 4-worker runs of the same cross-shard program observe
    /// identical message orders, arrival times, wake times and final time.
    #[test]
    fn canonical_merge_is_independent_of_worker_count(
        programs in proptest::collection::vec(
            proptest::collection::vec((0u64..4, 0u8..8), 1..12),
            SHARDS as usize..(SHARDS as usize + 1),
        ),
    ) {
        let (logs1, t1, n1) = run(&programs, 1);
        for workers in [2usize, 4] {
            let (logs, t, n) = run(&programs, workers);
            prop_assert_eq!(
                &logs, &logs1,
                "observations diverged between 1 and {} workers", workers
            );
            prop_assert_eq!(t, t1, "final time diverged at {} workers", workers);
            prop_assert_eq!(n, n1, "spawn count diverged at {} workers", workers);
        }
    }
}
