//! Integration tests exercising the extension protocols (`li_hudak_fixed`,
//! `entry_sw`, `hlrc_notices`) and the SPLASH-2-style kernels through the
//! public facade, across every network profile — the portability claim of the
//! paper applied to protocols the paper did not ship.

use std::sync::Arc;

use parking_lot::Mutex;

use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;
use dsm_pm2::workloads::{lu, matmul, radix, sor};

fn setup(nodes: usize) -> (Engine, DsmRuntime, BuiltinProtocols, ExtensionProtocols) {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(nodes));
    let (builtins, extensions) = register_all_protocols(&rt);
    (engine, rt, builtins, extensions)
}

/// Every protocol (built-in and extension) runs the same producer/consumer
/// program unchanged on every network profile.
#[test]
fn every_protocol_runs_on_every_network_profile() {
    let protocol_names = [
        "li_hudak",
        "li_hudak_fixed",
        "erc_sw",
        "hbrc_mw",
        "hlrc_notices",
        "entry_sw",
    ];
    for profile in dsm_pm2::pm2::profiles::all() {
        for name in protocol_names {
            let engine = Engine::new();
            let rt = DsmRuntime::new(&engine, Pm2Config::new(2, profile.clone()));
            let (_b, ext) = register_all_protocols(&rt);
            rt.set_default_protocol(rt.protocol_by_name(name).unwrap());
            let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
            let lock = rt.create_lock(Some(NodeId(0)));
            ext.entry.bind(lock, addr, 4096);
            let b = rt.create_barrier(2, None);
            let seen = Arc::new(Mutex::new(0u64));

            rt.spawn_dsm_thread(NodeId(1), "producer", move |ctx| {
                ctx.dsm_lock(lock);
                ctx.write::<u64>(addr, 321);
                ctx.dsm_unlock(lock);
                ctx.dsm_barrier(b);
            });
            let s = seen.clone();
            rt.spawn_dsm_thread(NodeId(0), "consumer", move |ctx| {
                ctx.dsm_barrier(b);
                ctx.dsm_lock(lock);
                *s.lock() = ctx.read::<u64>(addr);
                ctx.dsm_unlock(lock);
            });
            let mut engine = engine;
            engine.run().unwrap();
            assert_eq!(
                *seen.lock(),
                321,
                "protocol {name} failed on profile {}",
                profile.name
            );
        }
    }
}

/// The fixed distributed manager answers requests in a bounded number of hops
/// (at most one forward), whereas the dynamic manager may chase longer
/// probable-owner chains after ownership has moved around.
#[test]
fn fixed_manager_bounds_request_forwarding() {
    fn forwards_per_fault(name: &str) -> f64 {
        let engine = Engine::new();
        let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(4));
        let (_b, _e) = register_all_protocols(&rt);
        rt.set_default_protocol(rt.protocol_by_name(name).unwrap());
        let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let b = rt.create_barrier(4, None);
        // Ownership hops from node to node, then everyone reads.
        for node in 0..4usize {
            rt.spawn_dsm_thread(NodeId(node), format!("w{node}"), move |ctx| {
                for round in 0..4usize {
                    if round == node {
                        ctx.write::<u64>(addr, (node + 1) as u64);
                    }
                    ctx.dsm_barrier(b);
                }
                let _ = ctx.read::<u64>(addr);
            });
        }
        let mut engine = engine;
        engine.run().unwrap();
        let stats = rt.stats().snapshot();
        stats.request_forwards as f64 / stats.total_faults().max(1) as f64
    }
    let fixed = forwards_per_fault("li_hudak_fixed");
    assert!(
        fixed <= 1.0 + 1e-9,
        "fixed manager must forward at most once per fault, got {fixed}"
    );
    // The dynamic manager is also efficient here, but the fixed manager must
    // never be worse than one hop.
    let dynamic = forwards_per_fault("li_hudak");
    assert!(dynamic >= 0.0);
}

/// The SPLASH-2-style kernels agree with their sequential oracles under the
/// extension protocols too (not just the built-in ones tested in the crate).
#[test]
fn splash_kernels_agree_with_oracles_under_extension_protocols() {
    let mm = matmul::MatmulConfig::small(2);
    let mm_oracle = matmul::sequential_checksum(mm.n);
    let r = matmul::run_matmul(&mm, "hlrc_notices");
    assert!(
        (r.checksum - mm_oracle).abs() < 1e-6,
        "matmul/hlrc_notices diverged"
    );

    let sor_config = sor::SorConfig::small(2);
    let sor_oracle = sor::sequential_checksum(&sor_config);
    let r = sor::run_sor(&sor_config, "li_hudak_fixed");
    assert!(
        (r.checksum - sor_oracle).abs() < 1e-6,
        "sor/li_hudak_fixed diverged"
    );

    let lu_config = lu::LuConfig::small(2);
    let lu_oracle = lu::sequential_checksum(lu_config.n);
    let r = lu::run_lu(&lu_config, "hlrc_notices");
    assert!(
        (r.checksum - lu_oracle).abs() < 1e-6,
        "lu/hlrc_notices diverged"
    );
}

/// Radix sort remains correct when the scatter phase runs under the fixed
/// distributed manager.
#[test]
fn radix_sorts_under_the_fixed_manager() {
    let config = radix::RadixConfig::small(2);
    let mut oracle = radix::input_keys(&config);
    oracle.sort_unstable();
    let result = radix::run_radix(&config, "li_hudak_fixed");
    assert_eq!(result.sorted, oracle);
}

/// Entry consistency produces strictly less protocol traffic than sequential
/// consistency on a lock-partitioned workload: only the pages bound to the
/// acquired lock ever move.
#[test]
fn entry_consistency_moves_only_the_bound_region() {
    fn traffic(name: &str) -> u64 {
        let (mut engine, rt, _b, ext) = setup(2);
        rt.set_default_protocol(rt.protocol_by_name(name).unwrap());
        // Two independent regions, each guarded by its own lock.
        let region_a = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let region_b = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock_a = rt.create_lock(Some(NodeId(0)));
        let lock_b = rt.create_lock(Some(NodeId(0)));
        ext.entry.bind(lock_a, region_a, 4096);
        ext.entry.bind(lock_b, region_b, 4096);
        // Node 1 only ever works on region A.
        rt.spawn_dsm_thread(NodeId(1), "worker", move |ctx| {
            for i in 0..5u64 {
                ctx.dsm_lock(lock_a);
                let v = ctx.read::<u64>(region_a);
                ctx.write::<u64>(region_a, v + i);
                ctx.dsm_unlock(lock_a);
            }
        });
        engine.run().unwrap();
        let stats = rt.stats().snapshot();
        stats.page_transfers + stats.diffs_sent + stats.invalidations
    }
    let entry = traffic("entry_sw");
    assert!(entry > 0);
    // Region B never moves under entry consistency.
    let (mut engine, rt, _b, ext) = setup(2);
    rt.set_default_protocol(ext.entry_sw);
    let region_a = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let region_b = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let lock_a = rt.create_lock(Some(NodeId(0)));
    let lock_b = rt.create_lock(Some(NodeId(0)));
    ext.entry.bind(lock_a, region_a, 4096);
    ext.entry.bind(lock_b, region_b, 4096);
    rt.spawn_dsm_thread(NodeId(1), "worker", move |ctx| {
        ctx.dsm_lock(lock_a);
        ctx.write::<u64>(region_a, 1);
        ctx.dsm_unlock(lock_a);
    });
    engine.run().unwrap();
    assert!(
        !rt.frames(NodeId(1)).has(region_b.page()),
        "the unguarded region must never be replicated to node 1"
    );
}

/// Failure injection: a deadlocked DSM program (mismatched barrier
/// participant count) is detected and reported by the engine rather than
/// hanging forever.
#[test]
fn mismatched_barrier_is_reported_as_a_deadlock() {
    let (mut engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let b = rt.create_barrier(3, None); // 3 parties but only 2 threads
    for node in 0..2usize {
        rt.spawn_dsm_thread(NodeId(node), format!("t{node}"), move |ctx| {
            ctx.dsm_barrier(b);
        });
    }
    let err = engine.run().unwrap_err();
    let msg = format!("{err:?}");
    assert!(
        msg.contains("Deadlock") || msg.contains("deadlock"),
        "expected a deadlock report, got {msg}"
    );
}

/// Failure injection: releasing a DSM lock that is not held is a programming
/// error and panics the offending thread (reported through the engine).
#[test]
fn releasing_an_unheld_lock_is_reported() {
    let (mut engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let lock = rt.create_lock(Some(NodeId(0)));
    rt.spawn_dsm_thread(NodeId(1), "bad", move |ctx| {
        ctx.dsm_unlock(lock);
    });
    let err = engine.run().unwrap_err();
    let msg = format!("{err:?}");
    assert!(
        msg.contains("not held") || msg.contains("Panic") || msg.contains("panic"),
        "expected the bad release to be reported, got {msg}"
    );
}
