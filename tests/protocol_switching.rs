//! Integration tests for §2.3 of the paper: several protocols coexisting in
//! one application, protocols assembled at run time, and switching the
//! protocol of a memory region between two barriers.

use std::sync::Arc;

use parking_lot::Mutex;

use dsm_pm2::core::{protolib, Access, CustomProtocol, DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;

fn setup(nodes: usize) -> (Engine, DsmRuntime, BuiltinProtocols, ExtensionProtocols) {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::sisci_sci(nodes));
    let (builtins, extensions) = register_all_protocols(&rt);
    (engine, rt, builtins, extensions)
}

/// The paper: "this can be achieved if needed through a careful
/// synchronization at the program level (e.g. through barriers)". A region
/// starts under `li_hudak`, is switched to `migrate_thread` between two
/// barriers, and the application keeps observing consistent values while the
/// protocol actually changes behaviour (pages stop moving, threads start
/// moving).
#[test]
fn region_switches_from_page_replication_to_thread_migration_at_a_barrier() {
    let (mut engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let b = rt.create_barrier(2, None);
    let observations = Arc::new(Mutex::new(Vec::new()));

    // Node 0 performs the switch while both threads are between barriers.
    let rt_for_switch = rt.clone();
    let obs = observations.clone();
    rt.spawn_dsm_thread(NodeId(0), "switcher", move |ctx| {
        ctx.write::<u64>(addr, 5);
        ctx.dsm_barrier(b);
        // Phase 1 (li_hudak) done on both nodes.
        ctx.dsm_barrier(b);
        // Quiescent point: no other thread touches the region here.
        let pages = rt_for_switch.switch_region_protocol(
            addr,
            4096,
            rt_for_switch.protocol_by_name("migrate_thread").unwrap(),
        );
        assert_eq!(pages, 1);
        ctx.dsm_barrier(b);
        // Phase 2 (migrate_thread).
        let v = ctx.read::<u64>(addr);
        obs.lock().push(("node0-after", v, ctx.node()));
        ctx.dsm_barrier(b);
    });

    let obs = observations.clone();
    let migrations = Arc::new(Mutex::new(0u64));
    let mig = migrations.clone();
    let state = rt.spawn_dsm_thread(NodeId(1), "worker", move |ctx| {
        ctx.dsm_barrier(b);
        // Phase 1: replicate the page to node 1 and read it there.
        let v = ctx.read::<u64>(addr);
        obs.lock().push(("node1-replicated", v, ctx.node()));
        assert_eq!(ctx.node(), NodeId(1), "li_hudak replicates, no migration");
        ctx.dsm_barrier(b);
        // Switch happens here (node 0 is the only one touching the table).
        ctx.dsm_barrier(b);
        // Phase 2: under migrate_thread the same access drags the thread to
        // the data instead of copying the page.
        let v = ctx.read::<u64>(addr);
        obs.lock().push(("node1-migrated", v, ctx.node()));
        *mig.lock() = ctx.pm2.state().migrations();
        ctx.dsm_barrier(b);
    });
    let _ = state;

    engine.run().unwrap();
    let observations = observations.lock();
    for &(label, v, _) in observations.iter() {
        assert_eq!(
            v, 5,
            "{label} must still observe the value written before the switch"
        );
    }
    let (_, _, node_after) = observations
        .iter()
        .find(|(l, _, _)| *l == "node1-migrated")
        .copied()
        .unwrap();
    assert_eq!(
        node_after,
        NodeId(0),
        "after the switch the worker thread migrates to the data"
    );
    assert!(*migrations.lock() >= 1);
}

/// Switching to the protocol a region already uses is a harmless no-op, and
/// switching an unknown region panics.
#[test]
fn switch_validates_its_inputs() {
    let (_engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(8192, DsmAttr::default());
    assert_eq!(rt.switch_region_protocol(addr, 8192, protos.li_hudak), 2);
    assert_eq!(
        rt.page_meta(addr.page()).protocol,
        protos.li_hudak,
        "identity switch keeps the protocol"
    );
}

#[test]
#[should_panic(expected = "not part of any DSM allocation")]
fn switching_an_unallocated_region_panics() {
    let (_engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(4096, DsmAttr::default());
    // One page past the end of the allocation.
    rt.switch_region_protocol(addr.add(4096), 4096, protos.li_hudak);
}

/// Values published before the switch remain visible after it, and a replica
/// that still carries an unflushed twin diff when the switch happens is
/// folded into the home copy rather than silently dropped.
/// Regression: a single-writer owner whose access was downgraded to
/// read-only (by serving a read copy) still holds the only current copy of
/// the page; the switch must consolidate that frame into the home instead of
/// dropping it with the replica.
#[test]
fn switch_preserves_a_downgraded_owners_copy() {
    let (mut engine, rt, protos, ext) = setup(3);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let b = rt.create_barrier(3, None);

    let rt_for_switch = rt.clone();
    let hlrc = ext.hlrc_notices;
    // Node 1 becomes the owner, then node 2's read downgrades node 1 to
    // read-only. The switch runs at the barrier; afterwards every node must
    // still observe node 1's value.
    rt.spawn_dsm_thread(NodeId(1), "writer", move |ctx| {
        ctx.write::<u64>(addr, 77);
        ctx.dsm_barrier(b);
        ctx.dsm_barrier(b);
        assert_eq!(ctx.read::<u64>(addr), 77);
    });
    rt.spawn_dsm_thread(NodeId(2), "reader", move |ctx| {
        ctx.dsm_barrier(b);
        assert_eq!(ctx.read::<u64>(addr), 77);
        ctx.dsm_barrier(b);
        assert_eq!(ctx.read::<u64>(addr), 77);
    });
    rt.spawn_dsm_thread(NodeId(0), "switcher", move |ctx| {
        ctx.dsm_barrier(b);
        // Wait for node 2's read to land (downgrading node 1) before
        // switching: the second barrier brackets the quiescent point.
        ctx.dsm_barrier(b);
        let switched = rt_for_switch.switch_region_protocol(addr, 4096, hlrc);
        assert_eq!(switched, 1);
        assert_eq!(ctx.read::<u64>(addr), 77);
    });
    engine
        .run()
        .expect("switch with downgraded owner completes");
}

#[test]
fn switch_preserves_values_and_folds_pending_diffs_into_the_home() {
    let (mut engine, rt, protos, _ext) = setup(2);
    rt.set_default_protocol(protos.hbrc_mw);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let page = addr.page();
    let b = rt.create_barrier(2, None);
    let seen = Arc::new(Mutex::new((0u64, 0u64)));

    // Simulate a node-1 replica with an unflushed modification, exactly the
    // state a multiple-writer protocol leaves between a write and the next
    // release: a twin plus a dirtied working copy.
    rt.frames(NodeId(1))
        .install(page, rt.frames(NodeId(0)).snapshot(page));
    rt.page_table(NodeId(1)).update(page, |e| {
        e.access = dsm_pm2::core::Access::Write;
        e.modified_since_release = true;
    });
    rt.frames(NodeId(1)).make_twin(page);
    let mut bytes = [0u8; 8];
    99u64.store_le_for_test(&mut bytes);
    rt.frames(NodeId(1)).write(page, 16, &bytes);

    let pages = rt.switch_region_protocol(addr, 4096, protos.li_hudak);
    assert_eq!(pages, 1);

    // After the switch: the home copy holds the folded modification, node 1
    // holds nothing, and the region runs under the new protocol.
    assert!(!rt.frames(NodeId(1)).has(page));
    assert_eq!(rt.page_meta(page).protocol, protos.li_hudak);

    let s = seen.clone();
    rt.spawn_dsm_thread(NodeId(0), "home-reader", move |ctx| {
        s.lock().0 = ctx.read::<u64>(addr.add(16));
        ctx.dsm_barrier(b);
    });
    let s = seen.clone();
    rt.spawn_dsm_thread(NodeId(1), "remote-reader", move |ctx| {
        ctx.dsm_barrier(b);
        s.lock().1 = ctx.read::<u64>(addr.add(16));
    });
    engine.run().unwrap();
    assert_eq!(
        *seen.lock(),
        (99, 99),
        "the pending diff reached the home across the switch"
    );
}

/// Little helper so the white-box test above can build raw page bytes without
/// depending on private APIs.
trait StoreLe {
    fn store_le_for_test(self, out: &mut [u8]);
}

impl StoreLe for u64 {
    fn store_le_for_test(self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }
}

/// §2.3: several protocols can be *defined* in one program and selected
/// dynamically without recompilation; a user-assembled protocol is usable
/// exactly like the built-in ones.
#[test]
fn user_defined_protocol_is_selected_dynamically() {
    let (mut engine, rt, protos, _ext) = setup(2);
    // A write-through-to-home protocol assembled from library routines: read
    // faults fetch a copy from the home, write faults fetch a writable copy,
    // no invalidations ever happen (single-phase programs only).
    let home_fetch = CustomProtocol::builder("home_fetch")
        .read_fault_handler(|ctx, fault| {
            let rt = ctx.runtime().clone();
            let node = ctx.node();
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
        })
        .write_fault_handler(|ctx, fault| {
            let rt = ctx.runtime().clone();
            let node = ctx.node();
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Write);
        })
        .read_server(|ctx, req| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Read);
        })
        .write_server(|ctx, req| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
        })
        .invalidate_server(|ctx, inv| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
        })
        .receive_page_server(|ctx, transfer| {
            let rt = ctx.runtime.clone();
            let node = ctx.local_node;
            protolib::install_received_page(ctx.sim, node, &rt, &transfer);
        })
        .build();
    let custom = rt.register_protocol(home_fetch);

    // Select the protocol "according to the arguments provided by the user
    // without any recompilation".
    let use_custom = true;
    rt.set_default_protocol(if use_custom { custom } else { protos.li_hudak });

    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let b = rt.create_barrier(2, None);
    let ok = Arc::new(Mutex::new(false));
    rt.spawn_dsm_thread(NodeId(0), "w", move |ctx| {
        ctx.write::<u32>(addr, 9);
        ctx.dsm_barrier(b);
    });
    let ok2 = ok.clone();
    rt.spawn_dsm_thread(NodeId(1), "r", move |ctx| {
        ctx.dsm_barrier(b);
        *ok2.lock() = ctx.read::<u32>(addr) == 9;
    });
    engine.run().unwrap();
    assert!(*ok.lock());
    assert_eq!(rt.protocol_by_name("home_fetch"), Some(custom));
}
