//! Property test: the FIFO-no-overtake invariant of the Madeleine transport
//! holds per directed link under *all three* wire backends.
//!
//! Each sampled case drives a 3-node network through a random message
//! program — random payload sizes (tiny control frames through multi-page
//! transfers), random inter-send gaps and two concurrent senders whose link
//! choices interleave — under a randomly chosen backend (`Ideal`,
//! `Contended`, or `Lossy` with a random seed and an aggressive drop rate).
//! Every message carries its (link, sequence) tag; the receivers must
//! observe, per directed link, exactly the sent sequence: nothing lost,
//! nothing duplicated, nothing overtaken — for `Lossy` that means the
//! retransmission + reorder machinery must reconstruct the FIFO stream
//! across drops and duplications.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use dsm_pm2::madeleine::{
    profiles, LossyConfig, Network, NodeId, Topology, TransportBackend, TransportTuning,
};
use dsm_pm2::sim::{Engine, SimDuration};

const NODES: usize = 3;

/// One sampled send: (sender 0..2, destination offset 1..=2, payload bytes,
/// gap to the next send in µs).
type Send = (usize, usize, usize, u32);

/// Tag carried by every message: (from, to, per-link sequence number).
type Tag = (usize, usize, u64);

fn backend_for(idx: usize, seed: u64) -> TransportTuning {
    match idx {
        0 => TransportTuning::ideal(),
        1 => TransportTuning::contended(),
        2 => TransportTuning {
            backend: TransportBackend::Lossy(LossyConfig {
                seed,
                drop_per_mille: 250,
                dup_per_mille: 100,
                rto_factor: 2,
            }),
        },
        _ => TransportTuning {
            backend: TransportBackend::Lossy(LossyConfig {
                seed,
                drop_per_mille: 600,
                dup_per_mille: 300,
                rto_factor: 1,
            }),
        },
    }
}

/// Run the message program and return, per directed link, the sequence
/// numbers in the order the destination observed them.
fn observed_orders(sends: &[Send], tuning: TransportTuning) -> Vec<((usize, usize), Vec<u64>)> {
    let mut engine = Engine::new();
    let net: Network<Tag> = Network::with_transport(
        engine.ctl(),
        profiles::bip_myrinet(),
        Topology::flat(NODES),
        tuning,
    );

    // Assign per-link sequence numbers in program order and split the
    // program by sender.
    let mut link_seq = std::collections::HashMap::<(usize, usize), u64>::new();
    let mut programs: Vec<Vec<(usize, usize, u64, u32)>> = vec![Vec::new(); NODES];
    let mut expected_per_node = [0usize; NODES];
    for &(sender, dest_off, bytes, gap_us) in sends {
        let to = (sender + dest_off) % NODES;
        let seq = link_seq.entry((sender, to)).or_insert(0);
        programs[sender].push((to, bytes, *seq, gap_us));
        *seq += 1;
        expected_per_node[to] += 1;
    }

    // Receivers: each node consumes exactly the number of messages addressed
    // to it and records the tags in arrival order.
    let observed = Arc::new(Mutex::new(Vec::<Tag>::new()));
    for (node, &count) in expected_per_node.iter().enumerate() {
        let rx = net.endpoint(NodeId(node));
        let obs = observed.clone();
        engine.spawn(format!("rx{node}"), move |h| {
            for _ in 0..count {
                let env = rx.recv(h);
                obs.lock().push(env.msg);
            }
        });
    }

    // Senders: fire the program with the sampled gaps.
    for (sender, program) in programs.into_iter().enumerate() {
        if program.is_empty() {
            continue;
        }
        let net = net.clone();
        engine.spawn(format!("tx{sender}"), move |h| {
            for (to, bytes, seq, gap_us) in program {
                net.send(h, NodeId(sender), NodeId(to), (sender, to, seq), bytes);
                h.sleep(SimDuration::from_micros(u64::from(gap_us)));
            }
        });
    }

    engine.run().expect("message program must terminate");
    let observed = observed.lock().clone();
    let mut per_link = std::collections::HashMap::<(usize, usize), Vec<u64>>::new();
    for (from, to, seq) in observed {
        per_link.entry((from, to)).or_default().push(seq);
    }
    let mut out: Vec<_> = per_link.into_iter().collect();
    out.sort_by_key(|(link, _)| *link);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Per directed link, every backend delivers exactly the sent sequence:
    /// in order, exactly once — including across drops, retransmissions and
    /// wire duplicates under the lossy backend.
    #[test]
    fn fifo_no_overtake_holds_under_every_backend(
        sends in proptest::collection::vec(
            (0usize..NODES, 1usize..NODES, 0usize..9000, 0u32..60),
            1..40,
        ),
        backend_idx in 0usize..4,
        seed in 0u64..1024,
    ) {
        let tuning = backend_for(backend_idx, seed);
        // Expected: per link, sequences 0..n in order.
        let mut expected = std::collections::HashMap::<(usize, usize), u64>::new();
        for &(sender, dest_off, _, _) in &sends {
            let to = (sender + dest_off) % NODES;
            *expected.entry((sender, to)).or_insert(0) += 1;
        }
        let mut expected: Vec<((usize, usize), Vec<u64>)> = expected
            .into_iter()
            .map(|(link, n)| (link, (0..n).collect()))
            .collect();
        expected.sort_by_key(|(link, _)| *link);

        let observed = observed_orders(&sends, tuning);
        prop_assert_eq!(
            observed,
            expected,
            "per-link delivery diverged from the send order under the {} backend",
            tuning.backend.name()
        );
    }
}
