//! Conformance suite for the verify layer.
//!
//! Three properties keep the observer honest:
//!
//! 1. **Zero-cost observation** — a fully instrumented run (log recording
//!    plus per-step invariant probing) is bit-identical to an
//!    uninstrumented run: same final memory, same final virtual time, same
//!    event count, same per-thread observations.
//! 2. **Detector determinism** — the race detector's verdict over a
//!    scenario is identical across every handoff mode and worker count,
//!    even though the raw cross-node log append order is not.
//! 3. **Replay fidelity** (property test) — feeding any decision path to a
//!    [`ReplayController`], recording the clamped decisions it actually
//!    took, and replaying those recorded decisions reproduces the run bit
//!    for bit. This is the foundation the schedule explorer's DFS stands
//!    on: a path *is* the run.

use std::sync::Arc;

use proptest::prelude::*;

use dsm_pm2::pm2::HandoffMode;
use dsmpm2_verify::scenario;
use dsmpm2_verify::{run_scenario, Instrument, ReplayController, RunConfig};

/// Instrumentation must not perturb the simulation: memory, virtual time,
/// event count and every observed value must match the uninstrumented run.
#[test]
fn instrumentation_is_invisible_to_the_simulation() {
    for protocol in ["li_hudak", "erc_sw", "hbrc_mw", "migrate_thread"] {
        for scn in [
            scenario::locked_counter(),
            scenario::reader_flock(),
            scenario::stale_release(),
        ] {
            let off = run_scenario(&scn, &RunConfig::plain(protocol));
            let checked = run_scenario(&scn, &RunConfig::checked(protocol));
            assert_eq!(off.error, None, "{protocol}/{}", scn.name);
            assert_eq!(
                off.fingerprint(),
                checked.fingerprint(),
                "{protocol}/{}: instrumented run diverged",
                scn.name
            );
            assert!(
                !checked.log.is_empty(),
                "{protocol}/{}: instrumented run recorded nothing",
                scn.name
            );
        }
    }
}

/// The race detector's verdict is a pure function of the schedule, not of
/// how the engine happened to execute it: every handoff mode and worker
/// count must produce the identical sorted finding list (and the same
/// positive verdict on the racy scenario).
#[test]
fn race_verdict_is_stable_across_workers_and_handoff_modes() {
    for (scn, protocol, expect_race) in [
        (scenario::locked_counter(), "erc_sw", false),
        (scenario::unsynced_pair(), "erc_sw", true),
        (scenario::unsynced_pair(), "li_hudak", false),
    ] {
        let mut reference: Option<Vec<dsmpm2_verify::Finding>> = None;
        for handoff in [
            HandoffMode::Continuation,
            HandoffMode::Baton,
            HandoffMode::LegacyCondvar,
        ] {
            for workers in [1usize, 2, 4] {
                let cfg = RunConfig {
                    workers,
                    handoff,
                    instrument: Instrument::Record,
                    ..RunConfig::plain(protocol)
                };
                let outcome = run_scenario(&scn, &cfg);
                assert_eq!(
                    outcome.error, None,
                    "{protocol}/{} {handoff:?} x{workers}",
                    scn.name
                );
                let findings = outcome.race_findings();
                assert_eq!(
                    !findings.is_empty(),
                    expect_race,
                    "{protocol}/{} {handoff:?} x{workers}: {findings:?}",
                    scn.name
                );
                match &reference {
                    None => reference = Some(findings),
                    Some(reference) => assert_eq!(
                        &findings, reference,
                        "{protocol}/{} {handoff:?} x{workers}: verdict changed",
                        scn.name
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Any decision path, once clamped and recorded by the controller,
    /// replays to a bit-identical run.
    #[test]
    fn recorded_schedules_replay_bit_identically(
        path in proptest::collection::vec(0u8..4, 0..12),
        proto_idx in 0usize..3,
    ) {
        let protocol = ["li_hudak", "erc_sw", "hbrc_mw"][proto_idx];
        let scn = scenario::locked_counter();
        let base = RunConfig {
            transport: dsm_pm2::pm2::TransportTuning::permuted(),
            ..RunConfig::checked(protocol)
        };

        let first_controller = Arc::new(ReplayController::new(path.clone()));
        let mut cfg = base.clone();
        cfg.controller = Some(first_controller.clone());
        let first = run_scenario(&scn, &cfg);
        prop_assert_eq!(&first.error, &None);

        // Replay exactly what the first run decided (after clamping).
        let recorded: Vec<u8> = first_controller
            .recorded()
            .iter()
            .map(|c| c.picked.min(255) as u8)
            .collect();
        let second_controller = Arc::new(ReplayController::new(recorded));
        let mut cfg = base.clone();
        cfg.controller = Some(second_controller.clone());
        let second = run_scenario(&scn, &cfg);

        prop_assert_eq!(first.fingerprint(), second.fingerprint(),
            "replay diverged under {}", protocol);
        prop_assert_eq!(first_controller.recorded(), second_controller.recorded(),
            "replay took different decisions under {}", protocol);
    }
}
