//! Integration tests of the platform-level claims of the paper: portability
//! across interconnects, reproduction of the microbenchmark tables' shape,
//! the Figure 4 / Figure 5 orderings on reduced instances, and the
//! post-mortem monitoring facilities.

use dsm_pm2::madeleine::profiles;
use dsm_pm2::workloads::map_coloring::{run_map_coloring, ColoringConfig};
use dsm_pm2::workloads::tsp::{run_tsp, TspConfig, TspInstance};
use dsm_pm2::workloads::{measure_read_fault, run_shared_counter, FaultPolicy};

/// Table 3 / Table 4 shape on every profile: totals ordered like the paper's
/// columns, overhead bounded, migration always cheaper than page transfer for
/// the single-fault microbenchmark.
#[test]
fn fault_tables_shape_on_all_networks() {
    let mut page_totals = Vec::new();
    for net in profiles::all() {
        let page = measure_read_fault(net.clone(), FaultPolicy::PageTransfer);
        let mig = measure_read_fault(net.clone(), FaultPolicy::ThreadMigration);
        assert!(mig.total_us < page.total_us, "{}", net.name);
        assert!(
            page.overhead_us / page.total_us <= 0.20,
            "{}: protocol overhead must stay a small fraction (paper: <=15%)",
            net.name
        );
        page_totals.push((net.name.clone(), page.total_us));
    }
    let get = |name: &str| {
        page_totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap()
    };
    // Paper's Table 3 ordering: SCI (194) < BIP (198) < TCP/Myrinet (600) < FastEthernet (993).
    assert!(get("SISCI/SCI") < get("BIP/Myrinet"));
    assert!(get("BIP/Myrinet") < get("TCP/Myrinet"));
    assert!(get("TCP/Myrinet") < get("TCP/FastEthernet"));
}

/// Figure 4 shape on a reduced instance: page-based protocols beat
/// migrate_thread, and the distributed result matches the sequential oracle.
#[test]
fn figure4_shape_on_reduced_instance() {
    let config = TspConfig::small(4, 9);
    let oracle = TspInstance::random(config.cities, config.seed).solve_sequential();
    let mut times = Vec::new();
    for proto in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
        let r = run_tsp(&config, proto);
        assert_eq!(r.best, oracle, "{proto}");
        times.push((proto, r.elapsed));
    }
    let migrate_time = times
        .iter()
        .find(|(p, _)| *p == "migrate_thread")
        .unwrap()
        .1;
    for (proto, t) in &times {
        if *proto != "migrate_thread" {
            assert!(
                *t < migrate_time,
                "{proto} ({t}) should beat migrate_thread ({migrate_time})"
            );
        }
    }
}

/// Figure 5 shape on a reduced instance: java_pf beats java_ic and both find
/// the same optimum.
#[test]
fn figure5_shape_on_reduced_instance() {
    let config = ColoringConfig::small(4, 22);
    let ic = run_map_coloring(&config, "java_ic");
    let pf = run_map_coloring(&config, "java_pf");
    assert_eq!(ic.best_cost, pf.best_cost);
    assert!(
        pf.elapsed < ic.elapsed,
        "pf {} vs ic {}",
        pf.elapsed,
        ic.elapsed
    );
    assert!(ic.inline_checks > pf.inline_checks);
    assert!(pf.faults > 0);
}

/// Portability: the same shared-counter program produces the same result on
/// every interconnect profile; only its timing changes (and it changes in the
/// direction the profiles predict).
#[test]
fn portability_same_result_different_cost() {
    let mut results = Vec::new();
    for net in profiles::all() {
        let v = run_shared_counter(2, 5, net.clone(), "li_hudak");
        assert_eq!(v, 10, "{}", net.name);
        results.push(net.name);
    }
    assert_eq!(results.len(), 4);
}

/// The §2.1 micro-measurements are reproduced by the PM2 substrate.
#[test]
fn pm2_micro_measurements_match_paper() {
    use dsm_pm2::pm2::{service_fn, NodeId, Pm2Cluster, Pm2Config, RpcClass, RpcReply};
    use dsm_pm2::sim::{Engine, SimDuration};
    use parking_lot::Mutex;
    use std::sync::Arc;

    for (profile, rpc_us, mig_us) in [
        (profiles::bip_myrinet(), 8.0, 75.0),
        (profiles::sisci_sci(), 6.0, 62.0),
    ] {
        // RPC latency.
        let engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, profile.clone()));
        cluster.register_service(service_fn("null", false, |_c, _p| {
            Some(RpcReply::minimal(()))
        }));
        let rpc_elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
        let e = rpc_elapsed.clone();
        let c = cluster.clone();
        engine.spawn("caller", move |h| {
            let start = h.now();
            let _ = c.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "null",
                Box::new(()),
                RpcClass::Minimal,
            );
            *e.lock() = h.now().since(start);
        });
        let mut engine = engine;
        engine.run().unwrap();
        let measured_rpc = rpc_elapsed.lock().as_micros_f64();
        assert!(
            (measured_rpc - rpc_us).abs() < 4.0,
            "{}: RPC {measured_rpc}us vs paper {rpc_us}us",
            profile.name
        );

        // Thread migration latency.
        let engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::new(2, profile.clone()));
        let mig_elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
        let e = mig_elapsed.clone();
        cluster.spawn_thread_on(NodeId(0), "mover", move |ctx| {
            let start = ctx.now();
            ctx.migrate_to(NodeId(1));
            *e.lock() = ctx.now().since(start);
        });
        let mut engine = engine;
        engine.run().unwrap();
        let measured_mig = mig_elapsed.lock().as_micros_f64();
        assert!(
            (measured_mig - mig_us).abs() < 2.0,
            "{}: migration {measured_mig}us vs paper {mig_us}us",
            profile.name
        );
    }
}

/// Post-mortem monitoring: after a run, the monitor reports time spent in the
/// elementary DSM functions (the facility §4 highlights).
#[test]
fn post_mortem_monitor_reports_elementary_functions() {
    use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
    use dsm_pm2::prelude::*;

    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(2));
    let protos = register_builtin_protocols(&rt);
    rt.set_default_protocol(protos.li_hudak);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    rt.spawn_dsm_thread(NodeId(1), "toucher", move |ctx| {
        let _ = ctx.read::<u64>(addr);
        ctx.write::<u64>(addr, 1);
    });
    let mut engine = engine;
    engine.run().unwrap();
    let report = rt.cluster().monitor().report();
    assert!(report.get("dsm_page_fault").is_some());
    assert!(report.get("rpc_oneway:dsm").is_some() || report.get("rpc_handler:dsm").is_some());
    let rendered = report.to_string();
    assert!(rendered.contains("dsm_page_fault"));
}

/// Regression (PR 3, extended to the PR 5 worker pool): a user-code panic
/// while the thread holds the scheduler baton — mid-critical-section, with
/// three other nodes blocked on the same lock and coherence traffic in
/// flight — must surface as the run's error (carrying the panic message),
/// release every other thread, join every scheduler worker, and never hang,
/// under all three hand-off substrates (continuation, futex baton, legacy
/// condvar) and with the 4-worker engine.
#[test]
fn panic_mid_critical_section_reclaims_baton_under_all_handoffs() {
    use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
    use dsm_pm2::pm2::{EngineConfig, SimError, SimTuning};
    use dsm_pm2::prelude::*;

    for sim in [
        SimTuning::default(),
        SimTuning::baton(),
        SimTuning::legacy(),
        SimTuning::default().with_workers(4),
        SimTuning::baton().with_workers(4),
    ] {
        let engine = Engine::with_config(EngineConfig {
            tuning: sim,
            ..EngineConfig::default()
        });
        let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(4));
        let protos = register_builtin_protocols(&rt);
        rt.set_default_protocol(protos.hbrc_mw);
        let cell = rt.dsm_malloc(4 * 4096, DsmAttr::default().home(HomePolicy::RoundRobin));
        let lock = rt.create_lock(Some(NodeId(0)));
        for node in 0..4usize {
            rt.spawn_dsm_thread(NodeId(node), format!("w{node}"), move |ctx| {
                // Cache copies everywhere so the panicking release path has
                // invalidations and diffs in flight.
                for page in 0..4u64 {
                    let _ = ctx.read::<u64>(cell.add(page * 4096));
                }
                for _ in 0..3u64 {
                    ctx.dsm_lock(lock);
                    for page in 0..4u64 {
                        let v = ctx.read::<u64>(cell.add(page * 4096));
                        ctx.write::<u64>(cell.add(page * 4096), v + 1);
                        if node == 2 && v >= 4 {
                            panic!("intentional mid-critical-section panic");
                        }
                    }
                    ctx.dsm_unlock(lock);
                }
            });
        }
        let mut engine = engine;
        match engine.run() {
            Err(SimError::ThreadPanic { thread, message }) => {
                assert_eq!(thread, "w2", "handoff {sim:?}");
                assert!(
                    message.contains("intentional mid-critical-section panic"),
                    "handoff {sim:?}: panic payload must be propagated, got '{message}'"
                );
            }
            other => panic!("handoff {sim:?}: expected ThreadPanic, got {other:?}"),
        }
        // If teardown failed to reclaim the baton this test would hang before
        // reaching this point; reaching it under both modes is the assertion.
    }
}

/// Regression (PR 3): a panic inside a scheduler callback (`call_at`) must
/// not unwind past `Engine::run` leaving every simulated thread parked — it
/// becomes the run's error and teardown still reclaims all OS threads.
#[test]
fn scheduler_call_panic_is_reported_and_torn_down() {
    use dsm_pm2::sim::{Engine, SimDuration, SimError, SimTime};

    let mut engine = Engine::new();
    let ctl = engine.ctl();
    engine.spawn("sleeper", |h| {
        h.sleep(SimDuration::from_micros(500));
    });
    ctl.call_at(SimTime::from_micros(10), |_| {
        panic!("intentional scheduler-call panic");
    });
    match engine.run() {
        Err(SimError::ThreadPanic { thread, message }) => {
            assert_eq!(thread, "scheduler-call");
            assert!(message.contains("intentional scheduler-call panic"));
        }
        other => panic!("expected scheduler-call panic error, got {other:?}"),
    }
}

/// The PR 3 scheduler-call panic regression on the PR 5 worker pool: the
/// panicking callback fires at an instant where all four shards have events,
/// so it executes *on a worker*, mid-parallel-round. The panic must become
/// the run's error, all workers must be joined and every simulated thread
/// torn down — reaching the match arm is the no-hang assertion.
#[test]
fn scheduler_call_panic_mid_parallel_round_is_reported_and_torn_down() {
    use dsm_pm2::sim::{Engine, EngineConfig, SimDuration, SimError, SimTime, SimTuning};

    let mut engine = Engine::with_config(EngineConfig {
        tuning: SimTuning::default().with_workers(4),
        ..EngineConfig::default()
    });
    let ctl = engine.ctl();
    for shard in 0..4u64 {
        engine.spawn_on(shard, format!("sleeper{shard}"), |h| {
            // Every shard has a wake at t = 10us, making that instant a
            // parallel round; the panicking call below joins it on shard 2.
            h.sleep(SimDuration::from_micros(10));
            h.sleep(SimDuration::from_micros(500));
        });
    }
    ctl.call_at_on(2, SimTime::from_micros(10), |_| {
        panic!("intentional mid-round scheduler-call panic");
    });
    match engine.run() {
        Err(SimError::ThreadPanic { thread, message }) => {
            assert_eq!(thread, "scheduler-call");
            assert!(message.contains("intentional mid-round scheduler-call panic"));
        }
        other => panic!("expected scheduler-call panic error, got {other:?}"),
    }
}
