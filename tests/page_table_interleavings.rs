//! Property test: random fault/release interleavings preserve page contents
//! under the sharded page table.
//!
//! Each sampled case drives a 3-node cluster through a random sequence of
//! DSM operations — unsynchronized reads (faults that replicate or migrate
//! pages) and lock-protected writes (release-consistency episodes) — over
//! two shared pages, under a randomly chosen protocol and a randomly chosen
//! page-table shard count, with per-tick message batching enabled. Every
//! node writes only its own byte range, so the expected final contents are
//! computable from the op list alone: for each (page, node) slot, the last
//! value that node wrote there in program order. A failing case shrinks to
//! a minimal op list thanks to the shim's halving-based shrinker.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::pm2::DsmTuning;
use dsm_pm2::prelude::*;

const NODES: usize = 3;
const PAGES: usize = 2;
const PAGE_BYTES: u64 = 4096;

const PROTOCOLS: [&str; 4] = ["li_hudak", "li_hudak_fixed", "erc_sw", "hbrc_mw"];
const SHARD_CHOICES: [usize; 4] = [1, 2, 4, 8];

/// One sampled operation: (acting node, page, kind, value).
/// kind 0 = unsynchronized read of the node's own slot,
/// kind 1 = lock-protected write of `value` to the node's own slot,
/// kind 2 = unsynchronized read of the *next* node's slot (cross-node
///          sharing: forces replication / invalidation traffic).
type Op = (usize, usize, u32, u8);

fn run_interleaving(ops: &[Op], protocol: &str, shards: usize) -> Vec<u8> {
    let engine = Engine::new();
    let tuning = DsmTuning {
        page_table_shards: shards,
        batch_messages: true,
        batch_window: Default::default(),
        granularity: 0,
        one_sided_reads: false,
    };
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::bip_myrinet(NODES).with_dsm_tuning(tuning),
    );
    let _ = register_all_protocols(&rt);
    rt.set_default_protocol(rt.protocol_by_name(protocol).unwrap());
    let base = rt.dsm_malloc(
        PAGES as u64 * PAGE_BYTES,
        DsmAttr::default().home(HomePolicy::RoundRobin),
    );
    let lock = rt.create_lock(Some(NodeId(0)));
    // One barrier slot per mutator plus one for the observer: the observer
    // reads only after every mutator has finished its op list.
    let barrier = rt.create_barrier(NODES + 1, None);
    let slot = move |page: usize, node: usize| base.add(page as u64 * PAGE_BYTES + node as u64 * 8);

    for node in 0..NODES {
        let my_ops: Vec<Op> = ops.iter().copied().filter(|op| op.0 == node).collect();
        rt.spawn_dsm_thread(NodeId(node), format!("mutator{node}"), move |ctx| {
            for (_, page, kind, value) in my_ops {
                match kind {
                    0 => {
                        let _ = ctx.read::<u8>(slot(page, node));
                    }
                    1 => {
                        ctx.dsm_lock(lock);
                        ctx.write::<u8>(slot(page, node), value);
                        ctx.dsm_unlock(lock);
                    }
                    _ => {
                        let _ = ctx.read::<u8>(slot(page, (node + 1) % NODES));
                    }
                }
            }
            ctx.dsm_barrier(barrier);
        });
    }

    // Observer: after every mutator finished, read the final contents under
    // the lock (the acquire makes release-consistency protocols coherent).
    let observed = Arc::new(Mutex::new(vec![0u8; PAGES * NODES]));
    let obs = observed.clone();
    rt.spawn_dsm_thread(NodeId(0), "observer", move |ctx| {
        ctx.dsm_barrier(barrier);
        ctx.dsm_lock(lock);
        let mut out = obs.lock();
        for page in 0..PAGES {
            for node in 0..NODES {
                out[page * NODES + node] = ctx.read::<u8>(slot(page, node));
            }
        }
        ctx.dsm_unlock(lock);
    });

    let mut engine = engine;
    engine.run().expect("interleaving must not deadlock");
    let observed = observed.lock().clone();
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Random fault/release interleavings leave exactly the last
    /// lock-protected write of each node visible, for every protocol and
    /// shard count.
    #[test]
    fn interleavings_preserve_page_contents(
        ops in proptest::collection::vec((0usize..3, 0usize..2, 0u32..3, 1u8..=255), 1..24),
        proto_idx in 0usize..4,
        shard_idx in 0usize..4,
    ) {
        let protocol = PROTOCOLS[proto_idx];
        let shards = SHARD_CHOICES[shard_idx];
        let mut expected = vec![0u8; PAGES * NODES];
        for &(node, page, kind, value) in &ops {
            if kind == 1 {
                expected[page * NODES + node] = value;
            }
        }
        let observed = run_interleaving(&ops, protocol, shards);
        prop_assert_eq!(
            observed,
            expected,
            "final page contents diverged under {} with {} shards",
            protocol,
            shards
        );
    }
}
