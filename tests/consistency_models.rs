//! Cross-crate integration tests: memory-model-level properties of the
//! built-in protocols on multi-node programs, exercised through the public
//! facade API exactly as an application would.

use std::sync::Arc;

use parking_lot::Mutex;

use dsm_pm2::core::{DsmAttr, DsmRuntime, HomePolicy};
use dsm_pm2::prelude::*;

fn setup(nodes: usize) -> (Engine, DsmRuntime, BuiltinProtocols) {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::bip_myrinet(nodes));
    let protos = register_builtin_protocols(&rt);
    (engine, rt, protos)
}

/// Sequential consistency (li_hudak): a lock-free producer/consumer handshake
/// through two shared flags observes writes in order.
#[test]
fn sequential_consistency_message_passing_pattern() {
    let (mut engine, rt, protos) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    // Put data and flag on different pages to make the ordering non-trivial.
    let data = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let flag = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(1))));
    let observed = Arc::new(Mutex::new(None));

    rt.spawn_dsm_thread(NodeId(0), "producer", move |ctx| {
        ctx.write::<u64>(data, 123);
        ctx.write::<u64>(flag, 1);
    });
    let obs = observed.clone();
    rt.spawn_dsm_thread(NodeId(1), "consumer", move |ctx| {
        // Spin (in virtual time) until the flag is observed.
        let mut spins = 0;
        while ctx.read::<u64>(flag) == 0 {
            ctx.compute(SimDuration::from_micros(20));
            ctx.pm2.sim.yield_now();
            spins += 1;
            assert!(spins < 100_000, "flag never became visible");
        }
        *obs.lock() = Some(ctx.read::<u64>(data));
    });
    engine.run().unwrap();
    assert_eq!(
        *observed.lock(),
        Some(123),
        "write to data visible once flag is"
    );
}

/// All four page-based/migration protocols keep a lock-protected counter
/// exact across 3 nodes (the fundamental critical-section guarantee).
#[test]
fn counter_is_exact_under_every_protocol() {
    for proto_name in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
        let (mut engine, rt, protos) = setup(3);
        rt.set_default_protocol(protos.by_name(proto_name).unwrap());
        let counter = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(None);
        for node in 0..3usize {
            rt.spawn_dsm_thread(NodeId(node), format!("w{node}"), move |ctx| {
                for _ in 0..6 {
                    ctx.dsm_lock(lock);
                    let v = ctx.read::<u64>(counter);
                    ctx.write::<u64>(counter, v + 1);
                    ctx.dsm_unlock(lock);
                }
            });
        }
        engine.run().unwrap();
        // Verify by reading through a fresh thread (it must observe 18).
        let (mut engine2, rt2, protos2) = setup(1);
        let _ = (&mut engine2, &rt2, &protos2);
        let final_value = {
            let (mut e, rtv, p) = setup(3);
            let _ = p;
            let _ = &mut e;
            let _ = rtv;
            // Simpler: check the home/owner frame of the original runtime.
            let page = counter.page();
            let mut holder = rt.page_meta(page).home;
            for n in 0..3 {
                if rt.page_table(NodeId(n)).get(page).owned {
                    holder = NodeId(n);
                }
            }
            let mut buf = [0u8; 8];
            rt.frames(holder).read(page, counter.offset(), &mut buf);
            u64::from_le_bytes(buf)
        };
        assert_eq!(final_value, 18, "protocol {proto_name}");
    }
}

/// Release consistency: without synchronization a remote copy may legally be
/// stale, but after acquiring the lock that protected the write it must be
/// up to date (erc_sw and hbrc_mw).
#[test]
fn release_consistency_visibility_after_acquire() {
    for proto_name in ["erc_sw", "hbrc_mw"] {
        let (mut engine, rt, protos) = setup(2);
        rt.set_default_protocol(protos.by_name(proto_name).unwrap());
        let shared = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
        let lock = rt.create_lock(Some(NodeId(0)));
        let sync = rt.create_barrier(2, None);
        let after_acquire = Arc::new(Mutex::new(0u64));

        rt.spawn_dsm_thread(NodeId(0), "writer", move |ctx| {
            ctx.dsm_barrier(sync); // let the reader cache the page first
            ctx.dsm_lock(lock);
            ctx.write::<u64>(shared.add(128), 55);
            ctx.dsm_unlock(lock);
            ctx.dsm_barrier(sync);
        });
        let aa = after_acquire.clone();
        rt.spawn_dsm_thread(NodeId(1), "reader", move |ctx| {
            let _ = ctx.read::<u64>(shared.add(128)); // cache a copy
            ctx.dsm_barrier(sync);
            ctx.dsm_barrier(sync);
            ctx.dsm_lock(lock);
            *aa.lock() = ctx.read::<u64>(shared.add(128));
            ctx.dsm_unlock(lock);
        });
        engine.run().unwrap();
        assert_eq!(*after_acquire.lock(), 55, "protocol {proto_name}");
    }
}

/// Barriers act as release+acquire for every protocol in use: data written
/// before a barrier is visible after it.
#[test]
fn barrier_flushes_for_release_consistency_protocols() {
    for proto_name in ["erc_sw", "hbrc_mw", "li_hudak"] {
        let (mut engine, rt, protos) = setup(4);
        rt.set_default_protocol(protos.by_name(proto_name).unwrap());
        let table = rt.dsm_malloc(4 * 4096, DsmAttr::default().home(HomePolicy::RoundRobin));
        let barrier = rt.create_barrier(4, None);
        let sums = Arc::new(Mutex::new(Vec::new()));
        for node in 0..4usize {
            let sums = sums.clone();
            rt.spawn_dsm_thread(NodeId(node), format!("t{node}"), move |ctx| {
                // Each node writes its slot in its own page.
                ctx.write::<u64>(table.add(node as u64 * 4096), (node + 1) as u64);
                ctx.dsm_barrier(barrier);
                let mut sum = 0;
                for other in 0..4u64 {
                    sum += ctx.read::<u64>(table.add(other * 4096));
                }
                sums.lock().push(sum);
            });
        }
        engine.run().unwrap();
        for &s in sums.lock().iter() {
            assert_eq!(s, 10, "protocol {proto_name}");
        }
    }
}

/// Regression (PR 3): a copy refetched *while* the home's release-time
/// invalidation round is still waiting for other pages' acknowledgements
/// must stay in the copyset — the next release must invalidate it again.
/// (The release now removes the condemned targets from the copyset at send
/// time, before any blocking; a post-wait removal cannot tell a refetched
/// copy apart from the original membership and would leave the reader
/// permanently stale.)
#[test]
fn copy_refetched_during_release_wait_is_invalidated_by_next_release() {
    let (mut engine, rt, protos) = setup(3);
    rt.set_default_protocol(protos.hbrc_mw);
    // Two pages homed on node 0 so the release is a multi-page round.
    let p1 = rt.dsm_malloc(
        2 * 4096,
        DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))),
    );
    let p2 = p1.add(4096);
    let lock = rt.create_lock(Some(NodeId(0)));
    let start = rt.create_barrier(3, None);
    let observed = Arc::new(Mutex::new(0u64));

    rt.spawn_dsm_thread(NodeId(0), "home-writer", move |ctx| {
        ctx.write::<u64>(p1, 1);
        ctx.write::<u64>(p2, 1);
        ctx.dsm_barrier(start);
        for round in 2..6u64 {
            // Only the home takes the lock; the other nodes read and write
            // lock-free (multiple writers, disjoint offsets), so they keep
            // running while the unlock's release blocks on acknowledgements.
            ctx.dsm_lock(lock);
            ctx.write::<u64>(p1, round);
            ctx.write::<u64>(p2, round);
            ctx.dsm_unlock(lock);
            ctx.compute(SimDuration::from_micros(400));
            ctx.pm2.sim.yield_now();
        }
    });
    // Node 2 keeps a *dirty twin* on p1: its invalidate handler must push
    // the diff and wait for the diff acknowledgement before acking the
    // invalidation, so its ack for p1 arrives a full round-trip later than
    // node 1's — which keeps the home's release blocked on p1's round while
    // node 1's refetch of p2 arrives and must survive in p2's copyset.
    rt.spawn_dsm_thread(NodeId(2), "dirty-writer", move |ctx| {
        let _ = ctx.read::<u64>(p1.add(8));
        let _ = ctx.read::<u64>(p2);
        ctx.dsm_barrier(start);
        for i in 0..300u64 {
            ctx.write::<u64>(p1.add(8), i);
            ctx.compute(SimDuration::from_micros(7));
            ctx.pm2.sim.yield_now();
        }
    });
    let obs = observed.clone();
    rt.spawn_dsm_thread(NodeId(1), "reader", move |ctx| {
        let _ = ctx.read::<u64>(p1);
        let _ = ctx.read::<u64>(p2);
        ctx.dsm_barrier(start);
        // Lock-free spin-reads: every invalidation triggers an immediate
        // refetch, so re-grants land in the middle of the home's ack waits.
        // A dropped copyset entry shows up as a copy that is never
        // invalidated again, i.e. a reader spinning on a stale value forever.
        let mut spins = 0u64;
        loop {
            let v = ctx.read::<u64>(p2);
            if v >= 5 {
                *obs.lock() = v;
                break;
            }
            ctx.compute(SimDuration::from_micros(2));
            ctx.pm2.sim.yield_now();
            spins += 1;
            assert!(
                spins < 100_000,
                "reader never observed the final value — a copy refetched during the \
                 release wait was dropped from the copyset and left permanently stale"
            );
        }
    });
    engine.run().unwrap();
    assert_eq!(*observed.lock(), 5);
}

/// Thread migration interoperates with DSM locks: a thread that migrated to
/// the data still synchronizes correctly with threads elsewhere.
#[test]
fn migrate_thread_composes_with_locks() {
    let (mut engine, rt, protos) = setup(3);
    rt.set_default_protocol(protos.migrate_thread);
    let cell = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(2))));
    let lock = rt.create_lock(Some(NodeId(0)));
    for node in 0..3usize {
        rt.spawn_dsm_thread(NodeId(node), format!("m{node}"), move |ctx| {
            for _ in 0..4 {
                ctx.dsm_lock(lock);
                let v = ctx.read::<u64>(cell);
                ctx.write::<u64>(cell, v + 1);
                ctx.dsm_unlock(lock);
            }
            // Everyone ends up on the data's node.
            assert_eq!(ctx.node(), NodeId(2));
        });
    }
    engine.run().unwrap();
    let mut buf = [0u8; 8];
    rt.frames(NodeId(2))
        .read(cell.page(), cell.offset(), &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 12);
    assert_eq!(rt.stats().snapshot().page_transfers, 0);
}

/// The per-region protocol attribute really isolates protocols: statistics
/// show replication traffic for the li_hudak region and migrations for the
/// migrate_thread region.
#[test]
fn per_region_protocols_behave_independently() {
    let (mut engine, rt, protos) = setup(2);
    rt.set_default_protocol(protos.li_hudak);
    let replicated = rt.dsm_malloc(
        4096,
        DsmAttr::with_protocol(protos.li_hudak).home(HomePolicy::Fixed(NodeId(0))),
    );
    let migratory = rt.dsm_malloc(
        4096,
        DsmAttr::with_protocol(protos.migrate_thread).home(HomePolicy::Fixed(NodeId(0))),
    );
    rt.spawn_dsm_thread(NodeId(1), "mixed", move |ctx| {
        let _ = ctx.read::<u32>(replicated);
        assert_eq!(ctx.node(), NodeId(1), "li_hudak read must not migrate");
        let _ = ctx.read::<u32>(migratory);
        assert_eq!(ctx.node(), NodeId(0), "migrate_thread read must migrate");
    });
    engine.run().unwrap();
    let stats = rt.stats().snapshot();
    assert_eq!(stats.page_transfers, 1);
    assert_eq!(stats.thread_migrations, 1);
}

// ---------------------------------------------------------------------------
// Cross-protocol conformance matrix
// ---------------------------------------------------------------------------
//
// The safety net for the sharded page table and the per-tick message batcher:
// three workloads with different sharing patterns run under every
// general-purpose protocol (the six of the paper's Table 2 minus none, plus
// the two extension protocols that need no per-region configuration) on 1, 2
// and 4 nodes, with sharding and batching enabled. The *exact* final shared
// memory of every run must equal the single-node baseline computed with the
// legacy tuning (single-lock table, no batching) — bit-for-bit, not within a
// tolerance — so any divergence introduced by the scale-out machinery fails
// loudly. (`entry_sw` is excluded: it requires regions to be bound to locks
// and is exercised by its own tests.)

use dsm_pm2::pm2::{DsmTuning, SimTuning, TransportTuning};
use dsm_pm2::workloads::{
    false_sharing::{run_false_sharing, FalseSharingConfig},
    jacobi::{run_jacobi, JacobiConfig},
    matmul::{run_matmul, MatmulConfig},
    sor::{run_sor, SorConfig},
};

/// Every protocol that runs unmodified application code (8 of the 9 shipped).
const MATRIX_PROTOCOLS: [&str; 8] = [
    "li_hudak",
    "li_hudak_fixed",
    "migrate_thread",
    "erc_sw",
    "hbrc_mw",
    "hlrc_notices",
    "java_ic",
    "java_pf",
];

const MATRIX_NODES: [usize; 3] = [1, 2, 4];

/// The tuning under test: sharded page table + per-tick message batching.
fn scale_out_tuning() -> DsmTuning {
    DsmTuning {
        page_table_shards: 8,
        batch_messages: true,
        batch_window: Default::default(),
        granularity: 0,
        one_sided_reads: false,
    }
}

#[test]
fn conformance_matrix_jacobi() {
    let config = |nodes: usize, tuning: DsmTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    let baseline = run_jacobi(&config(1, DsmTuning::legacy()), "li_hudak");
    assert!(
        baseline.final_cells.iter().any(|&c| c != 0),
        "baseline must produce a non-trivial grid"
    );
    for proto in MATRIX_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let r = run_jacobi(&config(nodes, scale_out_tuning()), proto);
            assert_eq!(
                r.final_cells, baseline.final_cells,
                "jacobi final memory diverged under {proto} x {nodes} nodes"
            );
        }
    }
}

#[test]
fn conformance_matrix_sor() {
    let config = |nodes: usize, tuning: DsmTuning| SorConfig {
        size: 16,
        iterations: 2,
        omega: 1.25,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    let baseline = run_sor(&config(1, DsmTuning::legacy()), "li_hudak");
    assert!(baseline.final_cells.iter().any(|&c| c != 0));
    for proto in MATRIX_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let r = run_sor(&config(nodes, scale_out_tuning()), proto);
            assert_eq!(
                r.final_cells, baseline.final_cells,
                "sor final memory diverged under {proto} x {nodes} nodes"
            );
        }
    }
}

/// The full matrix across all three scheduler hand-off substrates —
/// continuations on the scheduler's OS thread (the default), the futex-style
/// OS-thread baton, and the legacy Mutex+Condvar baton — at 1, 2 and 4
/// scheduler workers. Every cell must be bit-identical to the
/// continuation/1-worker run: final shared memory AND virtual completion
/// time. The hand-off is a wall-clock mechanism only; how a simulated
/// thread's slices reach a CPU must never leak into what the simulation
/// computes.
#[test]
fn conformance_matrix_across_handoff_modes() {
    let jacobi = |nodes: usize, sim: SimTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    let sor = |nodes: usize, sim: SimTuning| SorConfig {
        size: 16,
        iterations: 2,
        omega: 1.25,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    let matmul = |nodes: usize, sim: SimTuning| MatmulConfig {
        n: 8,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_madd_us: 0.01,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    use dsm_pm2::pm2::HandoffMode;
    assert_eq!(SimTuning::baton().handoff, HandoffMode::Baton);
    assert_eq!(SimTuning::legacy().handoff, HandoffMode::LegacyCondvar);
    // Pin the baseline mode explicitly: `SimTuning::default()` honours the
    // `DSM_SIM_HANDOFF` override, and this matrix must compare fixed modes
    // no matter what environment CI re-runs it under.
    let continuation = SimTuning::default().with_handoff(HandoffMode::Continuation);
    let cells = |w: usize| {
        [
            continuation.with_workers(w),
            SimTuning::baton().with_workers(w),
            SimTuning::legacy().with_workers(w),
        ]
    };
    for proto in MATRIX_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let base_j = run_jacobi(&jacobi(nodes, continuation), proto);
            let base_s = run_sor(&sor(nodes, continuation), proto);
            let base_m = run_matmul(&matmul(nodes, continuation), proto);
            for workers in [1usize, 2, 4] {
                for sim in cells(workers) {
                    if workers == 1 && sim.handoff == HandoffMode::Continuation {
                        continue; // the baseline cell itself
                    }
                    let mode = sim.handoff;

                    let r = run_jacobi(&jacobi(nodes, sim), proto);
                    assert_eq!(
                        r.final_cells, base_j.final_cells,
                        "jacobi memory diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );
                    assert_eq!(
                        r.elapsed, base_j.elapsed,
                        "jacobi virtual time diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );

                    let r = run_sor(&sor(nodes, sim), proto);
                    assert_eq!(
                        r.final_cells, base_s.final_cells,
                        "sor memory diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );
                    assert_eq!(
                        r.elapsed, base_s.elapsed,
                        "sor virtual time diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );

                    let r = run_matmul(&matmul(nodes, sim), proto);
                    assert_eq!(
                        r.final_cells, base_m.final_cells,
                        "matmul memory diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );
                    assert_eq!(
                        r.elapsed, base_m.elapsed,
                        "matmul virtual time diverged under {mode:?} x {workers} workers x {proto} x {nodes} nodes"
                    );
                }
            }
        }
    }
}

/// The matrix across scheduler worker counts: every protocol × workload ×
/// node-count cell runs on the 1-, 2- and 4-worker engine, and the 2- and
/// 4-worker runs must be bit-identical to the 1-worker run — final shared
/// memory AND virtual completion time. This is the safety net of the PR 5
/// multi-worker engine: sharding the event queue and executing same-instant
/// events of different nodes in parallel must never change what the
/// simulation computes, only how fast the host computes it.
#[test]
fn conformance_matrix_across_worker_counts() {
    let jacobi = |nodes: usize, sim: SimTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    let sor = |nodes: usize, sim: SimTuning| SorConfig {
        size: 16,
        iterations: 2,
        omega: 1.25,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    let matmul = |nodes: usize, sim: SimTuning| MatmulConfig {
        n: 8,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_madd_us: 0.01,
        tuning: scale_out_tuning(),
        sim,
        transport: TransportTuning::default(),
    };
    let one = |w: usize| SimTuning::default().with_workers(w);
    for proto in MATRIX_PROTOCOLS {
        for nodes in [2usize, 4] {
            let base_j = run_jacobi(&jacobi(nodes, one(1)), proto);
            let base_s = run_sor(&sor(nodes, one(1)), proto);
            let base_m = run_matmul(&matmul(nodes, one(1)), proto);
            for workers in [2usize, 4] {
                let r = run_jacobi(&jacobi(nodes, one(workers)), proto);
                assert_eq!(
                    r.final_cells, base_j.final_cells,
                    "jacobi memory diverged at {workers} workers under {proto} x {nodes} nodes"
                );
                assert_eq!(
                    r.elapsed, base_j.elapsed,
                    "jacobi virtual time diverged at {workers} workers under {proto} x {nodes} nodes"
                );

                let r = run_sor(&sor(nodes, one(workers)), proto);
                assert_eq!(
                    r.final_cells, base_s.final_cells,
                    "sor memory diverged at {workers} workers under {proto} x {nodes} nodes"
                );
                assert_eq!(
                    r.elapsed, base_s.elapsed,
                    "sor virtual time diverged at {workers} workers under {proto} x {nodes} nodes"
                );

                let r = run_matmul(&matmul(nodes, one(workers)), proto);
                assert_eq!(
                    r.final_cells, base_m.final_cells,
                    "matmul memory diverged at {workers} workers under {proto} x {nodes} nodes"
                );
                assert_eq!(
                    r.elapsed, base_m.elapsed,
                    "matmul virtual time diverged at {workers} workers under {proto} x {nodes} nodes"
                );
            }
        }
    }
}

#[test]
fn conformance_matrix_matmul() {
    let config = |nodes: usize, tuning: DsmTuning| MatmulConfig {
        n: 8,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_madd_us: 0.01,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    let baseline = run_matmul(&config(1, DsmTuning::legacy()), "li_hudak");
    assert!(baseline.final_cells.iter().any(|&c| c != 0));
    for proto in MATRIX_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let r = run_matmul(&config(nodes, scale_out_tuning()), proto);
            assert_eq!(
                r.final_cells, baseline.final_cells,
                "matmul final memory diverged under {proto} x {nodes} nodes"
            );
        }
    }
}

/// The matrix under the `Contended` and `Lossy` transport backends: every
/// protocol × workload × node-count cell must converge to the *same final
/// shared memory* as the Ideal baseline — the wire may stall frames at NICs,
/// drop them and retransmit, but above the transport seam the protocols must
/// be unaffected. At the same time the wire statistics must show that the
/// backends really did something: the contended rows must accumulate NIC
/// stalls and the lossy rows must drop (and retransmit) frames somewhere in
/// the matrix. Single-node cells are skipped — with one node there is no
/// wire for the backends to act on.
#[test]
fn conformance_matrix_under_contended_and_lossy_transports() {
    use dsm_pm2::pm2::TransportBackend;

    let jacobi = |nodes: usize, transport: TransportTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim: SimTuning::default(),
        transport,
    };
    let sor = |nodes: usize, transport: TransportTuning| SorConfig {
        size: 16,
        iterations: 2,
        omega: 1.25,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning: scale_out_tuning(),
        sim: SimTuning::default(),
        transport,
    };
    let matmul = |nodes: usize, transport: TransportTuning| MatmulConfig {
        n: 8,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_madd_us: 0.01,
        tuning: scale_out_tuning(),
        sim: SimTuning::default(),
        transport,
    };

    let jacobi_baseline = run_jacobi(&jacobi(1, TransportTuning::ideal()), "li_hudak");
    let sor_baseline = run_sor(&sor(1, TransportTuning::ideal()), "li_hudak");
    let matmul_baseline = run_matmul(&matmul(1, TransportTuning::ideal()), "li_hudak");

    let mut contended_stall_ns = 0u64;
    let mut lossy_drops = 0u64;
    let mut lossy_retransmits = 0u64;
    for transport in [TransportTuning::contended(), TransportTuning::lossy(0xDD5)] {
        let lossy = matches!(transport.backend, TransportBackend::Lossy(_));
        for proto in MATRIX_PROTOCOLS {
            for nodes in [2usize, 4] {
                let r = run_jacobi(&jacobi(nodes, transport), proto);
                assert_eq!(
                    r.final_cells,
                    jacobi_baseline.final_cells,
                    "jacobi memory diverged under {proto} x {nodes} nodes on the {} backend",
                    transport.backend.name()
                );
                if lossy {
                    lossy_drops += r.wire.drops;
                    lossy_retransmits += r.wire.retransmits;
                } else {
                    contended_stall_ns += r.wire.contention_stall_ns();
                }

                let r = run_sor(&sor(nodes, transport), proto);
                assert_eq!(
                    r.final_cells,
                    sor_baseline.final_cells,
                    "sor memory diverged under {proto} x {nodes} nodes on the {} backend",
                    transport.backend.name()
                );
                if lossy {
                    lossy_drops += r.wire.drops;
                    lossy_retransmits += r.wire.retransmits;
                } else {
                    contended_stall_ns += r.wire.contention_stall_ns();
                }

                let r = run_matmul(&matmul(nodes, transport), proto);
                assert_eq!(
                    r.final_cells,
                    matmul_baseline.final_cells,
                    "matmul memory diverged under {proto} x {nodes} nodes on the {} backend",
                    transport.backend.name()
                );
                if lossy {
                    lossy_drops += r.wire.drops;
                    lossy_retransmits += r.wire.retransmits;
                } else {
                    contended_stall_ns += r.wire.contention_stall_ns();
                }
            }
        }
    }
    assert!(
        contended_stall_ns > 0,
        "the contended backend never stalled a frame across the whole matrix"
    );
    assert!(
        lossy_drops > 0 && lossy_retransmits > 0,
        "the lossy backend never dropped a frame across the whole matrix"
    );
}

// ---------------------------------------------------------------------------
// Line-granularity conformance matrix (PR 10)
// ---------------------------------------------------------------------------

/// The protocols that opt into sub-page coherence units.
const SUBPAGE_PROTOCOLS: [&str; 3] = ["li_hudak_fixed", "erc_sw", "hbrc_mw"];

/// Splitting pages into independently-owned lines must never change what the
/// programs compute: every supporting protocol × {jacobi, sor, false_sharing}
/// × {1, 2, 4} nodes cell runs at 256-byte (and for the false-sharing kernel
/// also 64-byte) line granularity and must produce final shared memory
/// bit-identical to the whole-page run of the same cell. The one-sided read
/// fast path rides along on the line rows — it must be equally invisible.
#[test]
fn conformance_matrix_line_granularity() {
    let jacobi = |nodes: usize, tuning: DsmTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    let sor = |nodes: usize, tuning: DsmTuning| SorConfig {
        size: 16,
        iterations: 2,
        omega: 1.25,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    let fs = |nodes: usize, tuning: DsmTuning| {
        let mut c = FalseSharingConfig::small(nodes);
        c.network = dsm_pm2::pm2::profiles::bip_myrinet();
        c.tuning = tuning;
        c
    };
    let line = |bytes: usize| scale_out_tuning().with_granularity(bytes);
    let one_sided = |bytes: usize| line(bytes).with_one_sided_reads();
    for proto in SUBPAGE_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let base_j = run_jacobi(&jacobi(nodes, scale_out_tuning()), proto);
            let base_s = run_sor(&sor(nodes, scale_out_tuning()), proto);
            let base_f = run_false_sharing(&fs(nodes, scale_out_tuning()), proto);
            for tuning in [line(256), one_sided(256)] {
                let os = tuning.one_sided_reads;
                let r = run_jacobi(&jacobi(nodes, tuning), proto);
                assert_eq!(
                    r.final_cells, base_j.final_cells,
                    "jacobi memory diverged at line granularity under {proto} x {nodes} nodes (one_sided={os})"
                );
                let r = run_sor(&sor(nodes, tuning), proto);
                assert_eq!(
                    r.final_cells, base_s.final_cells,
                    "sor memory diverged at line granularity under {proto} x {nodes} nodes (one_sided={os})"
                );
                let r = run_false_sharing(&fs(nodes, tuning), proto);
                assert_eq!(
                    r.final_slots, base_f.final_slots,
                    "false_sharing memory diverged at line granularity under {proto} x {nodes} nodes (one_sided={os})"
                );
            }
            // The kernel built for the ablation also runs at its own stride.
            let r = run_false_sharing(&fs(nodes, line(64)), proto);
            assert_eq!(
                r.final_slots, base_f.final_slots,
                "false_sharing memory diverged at 64-byte lines under {proto} x {nodes} nodes"
            );
        }
    }
}

/// Protocols that do NOT opt into sub-page units must clamp a requested line
/// granularity back to whole pages transparently: the run is bit-identical —
/// final memory AND virtual time — to the default-granularity run.
#[test]
fn non_subpage_protocols_clamp_granularity_to_pages() {
    let jacobi = |nodes: usize, tuning: DsmTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    for proto in ["li_hudak", "migrate_thread", "hlrc_notices", "java_ic"] {
        for nodes in [2usize, 4] {
            let base = run_jacobi(&jacobi(nodes, scale_out_tuning()), proto);
            let clamped = run_jacobi(
                &jacobi(nodes, scale_out_tuning().with_granularity(256)),
                proto,
            );
            assert_eq!(
                clamped.final_cells, base.final_cells,
                "clamped jacobi memory diverged under {proto} x {nodes} nodes"
            );
            assert_eq!(
                clamped.elapsed, base.elapsed,
                "clamped jacobi virtual time diverged under {proto} x {nodes} nodes"
            );
        }
    }
}

/// An *explicit* whole-page granularity (4096) must be byte-for-byte the same
/// machine as the default (0 = unset): final memory AND virtual completion
/// time agree for every protocol in the matrix. This pins the tentpole's
/// compatibility claim — the line machinery at its default setting is not a
/// new code path, it IS the old one.
#[test]
fn explicit_page_granularity_is_bit_identical_to_default() {
    let jacobi = |nodes: usize, tuning: DsmTuning| JacobiConfig {
        size: 16,
        iterations: 2,
        nodes,
        network: dsm_pm2::pm2::profiles::bip_myrinet(),
        compute_per_cell_us: 0.02,
        tuning,
        sim: SimTuning::default(),
        transport: TransportTuning::default(),
    };
    for proto in MATRIX_PROTOCOLS {
        for nodes in MATRIX_NODES {
            let base = run_jacobi(&jacobi(nodes, scale_out_tuning()), proto);
            let explicit = run_jacobi(
                &jacobi(nodes, scale_out_tuning().with_granularity(4096)),
                proto,
            );
            assert_eq!(
                explicit.final_cells, base.final_cells,
                "explicit page granularity changed jacobi memory under {proto} x {nodes} nodes"
            );
            assert_eq!(
                explicit.elapsed, base.elapsed,
                "explicit page granularity changed jacobi virtual time under {proto} x {nodes} nodes"
            );
        }
    }
}
