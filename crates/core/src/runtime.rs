//! The DSM runtime: ties together the page manager, the communication module,
//! the protocol registry, shared-memory allocation and DSM thread creation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dsmpm2_madeleine::NodeId;
use dsmpm2_pm2::{DsmTuning, Engine, Pm2Cluster, Pm2Config, Pm2ThreadState, SpawnOptions};

use crate::costs::DsmCosts;
use crate::ctx::DsmThreadCtx;
use crate::frames::FrameStore;
use crate::page::{
    lines_per_page, pages_covering, validate_line_size, Access, DsmAddr, LineIx, PageId, PAGE_SIZE,
};
use crate::page_table::PageTable;
use crate::protocol::{DsmProtocol, ProtocolId};
use crate::stats::DsmStats;
use crate::sync::{BarrierId, BarrierState, LockId, LockState};

/// Static, cluster-wide information about one page (held identically by every
/// node; it never changes after allocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageMeta {
    /// Home node of the page.
    pub home: NodeId,
    /// Protocol managing the page.
    pub protocol: ProtocolId,
    /// Coherence-line size of the page (`PAGE_SIZE` at the default
    /// whole-page granularity).
    pub line_size: usize,
}

/// Placement policy for the pages of a DSM allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HomePolicy {
    /// Pages are homed round-robin across the nodes (the default: it spreads
    /// both storage and service load).
    #[default]
    RoundRobin,
    /// Every page is homed on one fixed node.
    Fixed(NodeId),
    /// The allocation is split into one contiguous block of pages per node.
    Block,
}

/// Attributes of a DSM allocation (the analogue of `dsm_attr_t`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DsmAttr {
    /// Protocol managing the allocated pages; `None` selects the default
    /// protocol installed with [`DsmRuntime::set_default_protocol`].
    pub protocol: Option<ProtocolId>,
    /// Home placement of the allocated pages.
    pub home: HomePolicy,
    /// Per-region coherence granularity override in bytes; `None` uses
    /// [`dsmpm2_pm2::DsmTuning::granularity`]. Must divide `PAGE_SIZE`.
    /// Silently clamped to whole pages when the region's protocol does not
    /// support sub-page coherence ([`DsmProtocol::supports_subpage`]).
    pub granularity: Option<usize>,
}

impl DsmAttr {
    /// Attribute selecting an explicit protocol.
    pub fn with_protocol(protocol: ProtocolId) -> Self {
        DsmAttr {
            protocol: Some(protocol),
            home: HomePolicy::default(),
            granularity: None,
        }
    }

    /// Set the home placement policy.
    pub fn home(mut self, policy: HomePolicy) -> Self {
        self.home = policy;
        self
    }

    /// Set a per-region coherence granularity (bytes per line).
    pub fn granularity(mut self, bytes: usize) -> Self {
        self.granularity = Some(bytes);
        self
    }
}

struct NodeState {
    table: PageTable,
    frames: FrameStore,
}

pub(crate) struct RuntimeInner {
    cluster: Pm2Cluster,
    costs: DsmCosts,
    tuning: DsmTuning,
    pub(crate) outbox: Option<crate::comm::DsmOutbox>,
    nodes: Vec<NodeState>,
    directory: Mutex<HashMap<PageId, PageMeta>>,
    /// Effective coherence granularity of every allocation, keyed by region
    /// base address (after protocol-capability clamping).
    region_granularity: Mutex<HashMap<DsmAddr, usize>>,
    protocols: RwLock<Vec<Arc<dyn DsmProtocol>>>,
    default_protocol: AtomicUsize,
    pub(crate) locks: Mutex<HashMap<u64, Arc<LockState>>>,
    pub(crate) barriers: Mutex<HashMap<u64, Arc<BarrierState>>>,
    next_lock: AtomicU64,
    next_barrier: AtomicU64,
    stats: DsmStats,
    verify_hooks: Option<Arc<dyn crate::verify::VerifyHooks>>,
}

const NO_DEFAULT: usize = usize::MAX;

/// Handle on the DSM runtime. Cheap to clone; all clones refer to the same
/// distributed shared memory.
pub struct DsmRuntime {
    inner: Arc<RuntimeInner>,
}

impl Clone for DsmRuntime {
    fn clone(&self) -> Self {
        DsmRuntime {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl DsmRuntime {
    /// Boot a PM2 cluster with `config` and install the DSM layer on it.
    pub fn new(engine: &Engine, config: Pm2Config) -> Self {
        let cluster = Pm2Cluster::new(engine, config);
        Self::with_cluster(cluster)
    }

    /// Install the DSM layer on an already-booted cluster.
    pub fn with_cluster(cluster: Pm2Cluster) -> Self {
        Self::with_cluster_and_costs(cluster, DsmCosts::default())
    }

    /// Install the DSM layer with explicit cost constants (used by the
    /// ablation benchmarks).
    pub fn with_cluster_and_costs(cluster: Pm2Cluster, costs: DsmCosts) -> Self {
        let tuning = cluster.config().dsm;
        let nodes = cluster
            .topology()
            .nodes()
            .map(|n| NodeState {
                table: PageTable::with_shards(n, tuning.page_table_shards),
                frames: FrameStore::new(n),
            })
            .collect();
        let runtime = DsmRuntime {
            inner: Arc::new(RuntimeInner {
                outbox: tuning
                    .batch_messages
                    .then(|| crate::comm::DsmOutbox::new(tuning.batch_window)),
                cluster,
                costs,
                tuning,
                nodes,
                directory: Mutex::new(HashMap::new()),
                region_granularity: Mutex::new(HashMap::new()),
                protocols: RwLock::new(Vec::new()),
                default_protocol: AtomicUsize::new(NO_DEFAULT),
                locks: Mutex::new(HashMap::new()),
                barriers: Mutex::new(HashMap::new()),
                next_lock: AtomicU64::new(1),
                next_barrier: AtomicU64::new(1),
                stats: DsmStats::new(),
                verify_hooks: crate::verify::global_verify_hooks(),
            }),
        };
        crate::comm::register_dsm_services(&runtime);
        runtime
    }

    /// The PM2 cluster this DSM runs on.
    pub fn cluster(&self) -> &Pm2Cluster {
        &self.inner.cluster
    }

    pub(crate) fn inner(&self) -> &RuntimeInner {
        &self.inner
    }

    pub(crate) fn downgrade(&self) -> std::sync::Weak<RuntimeInner> {
        Arc::downgrade(&self.inner)
    }

    /// Verify-hooks observer captured at construction, if one was installed.
    pub(crate) fn hooks(&self) -> Option<&Arc<dyn crate::verify::VerifyHooks>> {
        self.inner.verify_hooks.as_ref()
    }

    pub(crate) fn from_inner(inner: Arc<RuntimeInner>) -> DsmRuntime {
        DsmRuntime { inner }
    }

    /// Number of cluster nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.cluster.num_nodes()
    }

    /// DSM cost constants.
    pub fn costs(&self) -> &DsmCosts {
        &self.inner.costs
    }

    /// The tuning knobs this runtime was installed with (from the cluster
    /// configuration).
    pub fn tuning(&self) -> DsmTuning {
        self.inner.tuning
    }

    /// DSM statistics.
    pub fn stats(&self) -> &DsmStats {
        &self.inner.stats
    }

    /// The page table of `node`.
    pub fn page_table(&self, node: NodeId) -> &PageTable {
        &self.inner.nodes[node.index()].table
    }

    /// The frame store of `node`.
    pub fn frames(&self, node: NodeId) -> &FrameStore {
        &self.inner.nodes[node.index()].frames
    }

    // ----- protocol registry -------------------------------------------------

    /// Register a protocol and return its identifier (the analogue of
    /// `dsm_create_protocol`).
    pub fn register_protocol(&self, protocol: Arc<dyn DsmProtocol>) -> ProtocolId {
        let mut protocols = self.inner.protocols.write();
        protocols.push(protocol);
        ProtocolId(protocols.len() - 1)
    }

    /// Install `protocol` as the default for subsequent allocations
    /// (`pm2_dsm_set_default_protocol`).
    pub fn set_default_protocol(&self, protocol: ProtocolId) {
        assert!(
            protocol.0 < self.inner.protocols.read().len(),
            "cannot set unregistered {protocol} as default"
        );
        self.inner
            .default_protocol
            .store(protocol.0, Ordering::SeqCst);
    }

    /// The current default protocol.
    ///
    /// # Panics
    /// Panics if no default protocol was installed.
    pub fn default_protocol(&self) -> ProtocolId {
        let idx = self.inner.default_protocol.load(Ordering::SeqCst);
        assert!(
            idx != NO_DEFAULT,
            "no default protocol installed; call set_default_protocol first"
        );
        ProtocolId(idx)
    }

    /// Look up a registered protocol.
    pub fn protocol(&self, id: ProtocolId) -> Arc<dyn DsmProtocol> {
        self.inner
            .protocols
            .read()
            .get(id.0)
            .cloned()
            .unwrap_or_else(|| panic!("unknown protocol {id}"))
    }

    /// Find a registered protocol by name.
    pub fn protocol_by_name(&self, name: &str) -> Option<ProtocolId> {
        self.inner
            .protocols
            .read()
            .iter()
            .position(|p| p.name() == name)
            .map(ProtocolId)
    }

    /// Names of every registered protocol, in registration order.
    pub fn protocol_names(&self) -> Vec<String> {
        self.inner
            .protocols
            .read()
            .iter()
            .map(|p| p.name().to_string())
            .collect()
    }

    /// The protocol managing `page`.
    pub fn protocol_for_page(&self, page: PageId) -> Arc<dyn DsmProtocol> {
        let meta = self.page_meta(page);
        self.protocol(meta.protocol)
    }

    /// The distinct protocols currently managing at least one page, in
    /// registration order. Lock and barrier hooks are invoked once per
    /// protocol in use.
    pub fn protocols_in_use(&self) -> Vec<ProtocolId> {
        let mut ids: Vec<ProtocolId> = self
            .inner
            .directory
            .lock()
            .values()
            .map(|m| m.protocol)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Cluster-wide static information about `page`.
    pub fn page_meta(&self, page: PageId) -> PageMeta {
        self.inner
            .directory
            .lock()
            .get(&page)
            .copied()
            .unwrap_or_else(|| panic!("{page} is not part of any DSM allocation"))
    }

    /// True if `page` belongs to a DSM allocation.
    pub fn is_dsm_page(&self, page: PageId) -> bool {
        self.inner.directory.lock().contains_key(&page)
    }

    // ----- allocation --------------------------------------------------------

    /// Allocate `bytes` of shared memory managed by the protocol and placement
    /// selected by `attr` (the analogue of `dsm_malloc`). Returns the
    /// iso-address of the first byte; the memory is zero-initialised.
    pub fn dsm_malloc(&self, bytes: u64, attr: DsmAttr) -> DsmAddr {
        assert!(bytes > 0, "cannot allocate zero bytes of shared memory");
        let protocol = attr.protocol.unwrap_or_else(|| self.default_protocol());
        assert!(
            protocol.0 < self.inner.protocols.read().len(),
            "allocation references unregistered {protocol}"
        );
        // Effective coherence granularity: the per-region override wins over
        // the cluster-wide tuning default (0 = whole pages); protocols that
        // do not manage sub-page units clamp the region back to whole pages.
        let requested = attr.granularity.unwrap_or({
            let g = self.inner.tuning.granularity;
            if g == 0 {
                PAGE_SIZE
            } else {
                g
            }
        });
        let requested = validate_line_size(requested);
        let line_size = if self.protocol(protocol).supports_subpage() {
            requested
        } else {
            PAGE_SIZE
        };
        let range = self
            .inner
            .cluster
            .isomalloc()
            .alloc_shared(bytes, PAGE_SIZE as u64);
        let base = DsmAddr(range.start);
        self.inner.region_granularity.lock().insert(base, line_size);
        let pages = pages_covering(base, range.len);
        let num_nodes = self.num_nodes();
        let mut directory = self.inner.directory.lock();
        for (i, &page) in pages.iter().enumerate() {
            let home = match attr.home {
                HomePolicy::RoundRobin => NodeId(i % num_nodes),
                HomePolicy::Fixed(node) => {
                    assert!(
                        self.inner.cluster.topology().contains(node),
                        "home {node} is not part of the cluster"
                    );
                    node
                }
                HomePolicy::Block => NodeId((i * num_nodes) / pages.len()),
            };
            directory.insert(
                page,
                PageMeta {
                    home,
                    protocol,
                    line_size,
                },
            );
            for node in self.inner.cluster.topology().nodes() {
                self.page_table(node)
                    .ensure_lines(page, home, protocol, line_size);
            }
            for line in 0..lines_per_page(line_size) {
                self.page_table(home).update_at(page, LineIx(line), |e| {
                    e.access = Access::Write;
                    e.owned = true;
                    e.prob_owner = home;
                    e.copyset.insert(home);
                });
            }
            self.frames(home).ensure_zeroed(page);
        }
        base
    }

    /// Effective coherence granularity of the allocation based at `base`
    /// (after protocol-capability clamping), or `None` if `base` is not the
    /// base address of an allocation.
    pub fn region_granularity(&self, base: DsmAddr) -> Option<usize> {
        self.inner.region_granularity.lock().get(&base).copied()
    }

    /// Allocate the "static" shared data area (the `BEGIN_DSM_DATA` /
    /// `END_DSM_DATA` section of a DSM-PM2 program), managed by the default
    /// protocol and homed on node 0.
    pub fn dsm_static_area(&self, bytes: u64) -> DsmAddr {
        self.dsm_malloc(
            bytes,
            DsmAttr {
                protocol: None,
                home: HomePolicy::Fixed(NodeId(0)),
                granularity: None,
            },
        )
    }

    /// Switch the `bytes`-byte region starting at `addr` from its current
    /// protocol to `new_protocol`, returning the number of pages switched.
    ///
    /// The paper (§2.3) notes that DSM-PM2 has no dedicated support for
    /// switching a memory area between protocols within a run, but that it
    /// "can be achieved if needed through a careful synchronization at the
    /// program level (e.g. through barriers)", because the switch updates the
    /// distributed page table on every node. This helper performs exactly
    /// that table update; the *caller* is responsible for keeping every
    /// application thread away from the region while it runs (typically by
    /// bracketing it between two barriers), as in the original system.
    ///
    /// To hand the region over in a clean state, each page is reset to its
    /// home-owned initial state: the home node keeps the authoritative copy
    /// (with write access), every other node drops its copy and its rights.
    ///
    /// # Panics
    /// Panics if the region is not entirely covered by DSM allocations, if
    /// `new_protocol` is not registered, or if a page still has outstanding
    /// protocol activity (a fetch or acknowledgement in flight), which
    /// indicates the required synchronization was not respected.
    pub fn switch_region_protocol(
        &self,
        addr: DsmAddr,
        bytes: u64,
        new_protocol: ProtocolId,
    ) -> usize {
        assert!(
            new_protocol.0 < self.inner.protocols.read().len(),
            "cannot switch to unregistered {new_protocol}"
        );
        let pages = pages_covering(addr, bytes);
        let new_supports_subpage = self.protocol(new_protocol).supports_subpage();
        let mut directory = self.inner.directory.lock();
        for &page in &pages {
            let meta = directory
                .get_mut(&page)
                .unwrap_or_else(|| panic!("{page} is not part of any DSM allocation"));
            let home = meta.home;
            let old_line_size = meta.line_size;
            // A sub-page region keeps its granularity if the new protocol
            // handles it, otherwise it is clamped back to whole pages.
            let new_line_size = if new_supports_subpage {
                old_line_size
            } else {
                PAGE_SIZE
            };
            meta.protocol = new_protocol;
            meta.line_size = new_line_size;
            let lines = lines_per_page(old_line_size);
            for node in self.inner.cluster.topology().nodes() {
                for line in 0..lines {
                    let entry = self.page_table(node).get_at(page, LineIx(line));
                    assert!(
                        !entry.pending_fetch && entry.pending_acks == 0,
                        "protocol switch of {page} raced with in-flight protocol activity on node \
                         {node}; synchronize (e.g. with barriers) before switching"
                    );
                }
            }
            // Consolidate every remote copy into the home frame before
            // resetting rights, so no write is lost across the switch.
            self.frames(home).ensure_zeroed(page);
            for node in self.inner.cluster.topology().nodes() {
                if node == home {
                    continue;
                }
                if crate::mutant::active("doomed_frame_write") {
                    // Historical bug: the switch evicted remote frames up
                    // front, dooming their modified contents before the
                    // consolidation below could merge them home.
                    self.frames(node).evict(page);
                }
                if self.frames(node).has(page) {
                    let had_twin = self.frames(node).has_twin(page);
                    let had_recorded = self.frames(node).has_recorded(page);
                    if had_twin {
                        // Multiple-writer replica: its modifications relative
                        // to the twin merge into the home copy.
                        let diff = self.frames(node).take_twin_diff(page);
                        if !diff.is_empty() {
                            self.frames(home).apply_diff(page, &diff);
                        }
                    } else if had_recorded {
                        let diff = self.frames(node).take_recorded_diff(page);
                        if !diff.is_empty() {
                            self.frames(home).apply_diff(page, &diff);
                        }
                    }
                    for line in 0..lines {
                        let line = LineIx(line);
                        let entry = self.page_table(node).get_at(page, line);
                        if self.frames(node).has_line_twin(page, line) {
                            // Sub-page multiple-writer replica: merge this
                            // line's modifications relative to its line twin.
                            let (off, _) = entry.line_span();
                            let diff = self.frames(node).take_line_twin_diff(page, line, off);
                            if !diff.is_empty() {
                                self.frames(home).apply_diff(page, &diff);
                            }
                        } else if !had_twin
                            && !had_recorded
                            && (entry.access == Access::Write || entry.owned)
                        {
                            // Owner under a single-writer protocol: there is
                            // no twin, the held range is authoritative — also
                            // when serving read copies downgraded the owner's
                            // own access to read-only.
                            let (off, len) = entry.line_span();
                            if len == PAGE_SIZE {
                                let data = self.frames(node).snapshot(page);
                                self.frames(home).install(page, data);
                            } else {
                                let data = self.frames(node).snapshot_range(page, off, len);
                                self.frames(home).install_line(page, line, off, &data);
                            }
                        }
                    }
                    self.frames(node).evict(page);
                }
            }
            if new_line_size == old_line_size {
                // Same geometry: reset entries in place (preserving version
                // and ownership-succession history, as the page-granularity
                // switch always has).
                for node in self.inner.cluster.topology().nodes() {
                    if node == home {
                        continue;
                    }
                    for line in 0..lines {
                        self.page_table(node).update_at(page, LineIx(line), |e| {
                            e.protocol = new_protocol;
                            e.access = Access::None;
                            e.owned = false;
                            e.prob_owner = home;
                            e.copyset.clear();
                            e.modified_since_release = false;
                        });
                    }
                }
                for line in 0..lines {
                    self.page_table(home).update_at(page, LineIx(line), |e| {
                        e.protocol = new_protocol;
                        e.access = Access::Write;
                        e.owned = true;
                        e.prob_owner = home;
                        e.copyset.clear();
                        e.copyset.insert(home);
                        e.modified_since_release = false;
                        e.version += 1;
                    });
                }
            } else {
                // Geometry change (sub-page region clamped back to whole
                // pages): rebuild the entries at the new line size.
                let version = self.page_table(home).get(page).version + 1;
                for node in self.inner.cluster.topology().nodes() {
                    self.page_table(node).remove_page(page);
                    self.page_table(node)
                        .ensure_lines(page, home, new_protocol, new_line_size);
                }
                for line in 0..lines_per_page(new_line_size) {
                    self.page_table(home).update_at(page, LineIx(line), |e| {
                        e.access = Access::Write;
                        e.owned = true;
                        e.prob_owner = home;
                        e.copyset.insert(home);
                        e.version = version;
                    });
                }
            }
        }
        pages.len()
    }

    // ----- threads -----------------------------------------------------------

    /// Spawn a DSM application thread on `node`. The closure receives a
    /// [`DsmThreadCtx`] giving access to shared memory, locks, barriers and
    /// thread migration.
    pub fn spawn_dsm_thread<F>(
        &self,
        node: NodeId,
        name: impl Into<String>,
        f: F,
    ) -> Arc<Pm2ThreadState>
    where
        F: FnOnce(&mut DsmThreadCtx<'_, '_>) + Send + 'static,
    {
        self.spawn_dsm_thread_with(node, name, SpawnOptions::default(), f)
    }

    /// [`DsmRuntime::spawn_dsm_thread`] with explicit scheduler
    /// [`SpawnOptions`] — the per-thread escape hatch onto the OS-thread
    /// baton (or a bigger continuation stack) for bodies with deep
    /// recursion, e.g. branch-and-bound searches.
    pub fn spawn_dsm_thread_with<F>(
        &self,
        node: NodeId,
        name: impl Into<String>,
        opts: SpawnOptions,
        f: F,
    ) -> Arc<Pm2ThreadState>
    where
        F: FnOnce(&mut DsmThreadCtx<'_, '_>) + Send + 'static,
    {
        let runtime = self.clone();
        self.inner
            .cluster
            .spawn_thread_on_with(node, name, opts, move |pm2| {
                let mut ctx = DsmThreadCtx::new(pm2, runtime);
                f(&mut ctx);
            })
    }

    // ----- synchronization objects -------------------------------------------

    /// Create a DSM lock managed by `manager` (or by a node chosen round-robin
    /// if `None`).
    pub fn create_lock(&self, manager: Option<NodeId>) -> LockId {
        let id = self.inner.next_lock.fetch_add(1, Ordering::SeqCst);
        let manager = manager.unwrap_or(NodeId(id as usize % self.num_nodes()));
        self.inner
            .locks
            .lock()
            .insert(id, Arc::new(LockState::new(manager)));
        LockId(id)
    }

    /// Create a DSM barrier for `parties` participants, managed by `manager`
    /// (or node 0 if `None`).
    pub fn create_barrier(&self, parties: usize, manager: Option<NodeId>) -> BarrierId {
        let id = self.inner.next_barrier.fetch_add(1, Ordering::SeqCst);
        let manager = manager.unwrap_or(NodeId(0));
        self.inner
            .barriers
            .lock()
            .insert(id, Arc::new(BarrierState::new(manager, parties)));
        BarrierId(id)
    }

    pub(crate) fn lock_state(&self, lock: LockId) -> Arc<LockState> {
        self.inner
            .locks
            .lock()
            .get(&lock.0)
            .cloned()
            .unwrap_or_else(|| panic!("unknown DSM lock {lock:?}"))
    }

    pub(crate) fn barrier_state(&self, barrier: BarrierId) -> Arc<BarrierState> {
        self.inner
            .barriers
            .lock()
            .get(&barrier.0)
            .cloned()
            .unwrap_or_else(|| panic!("unknown DSM barrier {barrier:?}"))
    }

    /// The manager node of `lock`.
    pub fn lock_manager(&self, lock: LockId) -> NodeId {
        self.lock_state(lock).manager
    }

    /// The manager node of `barrier`.
    pub fn barrier_manager(&self, barrier: BarrierId) -> NodeId {
        self.barrier_state(barrier).manager
    }
}

impl std::fmt::Debug for DsmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DsmRuntime({} nodes, {} protocols, {} pages)",
            self.num_nodes(),
            self.inner.protocols.read().len(),
            self.inner.directory.lock().len()
        )
    }
}
