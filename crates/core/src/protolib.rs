//! The DSM protocol library: thread-safe building blocks protocols are
//! assembled from.
//!
//! The paper describes this layer as "a toolbox \[that\] provides routines to
//! perform elementary actions such as bringing a copy of a remote page to a
//! thread, migrating a thread to some remote data, invalidating all copies of
//! a page, etc.". The built-in protocols (`dsmpm2-protocols`) and user-defined
//! hybrid protocols are written almost entirely in terms of these routines.
//!
//! Every routine operates on one *coherence unit* — `(page, line)`. The
//! page-level entry points address line 0, which at the default whole-page
//! granularity IS the page, so protocols that do not opt into sub-page
//! coherence ([`crate::DsmProtocol::supports_subpage`]) use this library
//! unchanged. Sub-page-capable protocols pass the faulting line through the
//! `*_at` variants, and the message-borne line index routes every server-side
//! action back to the same unit.

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::{BlockReason, SimHandle};

use crate::ctx::DsmThreadCtx;
use crate::msg::{FetchRead, FetchReply, Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, LineIx, PageId, LINE0, PAGE_SIZE};
use crate::runtime::DsmRuntime;

/// Client side of a page fetch: send a request for `access` on `page` to the
/// node currently believed to own it and block (in virtual time) until the
/// local rights are sufficient. Concurrent faults on the same page from the
/// same node coalesce into a single request.
pub fn request_page_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    access: Access,
) {
    request_unit_and_wait(sim, node, rt, page, LINE0, access);
}

/// [`request_page_and_wait`] for one coherence line: the unit of the request,
/// the in-flight-fetch coalescing and the wait are all line `line` of `page`.
pub fn request_unit_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
    access: Access,
) {
    let table = rt.page_table(node);
    loop {
        let (permitted, pending_fetch, prob_owner) = table.read_at(page, line, |e| {
            (e.access.permits(access), e.pending_fetch, e.prob_owner)
        });
        if permitted {
            return;
        }
        if !pending_fetch {
            table.update_at(page, line, |e| {
                e.pending_fetch = true;
                e.fetch_seq += 1;
            });
            sim.charge(rt.costs().table_update());
            // Write requests go to the page's home node, which acts as the
            // acquisition manager (Li & Hudak's improved centralized
            // manager); reads follow the ownership-history hint with the
            // home as fallback.
            let target = if access == Access::Write || prob_owner == node {
                rt.page_meta(page).home
            } else {
                prob_owner
            };
            rt.send_page_request(
                sim,
                node,
                target,
                PageRequest {
                    page,
                    line,
                    access,
                    requester: node,
                },
            );
        }
        let waiters = table.waiters_at(page, line);
        waiters.register(sim);
        // Re-check before really blocking (the transfer may have raced in).
        if table.access_at(page, line).permits(access) {
            waiters.deregister(sim);
            return;
        }
        sim.park_with(BlockReason::PageFault);
        waiters.deregister(sim);
    }
}

/// One-sided read fast path: fetch a read-only copy of the faulting line
/// directly from the home's frame, without waking a handler thread there.
/// Returns `true` if the line was installed (the fault is resolved) and
/// `false` if the home was contended — the caller then falls back to
/// [`request_unit_and_wait`]. Must only be called by protocols declaring
/// [`crate::DsmProtocol::one_sided_reads`], and only when
/// [`dsmpm2_pm2::DsmTuning::one_sided_reads`] is enabled.
pub fn one_sided_read(ctx: &mut DsmThreadCtx<'_, '_>, page: PageId, line: LineIx) -> bool {
    let rt = ctx.runtime().clone();
    let node = ctx.node();
    let home = rt.page_meta(page).home;
    let table = rt.page_table(node);
    // A fetch already in flight for this line means other local threads are
    // parked on the classic path; join them rather than racing it.
    let (permitted, pending_fetch) = table.read_at(page, line, |e| {
        (e.access.permits(Access::Read), e.pending_fetch)
    });
    if permitted {
        return true;
    }
    if pending_fetch || home == node {
        return false;
    }
    let reply = crate::comm::fetch_read_rpc(
        ctx,
        home,
        FetchRead {
            page,
            line,
            requester: node,
        },
    );
    match reply {
        FetchReply::Data {
            data,
            version,
            owner,
        } => {
            let sim = &mut *ctx.pm2.sim;
            let (line_offset, line_size) = table.read_at(page, line, |e| e.line_span());
            if line_size == PAGE_SIZE {
                rt.frames(node).install(page, data);
            } else {
                rt.frames(node).install_line(page, line, line_offset, &data);
            }
            table.update_at(page, line, |e| {
                // Never downgrade rights a racing classic transfer may have
                // granted in the meantime; only lift None to Read.
                if e.access == Access::None {
                    e.access = Access::Read;
                }
                e.prob_owner = owner;
                e.version = e.version.max(version);
                e.owner_version = e.owner_version.max(version);
            });
            sim.charge(rt.costs().install_overhead());
            sim.charge(rt.costs().table_update());
            table
                .waiters_at(page, line)
                .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
            true
        }
        FetchReply::Busy => false,
    }
}

/// Server-side guard: if this node is itself waiting for a copy of `page`
/// (a fetch is in flight), hold an incoming *read* request for the duration
/// of exactly that fetch instead of forwarding it along ownership hints that
/// are about to change.
///
/// Write requests never park here: they are serialized by the page's home
/// manager (see [`forward_request`]) and only ever routed to a node that has
/// finished acquiring ownership. Parking writes at arbitrary fetching nodes
/// is how wait-for cycles (and deadlocks) form under concurrent write
/// faults. The small re-dispatch charge after the wait lets the local
/// faulting thread complete the access it was waiting for before the page
/// can be served away again, which keeps heavy contention starvation-free.
pub fn defer_while_fetching(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let page = req.page;
    let line = req.line;
    let table = rt.page_table(node);
    let (owned, pending_fetch, fetch_seq) =
        table.read_at(page, line, |e| (e.owned, e.pending_fetch, e.fetch_seq));
    // Write requests are serialized by the home manager and only ever routed
    // to a node that finished acquiring ownership, so they never need to
    // park here. Read requests may race an in-flight fetch; park them for
    // the duration of exactly that fetch (same fetch_seq), then forward
    // along the refreshed hints.
    if req.requester == node || owned || !pending_fetch || req.access == Access::Write {
        return;
    }
    let waiters = table.waiters_at(page, line);
    waiters.wait_until_why(sim, BlockReason::PageFault, || {
        table.read_at(page, line, |e| !e.pending_fetch || e.fetch_seq != fetch_seq)
    });
    // Yield for a short re-dispatch delay so the local threads woken by the
    // page installation run strictly before this handler serves the page
    // away again: the node is guaranteed at least one successful local access
    // per page acquisition, which is what makes heavy write contention
    // starvation-free.
    sim.sleep(rt.costs().table_update());
}

/// Install a page (or line) received from another node: store the contents,
/// set the granted rights, update ownership hints and wake the local threads
/// waiting for the unit. Charges the requester-side protocol overhead.
pub fn install_received_page(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    transfer: &PageTransfer,
) {
    let table = rt.page_table(node);
    let line = transfer.line;
    let (line_offset, line_size) = table.read_at(transfer.page, line, |e| e.line_span());
    if line_size == PAGE_SIZE {
        rt.frames(node)
            .install(transfer.page, transfer.data.clone());
    } else {
        debug_assert_eq!(transfer.data.len(), line_size);
        rt.frames(node)
            .install_line(transfer.page, line, line_offset, &transfer.data);
    }
    table.update_at(transfer.page, line, |e| {
        e.access = transfer.grant;
        e.prob_owner = transfer.owner;
        e.queue_tail = None;
        e.owned = transfer.owner == node;
        e.version = transfer.version;
        e.owner_version = e.owner_version.max(transfer.version);
        e.pending_fetch = false;
        if transfer.owner == node {
            e.copyset = transfer.copyset.iter().copied().collect();
            e.copyset.insert(node);
        }
    });
    sim.charge(rt.costs().install_overhead());
    sim.charge(rt.costs().table_update());
    if transfer.grant == Access::Write && transfer.owner == node {
        notify_home_acquired_at(sim, node, rt, transfer.page, line, transfer.version);
    }
    table
        .waiters_at(transfer.page, line)
        .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
}

/// Owner side of a read request: add the requester to the copyset, downgrade
/// the local copy to read-only (single-writer protocols), and send a
/// read-only copy. The serving node remains the owner.
pub fn serve_read_copy(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let (version, line_offset, line_size) = table.update_at(req.page, req.line, |e| {
        if crate::mutant::active("copyset_wipe") {
            // Historical bug: the read server rebuilt the copyset from
            // scratch instead of accumulating, forgetting earlier readers
            // and leaving their replicas unreachable by invalidation.
            e.copyset.clear();
        }
        e.copyset.insert(req.requester);
        if e.access == Access::Write {
            e.access = Access::Read;
        }
        let (off, len) = e.line_span();
        (e.version, off, len)
    });
    let data = if line_size == PAGE_SIZE {
        rt.frames(node).snapshot(req.page)
    } else {
        rt.frames(node)
            .snapshot_range(req.page, line_offset, line_size)
    };
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            line: req.line,
            data,
            grant: Access::Read,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}

/// Owner side of a write request: transfer the page (or line) together with
/// ownership and the copyset; the local unit loses all rights.
pub fn serve_write_transfer(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let (copyset, version, line_offset, line_size) = table.update_at(req.page, req.line, |e| {
        let mut copyset: Vec<NodeId> = e.copyset.iter().copied().collect();
        copyset.retain(|&n| n != req.requester);
        e.copyset.clear();
        e.access = Access::None;
        e.owned = false;
        e.prob_owner = req.requester;
        e.queue_tail = if e.home == node {
            // Serving from the home: this acquisition is now in flight; the
            // manager admits the next write request once the requester's
            // AcquireDone arrives.
            Some(req.requester)
        } else {
            None
        };
        e.version += 1;
        e.owner_version = e.version;
        let (off, len) = e.line_span();
        (copyset, e.version, off, len)
    });
    let data = if line_size == PAGE_SIZE {
        rt.frames(node).snapshot(req.page)
    } else {
        rt.frames(node)
            .snapshot_range(req.page, line_offset, line_size)
    };
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            line: req.line,
            data,
            grant: Access::Write,
            owner: req.requester,
            copyset,
            version,
        },
    );
}

/// Forward a request along the probable-owner chain (dynamic distributed
/// manager). The forwarding node also updates its own hint to point at the
/// requester when ownership is about to move (write requests), which is the
/// path-compression rule of the Li & Hudak algorithm.
pub fn forward_request(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    let home = rt.page_meta(req.page).home;
    rt.stats().incr_request_forward();
    let line = req.line;
    if req.access == Access::Write {
        if node != home {
            // Ordinary nodes route write acquisitions to the manager.
            rt.send_page_request(sim, node, home, req.clone());
            return;
        }
        // Home manager (Li & Hudak's improved centralized manager): admit
        // one acquisition at a time and only hand requests to a node the
        // record proves holds ownership. Anything in between — an
        // acquisition in flight, a record still pointing at this node or at
        // the requester's *own* in-flight acquisition — is waited out; the
        // pending AcquireDone is what refreshes the record and wakes us.
        let page = req.page;
        let waiters = table.waiters_at(page, line);
        loop {
            let (owned, queue_tail, prob_owner) =
                table.read_at(page, line, |e| (e.owned, e.queue_tail, e.prob_owner));
            if owned {
                // The home itself owns the page: serve directly
                // (serve_write_transfer marks the new acquisition in flight).
                serve_write_transfer(sim, node, rt, req);
                return;
            }
            let own_admission = queue_tail == Some(req.requester);
            if queue_tail.is_some() && !own_admission {
                waiters.wait_until_why(sim, BlockReason::PageFault, || {
                    table.read_at(page, line, |e| {
                        e.owned || e.queue_tail.is_none() || e.queue_tail == Some(req.requester)
                    })
                });
                continue;
            }
            if prob_owner == node || (own_admission && prob_owner == req.requester) {
                // Record is stale (points at this non-owning node) or at the
                // requester's own unfinished acquisition: wait for fresher
                // ownership information.
                waiters.wait_until_why(sim, BlockReason::PageFault, || {
                    table.read_at(page, line, |e| {
                        e.owned
                            || (e.prob_owner != node
                                && !(e.queue_tail == Some(req.requester)
                                    && e.prob_owner == req.requester))
                    })
                });
                continue;
            }
            table.update_at(page, line, |e| e.queue_tail = Some(req.requester));
            rt.send_page_request(sim, node, prob_owner, req.clone());
            return;
        }
    }
    // Reads follow ownership history, which cannot cycle; fall back to the
    // home node on self- or requester-references.
    let prob_owner = table.read_at(req.page, line, |e| e.prob_owner);
    let target = if prob_owner != node && prob_owner != req.requester {
        prob_owner
    } else {
        home
    };
    rt.send_page_request(sim, node, target, req.clone());
}

/// Invalidate the copies of `page` held by `targets` and wait for every
/// acknowledgement. Used by write-invalidate protocols when a node acquires
/// write ownership, and by eager release consistency at lock release.
pub fn invalidate_copyset_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    invalidate_copyset_and_wait_at(sim, node, rt, page, LINE0, targets, new_owner, version);
}

/// [`invalidate_copyset_and_wait`] for one coherence line.
#[allow(clippy::too_many_arguments)]
pub fn invalidate_copyset_and_wait_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    send_copyset_invalidations_at(sim, node, rt, page, line, targets, new_owner, version);
    await_invalidation_acks_at(sim, node, rt, page, line);
}

/// Send-only half of [`invalidate_copyset_and_wait`]: register the expected
/// acknowledgements and transmit the invalidations without blocking.
/// Protocols invalidating several pages at once send all rounds first and
/// then collect every acknowledgement with [`await_invalidation_acks`], so
/// the rounds overlap in the network instead of serializing.
pub fn send_copyset_invalidations(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    send_copyset_invalidations_at(sim, node, rt, page, LINE0, targets, new_owner, version);
}

/// [`send_copyset_invalidations`] for one coherence line.
#[allow(clippy::too_many_arguments)]
pub fn send_copyset_invalidations_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    let targets: Vec<NodeId> = targets.iter().copied().filter(|&n| n != node).collect();
    if targets.is_empty() {
        return;
    }
    let table = rt.page_table(node);
    table.update_at(page, line, |e| e.pending_acks += targets.len());
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                line,
                from: node,
                new_owner,
                needs_ack: true,
                version,
            },
        );
    }
}

/// Wait-only half of [`invalidate_copyset_and_wait`]: block until every
/// acknowledgement registered for `page` has arrived.
pub fn await_invalidation_acks(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, page: PageId) {
    await_invalidation_acks_at(sim, node, rt, page, LINE0);
}

/// [`await_invalidation_acks`] for one coherence line.
pub fn await_invalidation_acks_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
) {
    let table = rt.page_table(node);
    let waiters = table.waiters_at(page, line);
    waiters.wait_until_why(sim, BlockReason::Ack, || {
        table.read_at(page, line, |e| e.pending_acks == 0)
    });
}

/// Apply an invalidation locally: drop the local copy and all rights on the
/// invalidated unit, update the probable-owner hint, and acknowledge if
/// requested. At whole-page granularity the frame is evicted; at sub-page
/// granularity only the line's rights (and its twin) are dropped — other
/// lines of the same frame may still be valid.
pub fn apply_invalidation(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, inv: &Invalidation) {
    let table = rt.page_table(node);
    let line_size = table.update_at(inv.page, inv.line, |e| {
        e.access = Access::None;
        e.owned = false;
        e.modified_since_release = false;
        // Only a strictly newer succession version may move the hint (a
        // late invalidation from an earlier reign would point it backwards,
        // letting request routing cycle) — except that a self-pointing
        // record on a non-owner is always worse than the sender's info.
        if inv.version > e.owner_version || e.prob_owner == node {
            e.owner_version = e.owner_version.max(inv.version);
            e.queue_tail = None;
            if let Some(owner) = inv.new_owner {
                e.prob_owner = owner;
            } else {
                e.prob_owner = inv.from;
            }
        }
        e.copyset.clear();
        e.line_size
    });
    if line_size == PAGE_SIZE {
        rt.frames(node).evict(inv.page);
    } else if rt.frames(node).has(inv.page) {
        rt.frames(node).drop_line_twin(inv.page, inv.line);
    }
    sim.charge(rt.costs().table_update());
    if inv.needs_ack {
        rt.send_invalidate_ack(sim, node, inv.from, inv.page, inv.line);
    }
}

/// Report a completed write acquisition to the page's home manager (or
/// record it directly when the new owner *is* the home).
pub fn notify_home_acquired(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    version: u64,
) {
    notify_home_acquired_at(sim, node, rt, page, LINE0, version);
}

/// [`notify_home_acquired`] for one coherence line.
pub fn notify_home_acquired_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
    version: u64,
) {
    let home = rt.page_meta(page).home;
    if home == node {
        let table = rt.page_table(node);
        table.update_at(page, line, |e| {
            if e.queue_tail == Some(node) {
                e.queue_tail = None;
            }
        });
        table
            .waiters_at(page, line)
            .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
    } else {
        rt.send_acquire_done(sim, node, home, page, line, node, version);
    }
}

/// Migrate the faulting thread to the node that owns (or is home to) `page`:
/// the thread-migration alternative to transferring the page. Charges the
/// (tiny) migration protocol overhead; the migration itself is costed by the
/// PM2 layer.
pub fn migrate_thread_to_page(ctx: &mut DsmThreadCtx<'_, '_>, page: PageId) {
    let rt = ctx.runtime().clone();
    let node = ctx.node();
    let entry = rt.page_table(node).get(page);
    if entry.owned {
        // The thread is already where the data lives; the fault means the
        // owner's copy was downgraded to read-only when read replicas were
        // handed out. Migrating "to the data" would land back here and fault
        // forever — reclaim exclusive access by invalidating the replicas.
        let targets: Vec<NodeId> = entry
            .copyset
            .iter()
            .copied()
            .filter(|&n| n != node)
            .collect();
        invalidate_copyset_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            page,
            &targets,
            Some(node),
            entry.version,
        );
        rt.page_table(node).update(page, |e| {
            e.access = Access::Write;
            e.copyset.retain(|n| !targets.contains(n));
            e.copyset.insert(node);
        });
        ctx.pm2.sim.charge(rt.costs().table_update());
        return;
    }
    let target = if entry.prob_owner == node {
        rt.page_meta(page).home
    } else {
        entry.prob_owner
    };
    rt.stats().incr_thread_migration();
    ctx.pm2.sim.charge(rt.costs().migration_overhead());
    rt.cluster()
        .monitor()
        .record("dsm_migrate_on_fault", rt.costs().migration_overhead());
    ctx.pm2.migrate_to(target);
}

/// Create a twin for `page` on `node` if the protocol needs one (first write
/// after an acquire). Charges the page-copy cost when a twin is created.
pub fn ensure_twin(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, page: PageId) {
    if rt.frames(node).make_twin(page) {
        rt.stats().incr_twin_created();
        sim.charge(rt.costs().twin_create());
    }
}

/// [`ensure_twin`] for one coherence unit: a whole-page twin at the default
/// granularity, a line twin (pristine copy of just that line) otherwise.
pub fn ensure_twin_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
) {
    let (line_offset, line_size) = rt.page_table(node).read_at(page, line, |e| e.line_span());
    if line_size == PAGE_SIZE {
        ensure_twin(sim, node, rt, page);
    } else if rt
        .frames(node)
        .make_line_twin(page, line, line_offset, line_size)
    {
        rt.stats().incr_twin_created();
        sim.charge(rt.costs().twin_create());
    }
}

/// Compute the diffs of every page this node modified since the last release
/// and ship them to the pages' home nodes, waiting for all acknowledgements.
/// `use_recorded` selects on-the-fly recorded ranges (Java protocols) instead
/// of twin comparison (`hbrc_mw`).
pub fn flush_diffs_to_homes(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    pages: &[PageId],
    use_recorded: bool,
) {
    let units: Vec<(PageId, LineIx)> = pages.iter().map(|&p| (p, LINE0)).collect();
    flush_unit_diffs_to_homes(sim, node, rt, &units, use_recorded);
}

/// [`flush_diffs_to_homes`] over explicit coherence units (the release path
/// of sub-page-capable multiple-writer protocols: pass
/// [`crate::PageTable::modified_units`]). Line units diff against their line
/// twins; whole-page units behave exactly as before.
pub fn flush_unit_diffs_to_homes(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    units: &[(PageId, LineIx)],
    use_recorded: bool,
) {
    let table = rt.page_table(node);
    // Compute every diff first (paying the per-page scan cost), then
    // transmit them in one burst: the sends all happen at the same virtual
    // instant, so diffs addressed to the same home node coalesce into a
    // single wire envelope when per-tick batching is enabled.
    let mut outgoing = Vec::new();
    for &(page, line) in units {
        let home = rt.page_meta(page).home;
        if home == node {
            // The home copy is already up to date; just clear the dirty flag.
            table.update_at(page, line, |e| e.modified_since_release = false);
            continue;
        }
        let (line_offset, line_size) = table.read_at(page, line, |e| e.line_span());
        let diff = if use_recorded {
            rt.frames(node).take_recorded_diff(page)
        } else if line_size == PAGE_SIZE {
            sim.charge(rt.costs().diff_compute());
            rt.frames(node).take_twin_diff(page)
        } else {
            sim.charge(rt.costs().diff_compute());
            rt.frames(node).take_line_twin_diff(page, line, line_offset)
        };
        table.update_at(page, line, |e| e.modified_since_release = false);
        if diff.is_empty() {
            continue;
        }
        // Historical bug (`pre_revoke_diff_push`): the release path fired
        // the diffs off without ack bookkeeping and returned immediately,
        // so a subsequent acquire could read the home copy before the
        // releaser's diffs were applied.
        let skip_acks = crate::mutant::active("pre_revoke_diff_push");
        if !skip_acks {
            table.update_at(page, line, |e| e.pending_acks += 1);
        }
        outgoing.push((page, line, home, diff, skip_acks));
    }
    let mut waiting_units = Vec::new();
    for (page, line, home, diff, skip_acks) in outgoing {
        rt.send_diff(sim, node, home, diff, !skip_acks);
        if !skip_acks {
            waiting_units.push((page, line));
        }
    }
    for (page, line) in waiting_units {
        let waiters = table.waiters_at(page, line);
        waiters.wait_until_why(sim, BlockReason::Ack, || {
            table.read_at(page, line, |e| e.pending_acks == 0)
        });
    }
}

/// Home-node side: after integrating a diff (or granting write ownership),
/// invalidate every third-party copy so stale replicas are refetched.
pub fn home_invalidate_other_copies(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    except: NodeId,
) {
    home_invalidate_other_copies_at(sim, node, rt, page, LINE0, except);
}

/// [`home_invalidate_other_copies`] for one coherence line.
pub fn home_invalidate_other_copies_at(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    line: LineIx,
    except: NodeId,
) {
    let table = rt.page_table(node);
    let (targets, version) = table.read_at(page, line, |e| {
        let targets: Vec<NodeId> = e
            .copyset
            .iter()
            .copied()
            .filter(|&n| n != node && n != except)
            .collect();
        (targets, e.version)
    });
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                line,
                from: node,
                new_owner: Some(node),
                needs_ack: false,
                version,
            },
        );
    }
    table.update_at(page, line, |e| {
        e.copyset.retain(|&n| n == node || n == except);
    });
}

/// Home-node side of a copy request in a home-based protocol: send a copy
/// with the requested `grant`, record the requester in the copyset, and keep
/// the home's own rights and ownership untouched (multiple writers allowed).
pub fn serve_copy_from_home(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    req: &PageRequest,
    grant: Access,
) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let (version, line_offset, line_size) = table.update_at(req.page, req.line, |e| {
        e.copyset.insert(req.requester);
        let (off, len) = e.line_span();
        (e.version, off, len)
    });
    let data = if line_size == PAGE_SIZE {
        rt.frames(node).snapshot(req.page)
    } else {
        rt.frames(node)
            .snapshot_range(req.page, line_offset, line_size)
    };
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            line: req.line,
            data,
            grant,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}
