//! The DSM protocol library: thread-safe building blocks protocols are
//! assembled from.
//!
//! The paper describes this layer as "a toolbox [that] provides routines to
//! perform elementary actions such as bringing a copy of a remote page to a
//! thread, migrating a thread to some remote data, invalidating all copies of
//! a page, etc.". The built-in protocols (`dsmpm2-protocols`) and user-defined
//! hybrid protocols are written almost entirely in terms of these routines.

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::SimHandle;

use crate::ctx::DsmThreadCtx;
use crate::msg::{Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, PageId};
use crate::runtime::DsmRuntime;

/// Client side of a page fetch: send a request for `access` on `page` to the
/// node currently believed to own it and block (in virtual time) until the
/// local rights are sufficient. Concurrent faults on the same page from the
/// same node coalesce into a single request.
pub fn request_page_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    access: Access,
) {
    let table = rt.page_table(node);
    loop {
        let entry = table.get(page);
        if entry.access.permits(access) {
            return;
        }
        if !entry.pending_fetch {
            table.update(page, |e| e.pending_fetch = true);
            sim.charge(rt.costs().table_update());
            let target = if entry.prob_owner == node {
                // Our hint points at ourselves but we do not have the rights:
                // fall back to the page's home node.
                rt.page_meta(page).home
            } else {
                entry.prob_owner
            };
            rt.send_page_request(
                sim,
                node,
                target,
                PageRequest {
                    page,
                    access,
                    requester: node,
                },
            );
        }
        let waiters = table.waiters(page);
        waiters.register(sim);
        // Re-check before really blocking (the transfer may have raced in).
        if table.access(page).permits(access) {
            waiters.deregister(sim);
            return;
        }
        sim.park();
        waiters.deregister(sim);
    }
}

/// Server-side guard for the distributed-manager protocols: if this node is
/// itself waiting for a copy of `page` (a fetch is in flight), hold the
/// incoming request until that fetch completes instead of forwarding it along
/// ownership hints that are about to change.
///
/// This implements the distributed request queue of the Li & Hudak dynamic
/// manager: concurrent write requests chain up behind the node that is about
/// to become the owner rather than chasing each other's stale hints around
/// the cluster (which can cycle forever). The small re-dispatch charge also
/// lets the local faulting thread complete the access it was waiting for
/// before the page can be snatched away again, which guarantees global
/// progress under heavy write contention.
pub fn defer_while_fetching(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let page = req.page;
    let table = rt.page_table(node);
    let entry = table.get(page);
    // Upgrade requests a node sends to itself (write upgrade of an owned,
    // read-shared page) and requests a current owner can serve on the spot
    // must not wait behind the node's own fetch, or nothing would ever clear
    // that fetch.
    if req.requester == node || entry.owned || !entry.pending_fetch {
        return;
    }
    let waiters = table.waiters(page);
    waiters.wait_until(sim, || !table.get(page).pending_fetch);
    // Yield for a short re-dispatch delay so the local threads woken by the
    // page installation run strictly before this handler serves the page
    // away again: the node is guaranteed at least one successful local access
    // per page acquisition, which is what makes heavy write contention
    // starvation-free.
    sim.sleep(rt.costs().table_update());
}

/// Install a page received from another node: store the contents, set the
/// granted rights, update ownership hints and wake the local threads waiting
/// for the page. Charges the requester-side protocol overhead.
pub fn install_received_page(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    transfer: &PageTransfer,
) {
    let table = rt.page_table(node);
    rt.frames(node).install(transfer.page, transfer.data.clone());
    table.update(transfer.page, |e| {
        e.access = transfer.grant;
        e.prob_owner = transfer.owner;
        e.owned = transfer.owner == node;
        e.version = transfer.version;
        e.pending_fetch = false;
        if transfer.owner == node {
            e.copyset = transfer.copyset.iter().copied().collect();
            e.copyset.insert(node);
        }
    });
    sim.charge(rt.costs().install_overhead());
    sim.charge(rt.costs().table_update());
    table
        .waiters(transfer.page)
        .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
}

/// Owner side of a read request: add the requester to the copyset, downgrade
/// the local copy to read-only (single-writer protocols), and send a
/// read-only copy. The serving node remains the owner.
pub fn serve_read_copy(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let version = table.update(req.page, |e| {
        e.copyset.insert(req.requester);
        if e.access == Access::Write {
            e.access = Access::Read;
        }
        e.version
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant: Access::Read,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}

/// Owner side of a write request: transfer the page together with ownership
/// and the copyset; the local copy loses all rights.
pub fn serve_write_transfer(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let (copyset, version) = table.update(req.page, |e| {
        let mut copyset: Vec<NodeId> = e.copyset.iter().copied().collect();
        copyset.retain(|&n| n != req.requester);
        e.copyset.clear();
        e.access = Access::None;
        e.owned = false;
        e.prob_owner = req.requester;
        e.version += 1;
        (copyset, e.version)
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant: Access::Write,
            owner: req.requester,
            copyset,
            version,
        },
    );
}

/// Forward a request along the probable-owner chain (dynamic distributed
/// manager). The forwarding node also updates its own hint to point at the
/// requester when ownership is about to move (write requests), which is the
/// path-compression rule of the Li & Hudak algorithm.
pub fn forward_request(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    let target = table.get(req.page).prob_owner;
    rt.stats().incr_request_forward();
    if req.access == Access::Write {
        table.update(req.page, |e| e.prob_owner = req.requester);
    }
    // Avoid forwarding to ourselves (stale hint): fall back to the home node.
    let target = if target == node {
        rt.page_meta(req.page).home
    } else {
        target
    };
    rt.send_page_request(sim, node, target, req.clone());
}

/// Invalidate the copies of `page` held by `targets` and wait for every
/// acknowledgement. Used by write-invalidate protocols when a node acquires
/// write ownership, and by eager release consistency at lock release.
pub fn invalidate_copyset_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
) {
    let targets: Vec<NodeId> = targets.iter().copied().filter(|&n| n != node).collect();
    if targets.is_empty() {
        return;
    }
    let table = rt.page_table(node);
    table.update(page, |e| e.pending_acks += targets.len());
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                from: node,
                new_owner,
                needs_ack: true,
            },
        );
    }
    let waiters = table.waiters(page);
    waiters.wait_until(sim, || table.get(page).pending_acks == 0);
}

/// Apply an invalidation locally: drop the local copy and all rights, update
/// the probable-owner hint, and acknowledge if requested.
pub fn apply_invalidation(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, inv: &Invalidation) {
    let table = rt.page_table(node);
    table.update(inv.page, |e| {
        e.access = Access::None;
        e.owned = false;
        e.modified_since_release = false;
        if let Some(owner) = inv.new_owner {
            e.prob_owner = owner;
        } else {
            e.prob_owner = inv.from;
        }
        e.copyset.clear();
    });
    rt.frames(node).evict(inv.page);
    sim.charge(rt.costs().table_update());
    if inv.needs_ack {
        rt.send_invalidate_ack(sim, node, inv.from, inv.page);
    }
}

/// Migrate the faulting thread to the node that owns (or is home to) `page`:
/// the thread-migration alternative to transferring the page. Charges the
/// (tiny) migration protocol overhead; the migration itself is costed by the
/// PM2 layer.
pub fn migrate_thread_to_page(ctx: &mut DsmThreadCtx<'_, '_>, page: PageId) {
    let rt = ctx.runtime().clone();
    let node = ctx.node();
    let entry = rt.page_table(node).get(page);
    let target = if entry.prob_owner == node {
        rt.page_meta(page).home
    } else {
        entry.prob_owner
    };
    rt.stats().incr_thread_migration();
    ctx.pm2.sim.charge(rt.costs().migration_overhead());
    rt.cluster()
        .monitor()
        .record("dsm_migrate_on_fault", rt.costs().migration_overhead());
    ctx.pm2.migrate_to(target);
}

/// Create a twin for `page` on `node` if the protocol needs one (first write
/// after an acquire). Charges the page-copy cost when a twin is created.
pub fn ensure_twin(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, page: PageId) {
    if rt.frames(node).make_twin(page) {
        rt.stats().incr_twin_created();
        sim.charge(rt.costs().twin_create());
    }
}

/// Compute the diffs of every page this node modified since the last release
/// and ship them to the pages' home nodes, waiting for all acknowledgements.
/// `use_recorded` selects on-the-fly recorded ranges (Java protocols) instead
/// of twin comparison (`hbrc_mw`).
pub fn flush_diffs_to_homes(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    pages: &[PageId],
    use_recorded: bool,
) {
    let table = rt.page_table(node);
    let mut waiting_pages = Vec::new();
    for &page in pages {
        let home = rt.page_meta(page).home;
        if home == node {
            // The home copy is already up to date; just clear the dirty flag.
            table.update(page, |e| e.modified_since_release = false);
            continue;
        }
        let diff = if use_recorded {
            rt.frames(node).take_recorded_diff(page)
        } else {
            sim.charge(rt.costs().diff_compute());
            rt.frames(node).take_twin_diff(page)
        };
        table.update(page, |e| e.modified_since_release = false);
        if diff.is_empty() {
            continue;
        }
        table.update(page, |e| e.pending_acks += 1);
        rt.send_diff(sim, node, home, diff, true);
        waiting_pages.push(page);
    }
    for page in waiting_pages {
        let waiters = table.waiters(page);
        waiters.wait_until(sim, || table.get(page).pending_acks == 0);
    }
}

/// Home-node side: after integrating a diff (or granting write ownership),
/// invalidate every third-party copy so stale replicas are refetched.
pub fn home_invalidate_other_copies(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    except: NodeId,
) {
    let table = rt.page_table(node);
    let targets: Vec<NodeId> = table
        .get(page)
        .copyset
        .iter()
        .copied()
        .filter(|&n| n != node && n != except)
        .collect();
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                from: node,
                new_owner: Some(node),
                needs_ack: false,
            },
        );
    }
    table.update(page, |e| {
        e.copyset.retain(|&n| n == node || n == except);
    });
}

/// Home-node side of a copy request in a home-based protocol: send a copy
/// with the requested `grant`, record the requester in the copyset, and keep
/// the home's own rights and ownership untouched (multiple writers allowed).
pub fn serve_copy_from_home(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    req: &PageRequest,
    grant: Access,
) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let version = table.update(req.page, |e| {
        e.copyset.insert(req.requester);
        e.version
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}
