//! The DSM protocol library: thread-safe building blocks protocols are
//! assembled from.
//!
//! The paper describes this layer as "a toolbox \[that\] provides routines to
//! perform elementary actions such as bringing a copy of a remote page to a
//! thread, migrating a thread to some remote data, invalidating all copies of
//! a page, etc.". The built-in protocols (`dsmpm2-protocols`) and user-defined
//! hybrid protocols are written almost entirely in terms of these routines.

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::{BlockReason, SimHandle};

use crate::ctx::DsmThreadCtx;
use crate::msg::{Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, PageId};
use crate::runtime::DsmRuntime;

/// Client side of a page fetch: send a request for `access` on `page` to the
/// node currently believed to own it and block (in virtual time) until the
/// local rights are sufficient. Concurrent faults on the same page from the
/// same node coalesce into a single request.
pub fn request_page_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    access: Access,
) {
    let table = rt.page_table(node);
    loop {
        let (permitted, pending_fetch, prob_owner) = table.read(page, |e| {
            (e.access.permits(access), e.pending_fetch, e.prob_owner)
        });
        if permitted {
            return;
        }
        if !pending_fetch {
            table.update(page, |e| {
                e.pending_fetch = true;
                e.fetch_seq += 1;
            });
            sim.charge(rt.costs().table_update());
            // Write requests go to the page's home node, which acts as the
            // acquisition manager (Li & Hudak's improved centralized
            // manager); reads follow the ownership-history hint with the
            // home as fallback.
            let target = if access == Access::Write || prob_owner == node {
                rt.page_meta(page).home
            } else {
                prob_owner
            };
            rt.send_page_request(
                sim,
                node,
                target,
                PageRequest {
                    page,
                    access,
                    requester: node,
                },
            );
        }
        let waiters = table.waiters(page);
        waiters.register(sim);
        // Re-check before really blocking (the transfer may have raced in).
        if table.access(page).permits(access) {
            waiters.deregister(sim);
            return;
        }
        sim.park_with(BlockReason::PageFault);
        waiters.deregister(sim);
    }
}

/// Server-side guard: if this node is itself waiting for a copy of `page`
/// (a fetch is in flight), hold an incoming *read* request for the duration
/// of exactly that fetch instead of forwarding it along ownership hints that
/// are about to change.
///
/// Write requests never park here: they are serialized by the page's home
/// manager (see [`forward_request`]) and only ever routed to a node that has
/// finished acquiring ownership. Parking writes at arbitrary fetching nodes
/// is how wait-for cycles (and deadlocks) form under concurrent write
/// faults. The small re-dispatch charge after the wait lets the local
/// faulting thread complete the access it was waiting for before the page
/// can be served away again, which keeps heavy contention starvation-free.
pub fn defer_while_fetching(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let page = req.page;
    let table = rt.page_table(node);
    let (owned, pending_fetch, fetch_seq) =
        table.read(page, |e| (e.owned, e.pending_fetch, e.fetch_seq));
    // Write requests are serialized by the home manager and only ever routed
    // to a node that finished acquiring ownership, so they never need to
    // park here. Read requests may race an in-flight fetch; park them for
    // the duration of exactly that fetch (same fetch_seq), then forward
    // along the refreshed hints.
    if req.requester == node || owned || !pending_fetch || req.access == Access::Write {
        return;
    }
    let waiters = table.waiters(page);
    waiters.wait_until_why(sim, BlockReason::PageFault, || {
        table.read(page, |e| !e.pending_fetch || e.fetch_seq != fetch_seq)
    });
    // Yield for a short re-dispatch delay so the local threads woken by the
    // page installation run strictly before this handler serves the page
    // away again: the node is guaranteed at least one successful local access
    // per page acquisition, which is what makes heavy write contention
    // starvation-free.
    sim.sleep(rt.costs().table_update());
}

/// Install a page received from another node: store the contents, set the
/// granted rights, update ownership hints and wake the local threads waiting
/// for the page. Charges the requester-side protocol overhead.
pub fn install_received_page(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    transfer: &PageTransfer,
) {
    let table = rt.page_table(node);
    rt.frames(node)
        .install(transfer.page, transfer.data.clone());
    table.update(transfer.page, |e| {
        e.access = transfer.grant;
        e.prob_owner = transfer.owner;
        e.queue_tail = None;
        e.owned = transfer.owner == node;
        e.version = transfer.version;
        e.owner_version = e.owner_version.max(transfer.version);
        e.pending_fetch = false;
        if transfer.owner == node {
            e.copyset = transfer.copyset.iter().copied().collect();
            e.copyset.insert(node);
        }
    });
    sim.charge(rt.costs().install_overhead());
    sim.charge(rt.costs().table_update());
    if transfer.grant == Access::Write && transfer.owner == node {
        notify_home_acquired(sim, node, rt, transfer.page, transfer.version);
    }
    table
        .waiters(transfer.page)
        .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
}

/// Owner side of a read request: add the requester to the copyset, downgrade
/// the local copy to read-only (single-writer protocols), and send a
/// read-only copy. The serving node remains the owner.
pub fn serve_read_copy(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let version = table.update(req.page, |e| {
        if crate::mutant::active("copyset_wipe") {
            // Historical bug: the read server rebuilt the copyset from
            // scratch instead of accumulating, forgetting earlier readers
            // and leaving their replicas unreachable by invalidation.
            e.copyset.clear();
        }
        e.copyset.insert(req.requester);
        if e.access == Access::Write {
            e.access = Access::Read;
        }
        e.version
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant: Access::Read,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}

/// Owner side of a write request: transfer the page together with ownership
/// and the copyset; the local copy loses all rights.
pub fn serve_write_transfer(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let (copyset, version) = table.update(req.page, |e| {
        let mut copyset: Vec<NodeId> = e.copyset.iter().copied().collect();
        copyset.retain(|&n| n != req.requester);
        e.copyset.clear();
        e.access = Access::None;
        e.owned = false;
        e.prob_owner = req.requester;
        e.queue_tail = if e.home == node {
            // Serving from the home: this acquisition is now in flight; the
            // manager admits the next write request once the requester's
            // AcquireDone arrives.
            Some(req.requester)
        } else {
            None
        };
        e.version += 1;
        e.owner_version = e.version;
        (copyset, e.version)
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant: Access::Write,
            owner: req.requester,
            copyset,
            version,
        },
    );
}

/// Forward a request along the probable-owner chain (dynamic distributed
/// manager). The forwarding node also updates its own hint to point at the
/// requester when ownership is about to move (write requests), which is the
/// path-compression rule of the Li & Hudak algorithm.
pub fn forward_request(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, req: &PageRequest) {
    let table = rt.page_table(node);
    let home = rt.page_meta(req.page).home;
    rt.stats().incr_request_forward();
    if req.access == Access::Write {
        if node != home {
            // Ordinary nodes route write acquisitions to the manager.
            rt.send_page_request(sim, node, home, req.clone());
            return;
        }
        // Home manager (Li & Hudak's improved centralized manager): admit
        // one acquisition at a time and only hand requests to a node the
        // record proves holds ownership. Anything in between — an
        // acquisition in flight, a record still pointing at this node or at
        // the requester's *own* in-flight acquisition — is waited out; the
        // pending AcquireDone is what refreshes the record and wakes us.
        let page = req.page;
        let waiters = table.waiters(page);
        loop {
            let (owned, queue_tail, prob_owner) =
                table.read(page, |e| (e.owned, e.queue_tail, e.prob_owner));
            if owned {
                // The home itself owns the page: serve directly
                // (serve_write_transfer marks the new acquisition in flight).
                serve_write_transfer(sim, node, rt, req);
                return;
            }
            let own_admission = queue_tail == Some(req.requester);
            if queue_tail.is_some() && !own_admission {
                waiters.wait_until_why(sim, BlockReason::PageFault, || {
                    table.read(page, |e| {
                        e.owned || e.queue_tail.is_none() || e.queue_tail == Some(req.requester)
                    })
                });
                continue;
            }
            if prob_owner == node || (own_admission && prob_owner == req.requester) {
                // Record is stale (points at this non-owning node) or at the
                // requester's own unfinished acquisition: wait for fresher
                // ownership information.
                waiters.wait_until_why(sim, BlockReason::PageFault, || {
                    table.read(page, |e| {
                        e.owned
                            || (e.prob_owner != node
                                && !(e.queue_tail == Some(req.requester)
                                    && e.prob_owner == req.requester))
                    })
                });
                continue;
            }
            table.update(page, |e| e.queue_tail = Some(req.requester));
            rt.send_page_request(sim, node, prob_owner, req.clone());
            return;
        }
    }
    // Reads follow ownership history, which cannot cycle; fall back to the
    // home node on self- or requester-references.
    let prob_owner = table.read(req.page, |e| e.prob_owner);
    let target = if prob_owner != node && prob_owner != req.requester {
        prob_owner
    } else {
        home
    };
    rt.send_page_request(sim, node, target, req.clone());
}

/// Invalidate the copies of `page` held by `targets` and wait for every
/// acknowledgement. Used by write-invalidate protocols when a node acquires
/// write ownership, and by eager release consistency at lock release.
pub fn invalidate_copyset_and_wait(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    send_copyset_invalidations(sim, node, rt, page, targets, new_owner, version);
    await_invalidation_acks(sim, node, rt, page);
}

/// Send-only half of [`invalidate_copyset_and_wait`]: register the expected
/// acknowledgements and transmit the invalidations without blocking.
/// Protocols invalidating several pages at once send all rounds first and
/// then collect every acknowledgement with [`await_invalidation_acks`], so
/// the rounds overlap in the network instead of serializing.
pub fn send_copyset_invalidations(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    targets: &[NodeId],
    new_owner: Option<NodeId>,
    version: u64,
) {
    let targets: Vec<NodeId> = targets.iter().copied().filter(|&n| n != node).collect();
    if targets.is_empty() {
        return;
    }
    let table = rt.page_table(node);
    table.update(page, |e| e.pending_acks += targets.len());
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                from: node,
                new_owner,
                needs_ack: true,
                version,
            },
        );
    }
}

/// Wait-only half of [`invalidate_copyset_and_wait`]: block until every
/// acknowledgement registered for `page` has arrived.
pub fn await_invalidation_acks(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, page: PageId) {
    let table = rt.page_table(node);
    let waiters = table.waiters(page);
    waiters.wait_until_why(sim, BlockReason::Ack, || {
        table.read(page, |e| e.pending_acks == 0)
    });
}

/// Apply an invalidation locally: drop the local copy and all rights, update
/// the probable-owner hint, and acknowledge if requested.
pub fn apply_invalidation(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, inv: &Invalidation) {
    let table = rt.page_table(node);
    table.update(inv.page, |e| {
        e.access = Access::None;
        e.owned = false;
        e.modified_since_release = false;
        // Only a strictly newer succession version may move the hint (a
        // late invalidation from an earlier reign would point it backwards,
        // letting request routing cycle) — except that a self-pointing
        // record on a non-owner is always worse than the sender's info.
        if inv.version > e.owner_version || e.prob_owner == node {
            e.owner_version = e.owner_version.max(inv.version);
            e.queue_tail = None;
            if let Some(owner) = inv.new_owner {
                e.prob_owner = owner;
            } else {
                e.prob_owner = inv.from;
            }
        }
        e.copyset.clear();
    });
    rt.frames(node).evict(inv.page);
    sim.charge(rt.costs().table_update());
    if inv.needs_ack {
        rt.send_invalidate_ack(sim, node, inv.from, inv.page);
    }
}

/// Report a completed write acquisition to the page's home manager (or
/// record it directly when the new owner *is* the home).
pub fn notify_home_acquired(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    version: u64,
) {
    let home = rt.page_meta(page).home;
    if home == node {
        let table = rt.page_table(node);
        table.update(page, |e| {
            if e.queue_tail == Some(node) {
                e.queue_tail = None;
            }
        });
        table
            .waiters(page)
            .notify_all(&sim.ctl(), dsmpm2_sim::SimDuration::ZERO);
    } else {
        rt.send_acquire_done(sim, node, home, page, node, version);
    }
}

/// Migrate the faulting thread to the node that owns (or is home to) `page`:
/// the thread-migration alternative to transferring the page. Charges the
/// (tiny) migration protocol overhead; the migration itself is costed by the
/// PM2 layer.
pub fn migrate_thread_to_page(ctx: &mut DsmThreadCtx<'_, '_>, page: PageId) {
    let rt = ctx.runtime().clone();
    let node = ctx.node();
    let entry = rt.page_table(node).get(page);
    if entry.owned {
        // The thread is already where the data lives; the fault means the
        // owner's copy was downgraded to read-only when read replicas were
        // handed out. Migrating "to the data" would land back here and fault
        // forever — reclaim exclusive access by invalidating the replicas.
        let targets: Vec<NodeId> = entry
            .copyset
            .iter()
            .copied()
            .filter(|&n| n != node)
            .collect();
        invalidate_copyset_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            page,
            &targets,
            Some(node),
            entry.version,
        );
        rt.page_table(node).update(page, |e| {
            e.access = Access::Write;
            e.copyset.retain(|n| !targets.contains(n));
            e.copyset.insert(node);
        });
        ctx.pm2.sim.charge(rt.costs().table_update());
        return;
    }
    let target = if entry.prob_owner == node {
        rt.page_meta(page).home
    } else {
        entry.prob_owner
    };
    rt.stats().incr_thread_migration();
    ctx.pm2.sim.charge(rt.costs().migration_overhead());
    rt.cluster()
        .monitor()
        .record("dsm_migrate_on_fault", rt.costs().migration_overhead());
    ctx.pm2.migrate_to(target);
}

/// Create a twin for `page` on `node` if the protocol needs one (first write
/// after an acquire). Charges the page-copy cost when a twin is created.
pub fn ensure_twin(sim: &mut SimHandle, node: NodeId, rt: &DsmRuntime, page: PageId) {
    if rt.frames(node).make_twin(page) {
        rt.stats().incr_twin_created();
        sim.charge(rt.costs().twin_create());
    }
}

/// Compute the diffs of every page this node modified since the last release
/// and ship them to the pages' home nodes, waiting for all acknowledgements.
/// `use_recorded` selects on-the-fly recorded ranges (Java protocols) instead
/// of twin comparison (`hbrc_mw`).
pub fn flush_diffs_to_homes(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    pages: &[PageId],
    use_recorded: bool,
) {
    let table = rt.page_table(node);
    // Compute every diff first (paying the per-page scan cost), then
    // transmit them in one burst: the sends all happen at the same virtual
    // instant, so diffs addressed to the same home node coalesce into a
    // single wire envelope when per-tick batching is enabled.
    let mut outgoing = Vec::new();
    for &page in pages {
        let home = rt.page_meta(page).home;
        if home == node {
            // The home copy is already up to date; just clear the dirty flag.
            table.update(page, |e| e.modified_since_release = false);
            continue;
        }
        let diff = if use_recorded {
            rt.frames(node).take_recorded_diff(page)
        } else {
            sim.charge(rt.costs().diff_compute());
            rt.frames(node).take_twin_diff(page)
        };
        table.update(page, |e| e.modified_since_release = false);
        if diff.is_empty() {
            continue;
        }
        // Historical bug (`pre_revoke_diff_push`): the release path fired
        // the diffs off without ack bookkeeping and returned immediately,
        // so a subsequent acquire could read the home copy before the
        // releaser's diffs were applied.
        let skip_acks = crate::mutant::active("pre_revoke_diff_push");
        if !skip_acks {
            table.update(page, |e| e.pending_acks += 1);
        }
        outgoing.push((page, home, diff, skip_acks));
    }
    let mut waiting_pages = Vec::new();
    for (page, home, diff, skip_acks) in outgoing {
        rt.send_diff(sim, node, home, diff, !skip_acks);
        if !skip_acks {
            waiting_pages.push(page);
        }
    }
    for page in waiting_pages {
        let waiters = table.waiters(page);
        waiters.wait_until_why(sim, BlockReason::Ack, || {
            table.read(page, |e| e.pending_acks == 0)
        });
    }
}

/// Home-node side: after integrating a diff (or granting write ownership),
/// invalidate every third-party copy so stale replicas are refetched.
pub fn home_invalidate_other_copies(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    page: PageId,
    except: NodeId,
) {
    let table = rt.page_table(node);
    let (targets, version) = table.read(page, |e| {
        let targets: Vec<NodeId> = e
            .copyset
            .iter()
            .copied()
            .filter(|&n| n != node && n != except)
            .collect();
        (targets, e.version)
    });
    for &target in &targets {
        rt.send_invalidate(
            sim,
            node,
            target,
            Invalidation {
                page,
                from: node,
                new_owner: Some(node),
                needs_ack: false,
                version,
            },
        );
    }
    table.update(page, |e| {
        e.copyset.retain(|&n| n == node || n == except);
    });
}

/// Home-node side of a copy request in a home-based protocol: send a copy
/// with the requested `grant`, record the requester in the copyset, and keep
/// the home's own rights and ownership untouched (multiple writers allowed).
pub fn serve_copy_from_home(
    sim: &mut SimHandle,
    node: NodeId,
    rt: &DsmRuntime,
    req: &PageRequest,
    grant: Access,
) {
    let table = rt.page_table(node);
    sim.charge(rt.costs().serve_overhead());
    let version = table.update(req.page, |e| {
        e.copyset.insert(req.requester);
        e.version
    });
    let data = rt.frames(node).snapshot(req.page);
    rt.send_page(
        sim,
        node,
        req.requester,
        PageTransfer {
            page: req.page,
            data,
            grant,
            owner: node,
            copyset: Vec::new(),
            version,
        },
    );
}
