//! Per-node page frames: the actual bytes of locally mapped pages.
//!
//! The page table records *rights and ownership*; the frame store records
//! *contents*. A node holds a frame for every page it has a copy of, plus the
//! optional twin used by the multiple-writer protocols and the modification
//! ranges recorded by the Java protocols' `put` primitive.

use std::collections::HashMap;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;

use crate::diff::PageDiff;
use crate::page::{PageId, PAGE_SIZE};

/// A locally mapped page.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Current local contents.
    pub data: Vec<u8>,
    /// Pristine copy taken at the first write after an acquire (twinning).
    pub twin: Option<Vec<u8>>,
    /// Explicitly recorded modified ranges `(offset, len)` (on-the-fly diff
    /// recording used by the Java protocols).
    pub recorded: Vec<(usize, usize)>,
}

impl Frame {
    fn zeroed() -> Self {
        Frame {
            data: vec![0u8; PAGE_SIZE],
            twin: None,
            recorded: Vec::new(),
        }
    }
}

/// All frames held by one node.
pub struct FrameStore {
    node: NodeId,
    frames: Mutex<HashMap<PageId, Frame>>,
}

impl FrameStore {
    /// An empty store for `node`.
    pub fn new(node: NodeId) -> Self {
        FrameStore {
            node,
            frames: Mutex::new(HashMap::new()),
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True if the node currently holds a copy of `page`.
    pub fn has(&self, page: PageId) -> bool {
        self.frames.lock().contains_key(&page)
    }

    /// Make sure a zero-filled frame exists for `page` (used when a page is
    /// first allocated on its home node).
    pub fn ensure_zeroed(&self, page: PageId) {
        self.frames.lock().entry(page).or_insert_with(Frame::zeroed);
    }

    /// Install (or replace) the local copy of `page` with `data`.
    pub fn install(&self, page: PageId, data: Vec<u8>) {
        assert_eq!(
            data.len(),
            PAGE_SIZE,
            "installed page must be {PAGE_SIZE} bytes"
        );
        let mut frames = self.frames.lock();
        let frame = frames.entry(page).or_insert_with(Frame::zeroed);
        frame.data = data;
        frame.twin = None;
        frame.recorded.clear();
    }

    /// Drop the local copy of `page`, returning its last contents.
    pub fn evict(&self, page: PageId) -> Option<Vec<u8>> {
        self.frames.lock().remove(&page).map(|f| f.data)
    }

    /// Copy the contents of `page` (for sending it to another node).
    pub fn snapshot(&self, page: PageId) -> Vec<u8> {
        self.with(page, |f| f.data.clone())
    }

    /// Read `buf.len()` bytes at `offset` within `page`.
    pub fn read(&self, page: PageId, offset: usize, buf: &mut [u8]) {
        self.with(page, |f| {
            buf.copy_from_slice(&f.data[offset..offset + buf.len()]);
        });
    }

    /// Write `bytes` at `offset` within `page`.
    pub fn write(&self, page: PageId, offset: usize, bytes: &[u8]) {
        self.with(page, |f| {
            f.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        });
    }

    /// Write `bytes` at `offset` and record the modified range (on-the-fly
    /// diff recording, field granularity).
    pub fn write_recorded(&self, page: PageId, offset: usize, bytes: &[u8]) {
        self.with(page, |f| {
            f.data[offset..offset + bytes.len()].copy_from_slice(bytes);
            f.recorded.push((offset, bytes.len()));
        });
    }

    /// Create a twin of `page` if none exists yet. Returns true if a twin was
    /// actually created.
    pub fn make_twin(&self, page: PageId) -> bool {
        self.with(page, |f| {
            if f.twin.is_none() {
                f.twin = Some(f.data.clone());
                true
            } else {
                false
            }
        })
    }

    /// True if `page` currently has a twin.
    pub fn has_twin(&self, page: PageId) -> bool {
        self.with(page, |f| f.twin.is_some())
    }

    /// Compute the diff of `page` against its twin, dropping the twin.
    /// Returns an empty diff if no twin existed.
    pub fn take_twin_diff(&self, page: PageId) -> PageDiff {
        self.with(page, |f| match f.twin.take() {
            Some(twin) => PageDiff::compute(page, &twin, &f.data),
            None => PageDiff::empty(page),
        })
    }

    /// Build the diff of `page` from its recorded modification ranges and
    /// clear the recording.
    pub fn take_recorded_diff(&self, page: PageId) -> PageDiff {
        self.with(page, |f| {
            let ranges = std::mem::take(&mut f.recorded);
            PageDiff::from_recorded_ranges(page, &ranges, &f.data)
        })
    }

    /// True if `page` has recorded (not yet flushed) modifications.
    pub fn has_recorded(&self, page: PageId) -> bool {
        self.with(page, |f| !f.recorded.is_empty())
    }

    /// Apply `diff` to the local copy of `page` (home-node side).
    pub fn apply_diff(&self, page: PageId, diff: &PageDiff) {
        self.with(page, |f| diff.apply(&mut f.data));
    }

    /// Every page currently mapped on this node.
    pub fn pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.frames.lock().keys().copied().collect();
        pages.sort();
        pages
    }

    fn with<R>(&self, page: PageId, f: impl FnOnce(&mut Frame) -> R) -> R {
        let mut frames = self.frames.lock();
        let frame = frames
            .get_mut(&page)
            .unwrap_or_else(|| panic!("node {} has no frame for {page}", self.node));
        f(frame)
    }
}

impl std::fmt::Debug for FrameStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameStore(node={}, {} pages)",
            self.node,
            self.frames.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FrameStore {
        let s = FrameStore::new(NodeId(0));
        s.ensure_zeroed(PageId(1));
        s
    }

    #[test]
    fn zeroed_frame_reads_zero() {
        let s = store();
        let mut buf = [1u8; 8];
        s.read(PageId(1), 100, &mut buf);
        assert_eq!(buf, [0u8; 8]);
        assert!(s.has(PageId(1)));
        assert!(!s.has(PageId(2)));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let s = store();
        s.write(PageId(1), 8, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        s.read(PageId(1), 8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn install_replaces_contents_and_clears_twin() {
        let s = store();
        s.write(PageId(1), 0, &[9]);
        s.make_twin(PageId(1));
        let new = vec![7u8; PAGE_SIZE];
        s.install(PageId(1), new.clone());
        assert_eq!(s.snapshot(PageId(1)), new);
        assert!(!s.has_twin(PageId(1)));
    }

    #[test]
    fn twin_diff_captures_writes_since_twin() {
        let s = store();
        s.write(PageId(1), 0, &[5; 16]);
        assert!(s.make_twin(PageId(1)));
        assert!(!s.make_twin(PageId(1)), "second twin request is a no-op");
        s.write(PageId(1), 4, &[9; 4]);
        let diff = s.take_twin_diff(PageId(1));
        assert_eq!(diff.runs.len(), 1);
        assert_eq!(diff.runs[0].offset, 4);
        assert!(!s.has_twin(PageId(1)));
        // Without a twin the diff is empty.
        assert!(s.take_twin_diff(PageId(1)).is_empty());
    }

    #[test]
    fn recorded_diff_tracks_explicit_writes() {
        let s = store();
        s.write_recorded(PageId(1), 10, &[1, 1]);
        s.write_recorded(PageId(1), 40, &[2, 2, 2]);
        assert!(s.has_recorded(PageId(1)));
        let diff = s.take_recorded_diff(PageId(1));
        assert_eq!(diff.runs.len(), 2);
        assert!(!s.has_recorded(PageId(1)));
    }

    #[test]
    fn apply_diff_updates_home_copy() {
        let s = store();
        let mut other = vec![0u8; PAGE_SIZE];
        other[100] = 42;
        let diff = PageDiff::compute(PageId(1), &vec![0u8; PAGE_SIZE], &other);
        s.apply_diff(PageId(1), &diff);
        let mut b = [0u8; 1];
        s.read(PageId(1), 100, &mut b);
        assert_eq!(b[0], 42);
    }

    #[test]
    fn evict_removes_the_frame() {
        let s = store();
        s.write(PageId(1), 0, &[3]);
        let data = s.evict(PageId(1)).unwrap();
        assert_eq!(data[0], 3);
        assert!(!s.has(PageId(1)));
        assert!(s.evict(PageId(1)).is_none());
        assert!(s.pages().is_empty());
    }

    #[test]
    #[should_panic(expected = "no frame")]
    fn reading_unmapped_page_panics() {
        let s = store();
        let mut buf = [0u8; 1];
        s.read(PageId(99), 0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "4096 bytes")]
    fn installing_short_page_panics() {
        store().install(PageId(1), vec![0u8; 10]);
    }
}
