//! Per-node page frames: the actual bytes of locally mapped pages.
//!
//! The page table records *rights and ownership*; the frame store records
//! *contents*. A node holds a frame for every page it has a copy of, plus the
//! optional twin used by the multiple-writer protocols and the modification
//! ranges recorded by the Java protocols' `put` primitive.

use std::collections::HashMap;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;

use crate::diff::PageDiff;
use crate::page::{LineIx, PageId, PAGE_SIZE};

/// A locally mapped page.
///
/// One frame always holds the full `PAGE_SIZE` bytes even when the page is
/// managed at sub-page granularity: line-level *rights* in the page table
/// decide which parts of the frame are valid, while the frame itself is the
/// backing store shared by all of the page's lines. Multiple-writer twinning
/// happens per coherence unit: the whole-page `twin` at the default
/// granularity, per-line pristine copies in `line_twins` otherwise.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Current local contents.
    pub data: Vec<u8>,
    /// Pristine copy taken at the first write after an acquire (twinning).
    pub twin: Option<Vec<u8>>,
    /// Pristine per-line copies for sub-page-granularity pages, keyed by line
    /// index (each holds exactly the line's bytes).
    pub line_twins: HashMap<LineIx, Vec<u8>>,
    /// Explicitly recorded modified ranges `(offset, len)` (on-the-fly diff
    /// recording used by the Java protocols).
    pub recorded: Vec<(usize, usize)>,
}

impl Frame {
    fn zeroed() -> Self {
        Frame {
            data: vec![0u8; PAGE_SIZE],
            twin: None,
            line_twins: HashMap::new(),
            recorded: Vec::new(),
        }
    }
}

/// All frames held by one node.
pub struct FrameStore {
    node: NodeId,
    frames: Mutex<HashMap<PageId, Frame>>,
}

impl FrameStore {
    /// An empty store for `node`.
    pub fn new(node: NodeId) -> Self {
        FrameStore {
            node,
            frames: Mutex::new(HashMap::new()),
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True if the node currently holds a copy of `page`.
    pub fn has(&self, page: PageId) -> bool {
        self.frames.lock().contains_key(&page)
    }

    /// Make sure a zero-filled frame exists for `page` (used when a page is
    /// first allocated on its home node).
    pub fn ensure_zeroed(&self, page: PageId) {
        self.frames.lock().entry(page).or_insert_with(Frame::zeroed);
    }

    /// Install (or replace) the local copy of `page` with `data`.
    pub fn install(&self, page: PageId, data: Vec<u8>) {
        assert_eq!(
            data.len(),
            PAGE_SIZE,
            "installed page must be {PAGE_SIZE} bytes"
        );
        let mut frames = self.frames.lock();
        let frame = frames.entry(page).or_insert_with(Frame::zeroed);
        frame.data = data;
        frame.twin = None;
        frame.line_twins.clear();
        frame.recorded.clear();
    }

    /// Install the contents of one coherence line of `page` (creating a
    /// zeroed frame first if the node held no copy at all). Only the line's
    /// byte range is replaced; other lines of the frame are untouched, and
    /// only that line's twin is dropped.
    pub fn install_line(&self, page: PageId, line: LineIx, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= PAGE_SIZE,
            "installed line escapes the page"
        );
        let mut frames = self.frames.lock();
        let frame = frames.entry(page).or_insert_with(Frame::zeroed);
        frame.data[offset..offset + data.len()].copy_from_slice(data);
        frame.line_twins.remove(&line);
    }

    /// Drop the local copy of `page`, returning its last contents.
    pub fn evict(&self, page: PageId) -> Option<Vec<u8>> {
        self.frames.lock().remove(&page).map(|f| f.data)
    }

    /// Copy the contents of `page` (for sending it to another node).
    pub fn snapshot(&self, page: PageId) -> Vec<u8> {
        self.with(page, |f| f.data.clone())
    }

    /// Copy `len` bytes at `offset` of `page` (for sending one coherence
    /// line to another node).
    pub fn snapshot_range(&self, page: PageId, offset: usize, len: usize) -> Vec<u8> {
        self.with(page, |f| f.data[offset..offset + len].to_vec())
    }

    /// Read `buf.len()` bytes at `offset` within `page`.
    pub fn read(&self, page: PageId, offset: usize, buf: &mut [u8]) {
        self.with(page, |f| {
            buf.copy_from_slice(&f.data[offset..offset + buf.len()]);
        });
    }

    /// Write `bytes` at `offset` within `page`.
    pub fn write(&self, page: PageId, offset: usize, bytes: &[u8]) {
        self.with(page, |f| {
            f.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        });
    }

    /// Write `bytes` at `offset` and record the modified range (on-the-fly
    /// diff recording, field granularity).
    pub fn write_recorded(&self, page: PageId, offset: usize, bytes: &[u8]) {
        self.with(page, |f| {
            f.data[offset..offset + bytes.len()].copy_from_slice(bytes);
            f.recorded.push((offset, bytes.len()));
        });
    }

    /// Create a twin of `page` if none exists yet. Returns true if a twin was
    /// actually created.
    pub fn make_twin(&self, page: PageId) -> bool {
        self.with(page, |f| {
            if f.twin.is_none() {
                f.twin = Some(f.data.clone());
                true
            } else {
                false
            }
        })
    }

    /// True if `page` currently has a twin.
    pub fn has_twin(&self, page: PageId) -> bool {
        self.with(page, |f| f.twin.is_some())
    }

    /// Compute the diff of `page` against its twin, dropping the twin.
    /// Returns an empty diff if no twin existed.
    pub fn take_twin_diff(&self, page: PageId) -> PageDiff {
        self.with(page, |f| match f.twin.take() {
            Some(twin) => PageDiff::compute(page, &twin, &f.data),
            None => PageDiff::empty(page),
        })
    }

    /// Create a pristine twin of one coherence line of `page` if none exists
    /// yet (sub-page-granularity twinning). Returns true if a twin was
    /// actually created.
    pub fn make_line_twin(&self, page: PageId, line: LineIx, offset: usize, len: usize) -> bool {
        self.with(page, |f| {
            if f.line_twins.contains_key(&line) {
                false
            } else {
                f.line_twins
                    .insert(line, f.data[offset..offset + len].to_vec());
                true
            }
        })
    }

    /// True if line `line` of `page` currently has a twin.
    pub fn has_line_twin(&self, page: PageId, line: LineIx) -> bool {
        self.with(page, |f| f.line_twins.contains_key(&line))
    }

    /// Drop the twin of line `line` of `page` without computing a diff (the
    /// line was invalidated, so its modifications are dead).
    pub fn drop_line_twin(&self, page: PageId, line: LineIx) {
        self.with(page, |f| {
            f.line_twins.remove(&line);
        });
    }

    /// Compute the line-scoped diff of line `line` of `page` against its
    /// twin, dropping the twin. Returns an empty diff if no twin existed.
    /// `offset` is the line's base offset within the page (run offsets in the
    /// result are page-absolute).
    pub fn take_line_twin_diff(&self, page: PageId, line: LineIx, offset: usize) -> PageDiff {
        self.with(page, |f| match f.line_twins.remove(&line) {
            Some(twin) => {
                let current = &f.data[offset..offset + twin.len()];
                PageDiff::compute_range(page, line, offset, &twin, current)
            }
            None => {
                let mut d = PageDiff::empty(page);
                d.line = line;
                d
            }
        })
    }

    /// Build the diff of `page` from its recorded modification ranges and
    /// clear the recording.
    pub fn take_recorded_diff(&self, page: PageId) -> PageDiff {
        self.with(page, |f| {
            let ranges = std::mem::take(&mut f.recorded);
            PageDiff::from_recorded_ranges(page, &ranges, &f.data)
        })
    }

    /// True if `page` has recorded (not yet flushed) modifications.
    pub fn has_recorded(&self, page: PageId) -> bool {
        self.with(page, |f| !f.recorded.is_empty())
    }

    /// Apply `diff` to the local copy of `page` (home-node side).
    pub fn apply_diff(&self, page: PageId, diff: &PageDiff) {
        self.with(page, |f| diff.apply(&mut f.data));
    }

    /// Every page currently mapped on this node.
    pub fn pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.frames.lock().keys().copied().collect();
        pages.sort();
        pages
    }

    fn with<R>(&self, page: PageId, f: impl FnOnce(&mut Frame) -> R) -> R {
        let mut frames = self.frames.lock();
        let frame = frames
            .get_mut(&page)
            .unwrap_or_else(|| panic!("node {} has no frame for {page}", self.node));
        f(frame)
    }
}

impl std::fmt::Debug for FrameStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameStore(node={}, {} pages)",
            self.node,
            self.frames.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FrameStore {
        let s = FrameStore::new(NodeId(0));
        s.ensure_zeroed(PageId(1));
        s
    }

    #[test]
    fn zeroed_frame_reads_zero() {
        let s = store();
        let mut buf = [1u8; 8];
        s.read(PageId(1), 100, &mut buf);
        assert_eq!(buf, [0u8; 8]);
        assert!(s.has(PageId(1)));
        assert!(!s.has(PageId(2)));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let s = store();
        s.write(PageId(1), 8, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        s.read(PageId(1), 8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn install_replaces_contents_and_clears_twin() {
        let s = store();
        s.write(PageId(1), 0, &[9]);
        s.make_twin(PageId(1));
        let new = vec![7u8; PAGE_SIZE];
        s.install(PageId(1), new.clone());
        assert_eq!(s.snapshot(PageId(1)), new);
        assert!(!s.has_twin(PageId(1)));
    }

    #[test]
    fn twin_diff_captures_writes_since_twin() {
        let s = store();
        s.write(PageId(1), 0, &[5; 16]);
        assert!(s.make_twin(PageId(1)));
        assert!(!s.make_twin(PageId(1)), "second twin request is a no-op");
        s.write(PageId(1), 4, &[9; 4]);
        let diff = s.take_twin_diff(PageId(1));
        assert_eq!(diff.runs.len(), 1);
        assert_eq!(diff.runs[0].offset, 4);
        assert!(!s.has_twin(PageId(1)));
        // Without a twin the diff is empty.
        assert!(s.take_twin_diff(PageId(1)).is_empty());
    }

    #[test]
    fn line_twins_are_independent_per_line() {
        let s = store();
        let line_size = 1024;
        // Twin line 1, modify lines 1 and 2; only line 1's diff sees it.
        assert!(s.make_line_twin(PageId(1), LineIx(1), line_size, line_size));
        assert!(
            !s.make_line_twin(PageId(1), LineIx(1), line_size, line_size),
            "second line-twin request is a no-op"
        );
        assert!(s.has_line_twin(PageId(1), LineIx(1)));
        assert!(!s.has_line_twin(PageId(1), LineIx(2)));
        s.write(PageId(1), line_size + 4, &[9; 4]);
        s.write(PageId(1), 2 * line_size, &[8; 4]);
        let diff = s.take_line_twin_diff(PageId(1), LineIx(1), line_size);
        assert_eq!(diff.line, LineIx(1));
        assert_eq!(diff.runs.len(), 1);
        assert_eq!(diff.runs[0].offset, line_size + 4, "offsets page-absolute");
        assert!(!s.has_line_twin(PageId(1), LineIx(1)));
        // Without a twin the line diff is empty.
        assert!(s
            .take_line_twin_diff(PageId(1), LineIx(1), line_size)
            .is_empty());
    }

    #[test]
    fn install_line_replaces_only_its_range() {
        let s = store();
        s.write(PageId(1), 0, &[7; 64]);
        s.make_line_twin(PageId(1), LineIx(0), 0, 1024);
        s.install_line(PageId(1), LineIx(2), 2048, &vec![5u8; 1024]);
        assert_eq!(s.snapshot_range(PageId(1), 0, 4), vec![7, 7, 7, 7]);
        assert_eq!(s.snapshot_range(PageId(1), 2048, 2), vec![5, 5]);
        assert!(
            s.has_line_twin(PageId(1), LineIx(0)),
            "installing one line keeps other lines' twins"
        );
        s.install_line(PageId(1), LineIx(0), 0, &vec![1u8; 1024]);
        assert!(!s.has_line_twin(PageId(1), LineIx(0)));
        // Installing a line on a node with no frame creates a zeroed frame.
        s.install_line(PageId(9), LineIx(1), 1024, &vec![3u8; 1024]);
        assert_eq!(s.snapshot_range(PageId(9), 0, 1), vec![0]);
        assert_eq!(s.snapshot_range(PageId(9), 1024, 1), vec![3]);
    }

    #[test]
    fn recorded_diff_tracks_explicit_writes() {
        let s = store();
        s.write_recorded(PageId(1), 10, &[1, 1]);
        s.write_recorded(PageId(1), 40, &[2, 2, 2]);
        assert!(s.has_recorded(PageId(1)));
        let diff = s.take_recorded_diff(PageId(1));
        assert_eq!(diff.runs.len(), 2);
        assert!(!s.has_recorded(PageId(1)));
    }

    #[test]
    fn apply_diff_updates_home_copy() {
        let s = store();
        let mut other = vec![0u8; PAGE_SIZE];
        other[100] = 42;
        let diff = PageDiff::compute(PageId(1), &vec![0u8; PAGE_SIZE], &other);
        s.apply_diff(PageId(1), &diff);
        let mut b = [0u8; 1];
        s.read(PageId(1), 100, &mut b);
        assert_eq!(b[0], 42);
    }

    #[test]
    fn evict_removes_the_frame() {
        let s = store();
        s.write(PageId(1), 0, &[3]);
        let data = s.evict(PageId(1)).unwrap();
        assert_eq!(data[0], 3);
        assert!(!s.has(PageId(1)));
        assert!(s.evict(PageId(1)).is_none());
        assert!(s.pages().is_empty());
    }

    #[test]
    #[should_panic(expected = "no frame")]
    fn reading_unmapped_page_panics() {
        let s = store();
        let mut buf = [0u8; 1];
        s.read(PageId(99), 0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "4096 bytes")]
    fn installing_short_page_panics() {
        store().install(PageId(1), vec![0u8; 10]);
    }
}
