//! The DSM communication module and the synchronization entry points.
//!
//! All DSM communication goes through four PM2 services:
//!
//! * `dsm` — one-way protocol messages (page requests, page transfers,
//!   invalidations, acknowledgements, diffs), dispatched to the protocol
//!   actions of the page's protocol;
//! * `dsm_lock_acquire` / `dsm_lock_release` — lock management at the lock's
//!   manager node;
//! * `dsm_barrier` — barrier episodes at the barrier's manager node.
//!
//! Because the services are registered on every node and the handlers run in
//! their own threads, concurrent requests are served in parallel, matching
//! the multithreaded behaviour the paper emphasizes.

use dsmpm2_madeleine::{NodeId, CONTROL_MESSAGE_BYTES};
use dsmpm2_pm2::{downcast, service_fn, RpcClass, RpcMessage, RpcReply, RpcRequestCtx};
use dsmpm2_sim::{BlockReason, EngineCtl, SimDuration, SimHandle, SimTime, ThreadId, TickOutbox};

use crate::ctx::{DsmThreadCtx, ServerCtx};
use crate::diff::PageDiff;
use crate::msg::{DsmMsg, FetchRead, FetchReply, Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, LineIx, PageId, PAGE_SIZE};
use crate::runtime::DsmRuntime;
use crate::sync::{BarrierId, LockId};
use crate::verify::SyncEvent;

/// Name of the protocol-message service.
pub const SVC_DSM: &str = "dsm";
/// Name of the lock-acquire service.
pub const SVC_LOCK_ACQUIRE: &str = "dsm_lock_acquire";
/// Name of the lock-release service.
pub const SVC_LOCK_RELEASE: &str = "dsm_lock_release";
/// Name of the barrier service.
pub const SVC_BARRIER: &str = "dsm_barrier";
/// Name of the one-sided read-fetch service. Requests on this service are
/// normally consumed by the delivery interceptor at arrival instant (served
/// straight from the home's installed frame, with no handler thread); the
/// registered handler below is the fallback for contended home-side state.
pub const SVC_DSM_FETCH: &str = "dsm_fetch";

/// Per-tick batcher for coherence messages (invalidations, diffs,
/// acknowledgements, ownership notices). One per runtime, present only when
/// [`dsmpm2_pm2::DsmTuning::batch_messages`] is enabled: messages addressed
/// to the same node within one batching window are coalesced into a single
/// [`DsmMsg::Batch`] envelope flushed at the end of the window. The default
/// window width is zero — only *same-instant* messages coalesce, the
/// historical behaviour; a non-zero [`dsmpm2_pm2::DsmTuning::batch_window`]
/// widens the bucket to a time window, parking each message (together with
/// its logical send tick, which bounds how early the flushed envelope may
/// depart) until the window closes.
pub(crate) struct DsmOutbox {
    queued: TickOutbox<(NodeId, NodeId), (SimTime, DsmMsg)>,
    window: SimDuration,
}

impl DsmOutbox {
    pub(crate) fn new(window: SimDuration) -> Self {
        DsmOutbox {
            queued: TickOutbox::new(),
            window,
        }
    }

    /// The bucket slot a message sent at `tick` lands in: the tick itself
    /// for same-instant batching, or the enclosing window's start otherwise.
    fn slot_of(&self, tick: SimTime) -> SimTime {
        let w = self.window.as_nanos();
        match tick.as_nanos().checked_div(w) {
            Some(windows) => SimTime::from_nanos(windows * w),
            // Zero-width window: every tick is its own slot.
            None => tick,
        }
    }

    /// When the bucket for `slot` must be flushed, as a delay from `tick`
    /// (the pushing thread's local clock): immediately for same-instant
    /// batching, at the window's end otherwise.
    fn flush_delay(&self, slot: SimTime, tick: SimTime) -> SimDuration {
        if self.window.is_zero() {
            SimDuration::ZERO
        } else {
            (slot + self.window).since(tick)
        }
    }
}

/// Register the DSM services on the runtime's cluster. Called once from
/// `DsmRuntime::with_cluster`.
pub(crate) fn register_dsm_services(rt: &DsmRuntime) {
    let cluster = rt.cluster().clone();

    // Protocol messages.
    let rt_msg = rt.clone();
    cluster.register_service(service_fn(SVC_DSM, true, move |rpc, payload| {
        let msg = downcast::<DsmMsg>(payload, "dsm message");
        handle_dsm_msg(&rt_msg, rpc, msg);
        None
    }));

    // One-sided read fetch, fallback path: when the delivery interceptor
    // declined to serve the request at arrival instant (or one-sided reads
    // are disabled), the request reaches the dispatcher and this handler
    // thread re-checks the home-side state. It may succeed where the
    // interceptor refused — the contended state can have drained by the time
    // the thread runs — otherwise the requester is told to retry through the
    // classic two-sided request path.
    let rt_fetch = rt.clone();
    cluster.register_service(service_fn(SVC_DSM_FETCH, true, move |rpc, payload| {
        let req = downcast::<FetchRead>(payload, "fetch-read request");
        rt_fetch.stats().incr_fetch_handler_wake();
        rpc.sim.charge(rt_fetch.costs().serve_overhead());
        match try_serve_fetch(&rt_fetch, rpc.local_node, &req) {
            Some(reply) => {
                let bytes = reply.payload_bytes();
                Some(RpcReply::data(reply, bytes))
            }
            None => {
                rt_fetch.stats().incr_one_sided_busy();
                Some(RpcReply::control(FetchReply::Busy))
            }
        }
    }));

    // The one-sided fast path proper: a delivery interceptor that runs at
    // the instant a `dsm_fetch` request arrives at its destination (on the
    // destination's scheduler shard, so it is serialized with the node's
    // threads and handlers). If the home-side state is clean the reply is
    // sent directly from the interceptor — no dispatcher pass, no handler
    // thread, no scheduler round-trip on the serving node. Like the pre-send
    // hook above, it holds the runtime weakly to avoid a reference cycle
    // through cluster → network → hook → runtime.
    if rt.tuning().one_sided_reads {
        let weak = rt.downgrade();
        cluster
            .network()
            .set_delivery_hook(std::sync::Arc::new(move |ctl, env| {
                let Some(inner) = weak.upgrade() else {
                    return Some(env);
                };
                let rt = DsmRuntime::from_inner(inner);
                let req = match &env.msg {
                    RpcMessage::Request {
                        service, payload, ..
                    } if service == SVC_DSM_FETCH => match payload.downcast_ref::<FetchRead>() {
                        Some(req) => *req,
                        None => return Some(env),
                    },
                    _ => return Some(env),
                };
                let Some(reply) = try_serve_fetch(&rt, env.to, &req) else {
                    return Some(env);
                };
                rt.stats().incr_one_sided_serve();
                let bytes = reply.payload_bytes();
                let id = match env.msg {
                    RpcMessage::Request { id, .. } => id,
                    _ => unreachable!("matched Request above"),
                };
                rt.cluster().send_reply_from_ctl(
                    ctl,
                    env.to,
                    env.from,
                    id,
                    RpcReply::data(reply, bytes),
                );
                None
            }));
    }

    // With batching enabled, parked coherence messages must never be
    // overtaken by a later message on the same link (an overtaking barrier
    // reply or page transfer would let readers run ahead of an ownership
    // notice or invalidation): flush the link's buckets before any other
    // message is enqueued on it. The hook holds the runtime weakly — the
    // network outlives runtimes in some tests, and a strong reference would
    // cycle through cluster → network → hook → runtime → cluster.
    if rt.has_outbox() {
        let weak = rt.downgrade();
        cluster
            .network()
            .set_pre_send_hook(std::sync::Arc::new(move |from, to| {
                if let Some(inner) = weak.upgrade() {
                    let rt = DsmRuntime::from_inner(inner);
                    let ctl = rt.cluster().ctl();
                    rt.flush_coherence_link(&ctl, from, to);
                }
            }));
    }

    // Lock acquisition: the handler thread blocks at the manager node until
    // the lock is free, then takes it on behalf of the requesting node.
    let rt_lock = rt.clone();
    cluster.register_service(service_fn(SVC_LOCK_ACQUIRE, true, move |rpc, payload| {
        let lock = LockId(downcast::<u64>(payload, "lock id"));
        let state = rt_lock.lock_state(lock);
        let requester = rpc.from_node;
        let state_for_wait = state.clone();
        state.waiters.wait_until(rpc.sim, || {
            let mut held = state_for_wait.held.lock();
            if held.0 {
                false
            } else {
                *held = (true, Some(requester));
                true
            }
        });
        Some(RpcReply::control(()))
    }));

    // Lock release.
    let rt_unlock = rt.clone();
    cluster.register_service(service_fn(SVC_LOCK_RELEASE, true, move |rpc, payload| {
        let lock = LockId(downcast::<u64>(payload, "lock id"));
        let state = rt_unlock.lock_state(lock);
        {
            let mut held = state.held.lock();
            assert!(held.0, "release of DSM lock {lock:?} which is not held");
            *held = (false, None);
        }
        state.waiters.notify_one(&rpc.sim.ctl(), SimDuration::ZERO);
        None
    }));

    // Barrier.
    let rt_barrier = rt.clone();
    cluster.register_service(service_fn(SVC_BARRIER, true, move |rpc, payload| {
        let barrier = BarrierId(downcast::<u64>(payload, "barrier id"));
        let state = rt_barrier.barrier_state(barrier);
        let (my_round, last) = {
            let mut round = state.round.lock();
            round.0 += 1;
            let my_round = round.1;
            let last = round.0 == state.parties;
            if last {
                round.0 = 0;
                round.1 += 1;
            }
            (my_round, last)
        };
        if last {
            state.waiters.notify_all(&rpc.sim.ctl(), SimDuration::ZERO);
        } else {
            let state_for_wait = state.clone();
            state
                .waiters
                .wait_until_why(rpc.sim, BlockReason::Barrier, || {
                    state_for_wait.round.lock().1 != my_round
                });
        }
        Some(RpcReply::control(()))
    }));
}

fn handle_dsm_msg(rt: &DsmRuntime, rpc: &mut RpcRequestCtx<'_>, msg: DsmMsg) {
    let mut ctx = ServerCtx {
        sim: &mut *rpc.sim,
        runtime: rt.clone(),
        local_node: rpc.local_node,
        from_node: rpc.from_node,
    };
    serve_dsm_msg(rt, &mut ctx, msg);
}

fn serve_dsm_msg(rt: &DsmRuntime, ctx: &mut ServerCtx<'_>, msg: DsmMsg) {
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *TRACE.get_or_init(|| std::env::var("DSMPM2_TRACE").is_ok()) {
        eprintln!(
            "[{}] N{} <- N{}: {:?}",
            ctx.sim.now(),
            ctx.local_node.0,
            ctx.from_node.0,
            TraceMsg(&msg)
        );
    }
    match msg {
        DsmMsg::Batch(msgs) => {
            // Atomic unpack: every sub-message became visible at this same
            // instant, in send order. Each one is served by its own handler
            // thread — the concurrency semantics of unbatched delivery,
            // where the dispatcher creates one thread per message — so a
            // blocking server action (e.g. a writer pushing its diff before
            // acknowledging an invalidation) never delays its batch-mates.
            let thread_create = rt.cluster().costs().thread_create();
            let (local, from) = (ctx.local_node, ctx.from_node);
            for (i, sub) in msgs.into_iter().enumerate() {
                ctx.sim.charge(thread_create);
                let rt_sub = rt.clone();
                // Handler threads are pinned to the local node's scheduler
                // shard (like every thread of this node), so batch unpacking
                // stays serialized with the node's other events.
                let shard = local.index() as u64;
                ctx.sim
                    .spawn_on(shard, format!("dsm-batch@{local}#{i}"), move |sim| {
                        let mut sub_ctx = ServerCtx {
                            sim,
                            runtime: rt_sub.clone(),
                            local_node: local,
                            from_node: from,
                        };
                        serve_dsm_msg(&rt_sub, &mut sub_ctx, sub);
                    });
            }
        }
        DsmMsg::Request(req) => {
            let protocol = rt.protocol_for_page(req.page);
            match req.access {
                Access::Write => protocol.write_server(ctx, req),
                _ => protocol.read_server(ctx, req),
            }
        }
        DsmMsg::Transfer(transfer) => {
            let protocol = rt.protocol_for_page(transfer.page);
            protocol.receive_page_server(ctx, transfer);
        }
        DsmMsg::Invalidate(inv) => {
            let protocol = rt.protocol_for_page(inv.page);
            protocol.invalidate_server(ctx, inv);
        }
        DsmMsg::InvalidateAck { page, line } => {
            rt.stats().incr_invalidation_ack();
            acknowledge(rt, ctx, page, line);
        }
        DsmMsg::Diff {
            diff,
            from,
            needs_ack,
        } => {
            let (page, line) = (diff.page, diff.line);
            let protocol = rt.protocol_for_page(page);
            protocol.diff_server(ctx, diff, from);
            if needs_ack {
                let local = ctx.local_node;
                rt.send_diff_ack(ctx.sim, local, from, page, line);
            }
        }
        DsmMsg::DiffAck { page, line } => {
            acknowledge(rt, ctx, page, line);
        }
        DsmMsg::AcquireDone {
            page,
            line,
            owner,
            version,
        } => {
            // Generic-core handling at the home node: record the new owner
            // (version-gated against late arrivals), mark the acquisition
            // complete, and wake any write requests queued at the manager.
            let table = rt.page_table(ctx.local_node);
            let mut version_before = 0;
            let mut version_after = 0;
            table.update_at(page, line, |e| {
                version_before = e.owner_version;
                // Historical bug (`hint_rewind`): applying the notice without
                // the version gate lets a late or duplicated stale notice
                // rewind the succession record.
                if crate::mutant::active("hint_rewind") || version >= e.owner_version {
                    e.owner_version = version;
                    if !e.owned {
                        e.prob_owner = owner;
                    }
                }
                version_after = e.owner_version;
                if e.queue_tail == Some(owner) {
                    e.queue_tail = None;
                }
            });
            if let Some(hooks) = rt.hooks() {
                hooks.owner_version_update(
                    rt,
                    ctx.sim.now(),
                    ctx.local_node,
                    page,
                    version_before,
                    version_after,
                );
            }
            table
                .waiters_at(page, line)
                .notify_all(&ctx.sim.ctl(), SimDuration::ZERO);
        }
    }
}

/// Generic-core handling of an acknowledgement: decrement the line's pending
/// acknowledgement count and wake the threads waiting for it.
fn acknowledge(rt: &DsmRuntime, ctx: &mut ServerCtx<'_>, page: PageId, line: LineIx) {
    let table = rt.page_table(ctx.local_node);
    table.update_at(page, line, |e| {
        e.pending_acks = e.pending_acks.saturating_sub(1)
    });
    table
        .waiters_at(page, line)
        .notify_all(&ctx.sim.ctl(), SimDuration::ZERO);
}

/// Try to serve a one-sided read fetch for `req` from `node`'s installed
/// frame, without any protocol action running. Returns `None` whenever the
/// home-side state is contended or the request cannot safely be served
/// without the full protocol machinery:
///
/// * the line's protocol has not opted into one-sided reads;
/// * the serving node's copy is not readable, is mid-fetch itself, has
///   acknowledgements in flight (a revocation or diff round is open), or has
///   a queued write acquisition (`queue_tail`) — a reader must not overtake
///   the queued writer's invalidation;
/// * the node is not entitled to serve (single-writer protocols: not the
///   owner; multiple-writer protocols: not the home);
/// * the frame is absent or doomed (evicted while the table entry lingers).
///
/// On success the requester is added to the copyset — under the same shard
/// lock that publishes the data — and, for single-writer protocols, a
/// writing owner self-downgrades to `Read`, exactly as the two-sided
/// read-serve path does.
fn try_serve_fetch(rt: &DsmRuntime, node: NodeId, req: &FetchRead) -> Option<FetchReply> {
    let table = rt.page_table(node);
    let entry = table.try_get_at(req.page, req.line)?;
    let protocol = rt.protocol(entry.protocol);
    if !protocol.one_sided_reads() {
        return None;
    }
    if !entry.access.permits(Access::Read)
        || entry.pending_fetch
        || entry.pending_acks != 0
        || entry.queue_tail.is_some()
    {
        return None;
    }
    let mw = protocol.multiple_writers();
    if mw {
        if entry.home != node {
            return None;
        }
    } else if !entry.owned {
        return None;
    }
    if !rt.frames(node).has(req.page) {
        return None;
    }
    let (version, off, len) = table.update_at(req.page, req.line, |e| {
        e.copyset.insert(req.requester);
        if !mw && e.access == Access::Write {
            e.access = Access::Read;
        }
        let (off, len) = e.line_span();
        (e.version, off, len)
    });
    let data = if len == PAGE_SIZE {
        rt.frames(node).snapshot(req.page)
    } else {
        rt.frames(node).snapshot_range(req.page, off, len)
    };
    Some(FetchReply::Data {
        data,
        version,
        owner: node,
    })
}

/// Blocking one-sided fetch RPC from a faulting thread to the line's home.
/// The reply normally comes straight from the home's delivery interceptor;
/// under contention it comes from the fallback handler thread, possibly as
/// [`FetchReply::Busy`].
pub(crate) fn fetch_read_rpc(
    ctx: &mut DsmThreadCtx<'_, '_>,
    home: NodeId,
    req: FetchRead,
) -> FetchReply {
    downcast::<FetchReply>(
        ctx.pm2
            .rpc_call(home, SVC_DSM_FETCH, Box::new(req), RpcClass::Control),
        "fetch reply",
    )
}

// ---------------------------------------------------------------------------
// Sending primitives (the DSM communication module proper).
// ---------------------------------------------------------------------------

struct TraceMsg<'a>(&'a DsmMsg);
impl std::fmt::Debug for TraceMsg<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            DsmMsg::Request(r) => write!(
                f,
                "Request({:?} {} req=N{})",
                r.access, r.page, r.requester.0
            ),
            DsmMsg::Transfer(t) => write!(
                f,
                "Transfer({} grant={:?} owner=N{} v={})",
                t.page, t.grant, t.owner.0, t.version
            ),
            DsmMsg::Invalidate(i) => write!(
                f,
                "Invalidate({} from=N{} new_owner={:?} v={})",
                i.page, i.from.0, i.new_owner, i.version
            ),
            DsmMsg::InvalidateAck { page, line } => {
                write!(f, "InvalidateAck({page} l={})", line.0)
            }
            DsmMsg::Diff { diff, from, .. } => {
                write!(f, "Diff({} l={} from=N{})", diff.page, diff.line.0, from.0)
            }
            DsmMsg::DiffAck { page, line } => write!(f, "DiffAck({page} l={})", line.0),
            DsmMsg::AcquireDone {
                page,
                line,
                owner,
                version,
            } => write!(
                f,
                "AcquireDone({page} l={} owner=N{} v={version})",
                line.0, owner.0
            ),
            DsmMsg::Batch(v) => {
                write!(f, "Batch[")?;
                for m in v {
                    write!(f, "{:?}, ", TraceMsg(m))?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Wire cost class of one coherence message (pure control when it carries no
/// payload, bulk otherwise) — the same classes the unbatched sends used.
fn rpc_class_for(msg: &DsmMsg) -> RpcClass {
    match msg.payload_bytes() {
        0 => RpcClass::Control,
        n => RpcClass::Data(n),
    }
}

impl DsmRuntime {
    /// Send a coherence message (invalidation, diff, acknowledgement,
    /// ownership notice). With batching enabled, messages for the same
    /// destination sent within one virtual-time tick are parked in the
    /// outbox and flushed as a single [`DsmMsg::Batch`] envelope at the end
    /// of the tick; otherwise the message goes out immediately.
    fn send_coherence(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, msg: DsmMsg) {
        let Some(outbox) = self.outbox() else {
            let class = rpc_class_for(&msg);
            self.cluster()
                .rpc_oneway(sim, from, to, SVC_DSM, Box::new(msg), class);
            return;
        };
        let tick = sim.now();
        let slot = outbox.slot_of(tick);
        if outbox.queued.push((from, to), slot, (tick, msg)) {
            // First message for this (destination, window slot): schedule
            // exactly one flush at the slot's end — for the default
            // zero-width window that is the end of the current tick, so all
            // same-tick messages for this destination have been parked by
            // then. (The pre-send link hook may have flushed the bucket
            // earlier, in which case the callback finds it empty and does
            // nothing.)
            let rt = self.clone();
            // The flush drains the (from, to) bucket and enqueues on the
            // link's clocks — sender-side state, so it is pinned to the
            // sending node's scheduler shard.
            sim.call_after_on(
                from.index() as u64,
                outbox.flush_delay(slot, tick),
                move |ctl| {
                    rt.flush_coherence_link(ctl, from, to);
                },
            );
        }
    }

    fn outbox(&self) -> Option<&DsmOutbox> {
        self.inner().outbox.as_ref()
    }

    pub(crate) fn has_outbox(&self) -> bool {
        self.outbox().is_some()
    }

    /// Ship every parked bucket of the (from, to) link, oldest tick first.
    /// Called by the end-of-tick flush callback and by the transport's
    /// pre-send hook (which guarantees no later message overtakes a parked
    /// one on the same link — the hook's nested invocation during our own
    /// send below finds the buckets already drained and is a no-op).
    pub(crate) fn flush_coherence_link(&self, ctl: &EngineCtl, from: NodeId, to: NodeId) {
        let Some(outbox) = self.outbox() else { return };
        for (_slot, items) in outbox.queued.take_all((from, to)) {
            // The flushed envelope must not depart earlier than the latest
            // parked message's logical send time (the sender's local clock,
            // possibly ahead of the global clock).
            let tick = items.iter().map(|(t, _)| *t).max().unwrap_or(SimTime::ZERO);
            let mut msgs: Vec<DsmMsg> = items.into_iter().map(|(_, m)| m).collect();
            let (payload, class, messages) = match msgs.len() {
                0 => continue,
                1 => {
                    let msg = msgs.pop().expect("len checked");
                    let class = rpc_class_for(&msg);
                    (msg, class, 1)
                }
                n => {
                    self.stats().incr_coherence_batch();
                    self.stats().add_coherence_batched_messages(n as u64);
                    let batch = DsmMsg::Batch(msgs);
                    // One envelope on the wire: a single message latency is
                    // paid, while every coalesced message contributes its
                    // payload plus one small per-message header at network
                    // bandwidth.
                    let bytes = batch.payload_bytes() + (n - 1) * CONTROL_MESSAGE_BYTES;
                    (batch, RpcClass::Data(bytes), n as u32)
                }
            };
            // `tick` is the logical send time of the parked messages (the
            // sender's local clock, possibly ahead of the global clock): the
            // flushed envelope must not depart earlier than an unbatched
            // send would have.
            self.cluster().rpc_oneway_from_ctl(
                ctl,
                from,
                to,
                SVC_DSM,
                Box::new(payload),
                class,
                messages,
                tick,
            );
        }
    }

    /// Send a page request to `to` (one-way; the page will arrive later as a
    /// [`PageTransfer`] message, possibly from a different node).
    pub fn send_page_request(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        req: PageRequest,
    ) {
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Request(req)),
            RpcClass::Control,
        );
    }

    /// Send a full page to `to`.
    pub fn send_page(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, transfer: PageTransfer) {
        let bytes = transfer.data.len();
        self.stats().incr_page_transfer();
        self.stats().add_page_bytes(bytes as u64);
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Transfer(transfer)),
            RpcClass::Data(bytes),
        );
    }

    /// Send an invalidation for `inv.page` to `to` (batchable).
    pub fn send_invalidate(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        inv: Invalidation,
    ) {
        self.stats().incr_invalidation();
        self.send_coherence(sim, from, to, DsmMsg::Invalidate(inv));
    }

    /// Acknowledge an invalidation back to `to` (batchable).
    pub fn send_invalidate_ack(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        page: PageId,
        line: LineIx,
    ) {
        self.send_coherence(sim, from, to, DsmMsg::InvalidateAck { page, line });
    }

    /// Send a diff to `to` (normally the page's home node; batchable — the
    /// diffs of several pages flushed at one release coalesce when they are
    /// homed on the same node).
    pub fn send_diff(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        diff: PageDiff,
        needs_ack: bool,
    ) {
        let bytes = diff.payload_bytes();
        self.stats().incr_diff_sent();
        self.stats().add_diff_bytes(bytes as u64);
        self.send_coherence(
            sim,
            from,
            to,
            DsmMsg::Diff {
                diff,
                from,
                needs_ack,
            },
        );
    }

    /// Notify a line's home node that `owner` finished installing write
    /// ownership at `version` (batchable).
    #[allow(clippy::too_many_arguments)]
    pub fn send_acquire_done(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        page: PageId,
        line: LineIx,
        owner: NodeId,
        version: u64,
    ) {
        self.send_coherence(
            sim,
            from,
            to,
            DsmMsg::AcquireDone {
                page,
                line,
                owner,
                version,
            },
        );
    }

    /// Acknowledge a diff back to `to` (batchable).
    pub fn send_diff_ack(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        page: PageId,
        line: LineIx,
    ) {
        self.send_coherence(sim, from, to, DsmMsg::DiffAck { page, line });
    }
}

// ---------------------------------------------------------------------------
// Synchronization entry points for application threads.
// ---------------------------------------------------------------------------

impl DsmThreadCtx<'_, '_> {
    /// Acquire a DSM lock, then run the consistency actions every protocol in
    /// use associates with lock acquisition.
    pub fn dsm_lock(&mut self, lock: LockId) {
        let rt = self.runtime().clone();
        let manager = rt.lock_manager(lock);
        self.pm2.rpc_call(
            manager,
            SVC_LOCK_ACQUIRE,
            Box::new(lock.0),
            RpcClass::Control,
        );
        rt.stats().incr_lock_acquire();
        self.report_sync(&rt, |time, node, thread| SyncEvent::LockAcquired {
            time,
            node,
            thread,
            lock,
        });
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_acquire(self, lock);
        }
    }

    /// Run the consistency actions associated with lock release, then release
    /// the DSM lock.
    pub fn dsm_unlock(&mut self, lock: LockId) {
        let rt = self.runtime().clone();
        self.report_sync(&rt, |time, node, thread| SyncEvent::LockReleasing {
            time,
            node,
            thread,
            lock,
        });
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_release(self, lock);
        }
        rt.stats().incr_lock_release();
        let manager = rt.lock_manager(lock);
        self.pm2.rpc_oneway(
            manager,
            SVC_LOCK_RELEASE,
            Box::new(lock.0),
            RpcClass::Control,
        );
    }

    /// Wait at a DSM barrier. For the consistency protocols this behaves as a
    /// release (before blocking) followed by an acquire (after every
    /// participant arrived).
    pub fn dsm_barrier(&mut self, barrier: BarrierId) {
        let rt = self.runtime().clone();
        let sync_point = LockId::for_barrier(barrier);
        self.report_sync(&rt, |time, node, thread| SyncEvent::BarrierEnter {
            time,
            node,
            thread,
            barrier,
        });
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_release(self, sync_point);
        }
        let manager = rt.barrier_manager(barrier);
        self.pm2
            .rpc_call(manager, SVC_BARRIER, Box::new(barrier.0), RpcClass::Control);
        self.report_sync(&rt, |time, node, thread| SyncEvent::BarrierExit {
            time,
            node,
            thread,
            barrier,
        });
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_acquire(self, sync_point);
        }
        rt.stats().incr_barrier();
    }

    /// Report a synchronization event to the verify observer, if installed.
    fn report_sync(
        &mut self,
        rt: &DsmRuntime,
        build: impl FnOnce(SimTime, NodeId, ThreadId) -> SyncEvent,
    ) {
        if let Some(hooks) = rt.hooks() {
            let event = build(self.pm2.sim.now(), self.node(), self.pm2.sim.id());
            hooks.sync_event(rt, event);
        }
    }
}
