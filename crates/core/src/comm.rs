//! The DSM communication module and the synchronization entry points.
//!
//! All DSM communication goes through four PM2 services:
//!
//! * `dsm` — one-way protocol messages (page requests, page transfers,
//!   invalidations, acknowledgements, diffs), dispatched to the protocol
//!   actions of the page's protocol;
//! * `dsm_lock_acquire` / `dsm_lock_release` — lock management at the lock's
//!   manager node;
//! * `dsm_barrier` — barrier episodes at the barrier's manager node.
//!
//! Because the services are registered on every node and the handlers run in
//! their own threads, concurrent requests are served in parallel, matching
//! the multithreaded behaviour the paper emphasizes.

use dsmpm2_madeleine::NodeId;
use dsmpm2_pm2::{downcast, service_fn, RpcClass, RpcReply, RpcRequestCtx};
use dsmpm2_sim::{SimDuration, SimHandle};

use crate::ctx::{DsmThreadCtx, ServerCtx};
use crate::diff::PageDiff;
use crate::msg::{DsmMsg, Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, PageId};
use crate::runtime::DsmRuntime;
use crate::sync::{BarrierId, LockId};

/// Name of the protocol-message service.
pub const SVC_DSM: &str = "dsm";
/// Name of the lock-acquire service.
pub const SVC_LOCK_ACQUIRE: &str = "dsm_lock_acquire";
/// Name of the lock-release service.
pub const SVC_LOCK_RELEASE: &str = "dsm_lock_release";
/// Name of the barrier service.
pub const SVC_BARRIER: &str = "dsm_barrier";

/// Register the DSM services on the runtime's cluster. Called once from
/// `DsmRuntime::with_cluster`.
pub(crate) fn register_dsm_services(rt: &DsmRuntime) {
    let cluster = rt.cluster().clone();

    // Protocol messages.
    let rt_msg = rt.clone();
    cluster.register_service(service_fn(SVC_DSM, true, move |rpc, payload| {
        let msg = downcast::<DsmMsg>(payload, "dsm message");
        handle_dsm_msg(&rt_msg, rpc, msg);
        None
    }));

    // Lock acquisition: the handler thread blocks at the manager node until
    // the lock is free, then takes it on behalf of the requesting node.
    let rt_lock = rt.clone();
    cluster.register_service(service_fn(SVC_LOCK_ACQUIRE, true, move |rpc, payload| {
        let lock = LockId(downcast::<u64>(payload, "lock id"));
        let state = rt_lock.lock_state(lock);
        let requester = rpc.from_node;
        let state_for_wait = state.clone();
        state.waiters.wait_until(rpc.sim, || {
            let mut held = state_for_wait.held.lock();
            if held.0 {
                false
            } else {
                *held = (true, Some(requester));
                true
            }
        });
        Some(RpcReply::control(()))
    }));

    // Lock release.
    let rt_unlock = rt.clone();
    cluster.register_service(service_fn(SVC_LOCK_RELEASE, true, move |rpc, payload| {
        let lock = LockId(downcast::<u64>(payload, "lock id"));
        let state = rt_unlock.lock_state(lock);
        {
            let mut held = state.held.lock();
            assert!(held.0, "release of DSM lock {lock:?} which is not held");
            *held = (false, None);
        }
        state.waiters.notify_one(&rpc.sim.ctl(), SimDuration::ZERO);
        None
    }));

    // Barrier.
    let rt_barrier = rt.clone();
    cluster.register_service(service_fn(SVC_BARRIER, true, move |rpc, payload| {
        let barrier = BarrierId(downcast::<u64>(payload, "barrier id"));
        let state = rt_barrier.barrier_state(barrier);
        let (my_round, last) = {
            let mut round = state.round.lock();
            round.0 += 1;
            let my_round = round.1;
            let last = round.0 == state.parties;
            if last {
                round.0 = 0;
                round.1 += 1;
            }
            (my_round, last)
        };
        if last {
            state.waiters.notify_all(&rpc.sim.ctl(), SimDuration::ZERO);
        } else {
            let state_for_wait = state.clone();
            state
                .waiters
                .wait_until(rpc.sim, || state_for_wait.round.lock().1 != my_round);
        }
        Some(RpcReply::control(()))
    }));
}

fn handle_dsm_msg(rt: &DsmRuntime, rpc: &mut RpcRequestCtx<'_>, msg: DsmMsg) {
    let mut ctx = ServerCtx {
        sim: &mut *rpc.sim,
        runtime: rt.clone(),
        local_node: rpc.local_node,
        from_node: rpc.from_node,
    };
    match msg {
        DsmMsg::Request(req) => {
            let protocol = rt.protocol_for_page(req.page);
            match req.access {
                Access::Write => protocol.write_server(&mut ctx, req),
                _ => protocol.read_server(&mut ctx, req),
            }
        }
        DsmMsg::Transfer(transfer) => {
            let protocol = rt.protocol_for_page(transfer.page);
            protocol.receive_page_server(&mut ctx, transfer);
        }
        DsmMsg::Invalidate(inv) => {
            let protocol = rt.protocol_for_page(inv.page);
            protocol.invalidate_server(&mut ctx, inv);
        }
        DsmMsg::InvalidateAck { page } => {
            rt.stats().incr_invalidation_ack();
            acknowledge(rt, &mut ctx, page);
        }
        DsmMsg::Diff {
            diff,
            from,
            needs_ack,
        } => {
            let page = diff.page;
            let protocol = rt.protocol_for_page(page);
            protocol.diff_server(&mut ctx, diff, from);
            if needs_ack {
                let local = ctx.local_node;
                rt.send_diff_ack(ctx.sim, local, from, page);
            }
        }
        DsmMsg::DiffAck { page } => {
            acknowledge(rt, &mut ctx, page);
        }
        DsmMsg::AcquireDone {
            page,
            owner,
            version,
        } => {
            // Generic-core handling at the home node: record the new owner
            // (version-gated against late arrivals), mark the acquisition
            // complete, and wake any write requests queued at the manager.
            let table = rt.page_table(ctx.local_node);
            table.update(page, |e| {
                if version >= e.owner_version {
                    e.owner_version = version;
                    if !e.owned {
                        e.prob_owner = owner;
                    }
                }
                if e.queue_tail == Some(owner) {
                    e.queue_tail = None;
                }
            });
            table
                .waiters(page)
                .notify_all(&ctx.sim.ctl(), SimDuration::ZERO);
        }
    }
}

/// Generic-core handling of an acknowledgement: decrement the page's pending
/// acknowledgement count and wake the threads waiting for it.
fn acknowledge(rt: &DsmRuntime, ctx: &mut ServerCtx<'_>, page: PageId) {
    let table = rt.page_table(ctx.local_node);
    table.update(page, |e| e.pending_acks = e.pending_acks.saturating_sub(1));
    table
        .waiters(page)
        .notify_all(&ctx.sim.ctl(), SimDuration::ZERO);
}

// ---------------------------------------------------------------------------
// Sending primitives (the DSM communication module proper).
// ---------------------------------------------------------------------------

impl DsmRuntime {
    /// Send a page request to `to` (one-way; the page will arrive later as a
    /// [`PageTransfer`] message, possibly from a different node).
    pub fn send_page_request(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        req: PageRequest,
    ) {
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Request(req)),
            RpcClass::Control,
        );
    }

    /// Send a full page to `to`.
    pub fn send_page(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, transfer: PageTransfer) {
        let bytes = transfer.data.len();
        self.stats().incr_page_transfer();
        self.stats().add_page_bytes(bytes as u64);
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Transfer(transfer)),
            RpcClass::Data(bytes),
        );
    }

    /// Send an invalidation for `inv.page` to `to`.
    pub fn send_invalidate(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        inv: Invalidation,
    ) {
        self.stats().incr_invalidation();
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Invalidate(inv)),
            RpcClass::Control,
        );
    }

    /// Acknowledge an invalidation back to `to`.
    pub fn send_invalidate_ack(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, page: PageId) {
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::InvalidateAck { page }),
            RpcClass::Control,
        );
    }

    /// Send a diff to `to` (normally the page's home node).
    pub fn send_diff(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        diff: PageDiff,
        needs_ack: bool,
    ) {
        let bytes = diff.payload_bytes();
        self.stats().incr_diff_sent();
        self.stats().add_diff_bytes(bytes as u64);
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::Diff {
                diff,
                from,
                needs_ack,
            }),
            RpcClass::Data(bytes),
        );
    }

    /// Notify a page's home node that `owner` finished installing write
    /// ownership at `version`.
    pub fn send_acquire_done(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        page: PageId,
        owner: NodeId,
        version: u64,
    ) {
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::AcquireDone {
                page,
                owner,
                version,
            }),
            RpcClass::Control,
        );
    }

    /// Acknowledge a diff back to `to`.
    pub fn send_diff_ack(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, page: PageId) {
        self.cluster().rpc_oneway(
            sim,
            from,
            to,
            SVC_DSM,
            Box::new(DsmMsg::DiffAck { page }),
            RpcClass::Control,
        );
    }
}

// ---------------------------------------------------------------------------
// Synchronization entry points for application threads.
// ---------------------------------------------------------------------------

impl DsmThreadCtx<'_, '_> {
    /// Acquire a DSM lock, then run the consistency actions every protocol in
    /// use associates with lock acquisition.
    pub fn dsm_lock(&mut self, lock: LockId) {
        let rt = self.runtime().clone();
        let manager = rt.lock_manager(lock);
        self.pm2.rpc_call(
            manager,
            SVC_LOCK_ACQUIRE,
            Box::new(lock.0),
            RpcClass::Control,
        );
        rt.stats().incr_lock_acquire();
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_acquire(self, lock);
        }
    }

    /// Run the consistency actions associated with lock release, then release
    /// the DSM lock.
    pub fn dsm_unlock(&mut self, lock: LockId) {
        let rt = self.runtime().clone();
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_release(self, lock);
        }
        rt.stats().incr_lock_release();
        let manager = rt.lock_manager(lock);
        self.pm2.rpc_oneway(
            manager,
            SVC_LOCK_RELEASE,
            Box::new(lock.0),
            RpcClass::Control,
        );
    }

    /// Wait at a DSM barrier. For the consistency protocols this behaves as a
    /// release (before blocking) followed by an acquire (after every
    /// participant arrived).
    pub fn dsm_barrier(&mut self, barrier: BarrierId) {
        let rt = self.runtime().clone();
        let sync_point = LockId::for_barrier(barrier);
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_release(self, sync_point);
        }
        let manager = rt.barrier_manager(barrier);
        self.pm2
            .rpc_call(manager, SVC_BARRIER, Box::new(barrier.0), RpcClass::Control);
        for id in rt.protocols_in_use() {
            rt.protocol(id).lock_acquire(self, sync_point);
        }
        rt.stats().incr_barrier();
    }
}
