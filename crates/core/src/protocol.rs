//! The protocol interface: the 8 actions of Table 1 and the protocol registry
//! machinery (`dsm_create_protocol` analogue).
//!
//! A consistency protocol in DSM-PM2 is a set of routines automatically
//! called by the generic core on well-identified events: page faults (read /
//! write), receipt of a page request (read / write), receipt of a page,
//! receipt of an invalidation, lock acquire and lock release. Protocols are
//! registered at run time, addressed by a [`ProtocolId`], and can be attached
//! per shared memory region.

use std::fmt;
use std::sync::Arc;

use dsmpm2_madeleine::NodeId;

use crate::ctx::{DsmThreadCtx, ServerCtx};
use crate::diff::PageDiff;
use crate::msg::{Invalidation, PageRequest, PageTransfer};
use crate::page::{Access, DsmAddr, LineIx, PageId};
use crate::sync::LockId;
use crate::verify::ConsistencyModel;

/// Identifier of a registered protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProtocolId(pub usize);

impl fmt::Debug for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proto#{}", self.0)
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proto#{}", self.0)
    }
}

/// Information about a page fault, passed to the fault handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInfo {
    /// Faulting address.
    pub addr: DsmAddr,
    /// Page containing the faulting address.
    pub page: PageId,
    /// Coherence line containing the faulting address (line 0 at the default
    /// whole-page granularity).
    pub line: LineIx,
    /// Kind of access that faulted.
    pub access: Access,
}

/// A multithreaded DSM consistency protocol: the 8 actions of the paper's
/// Table 1, plus a defaulted `diff_server` hook used by the home-based
/// multiple-writer protocols (diff receipt is part of the generic DSM
/// communication module in the original system).
///
/// All actions must be thread-safe: the generic core may invoke them from
/// several service threads concurrently, for the same page or different
/// pages.
pub trait DsmProtocol: Send + Sync + 'static {
    /// Name of the protocol (used for registration, monitoring and reports).
    fn name(&self) -> &str;

    /// Called on a read page fault, in the context of the faulting thread.
    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo);

    /// Called on a write page fault, in the context of the faulting thread.
    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo);

    /// Called on the node receiving a request for read access.
    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest);

    /// Called on the node receiving a request for write access.
    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest);

    /// Called on the node receiving an invalidation request.
    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation);

    /// Called on the node receiving a page it previously requested.
    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer);

    /// Called after the calling thread has acquired a DSM lock.
    fn lock_acquire(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId);

    /// Called before the calling thread releases a DSM lock.
    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId);

    /// True if ordinary writes through the typed accessors must be recorded
    /// with field granularity (the on-the-fly diff recording of the Java
    /// protocols' `put` primitive). Protocols that flush *recorded* ranges
    /// at release — rather than diffing against a twin — return `true`, so
    /// that portable application code using plain `write` stays correct
    /// under them.
    fn records_writes(&self) -> bool {
        false
    }

    /// The consistency model this protocol promises to application code
    /// (the paper's Table 2 classification). The verify layer's race
    /// detector only reports unsynchronized conflicting accesses on pages
    /// whose protocol declares a relaxed model; under
    /// [`ConsistencyModel::Sequential`] the protocol serializes every access
    /// itself. Defaults to `Sequential`, the conservative choice for custom
    /// protocols (fewer spurious findings).
    fn consistency(&self) -> ConsistencyModel {
        ConsistencyModel::Sequential
    }

    /// True if the protocol lets several nodes hold write access to one page
    /// simultaneously (twin/diff or recorded-write merging). Single-writer
    /// protocols return `false`, which arms the verify layer's write
    /// exclusivity and copyset invariants.
    fn multiple_writers(&self) -> bool {
        false
    }

    /// True if the protocol can manage regions at sub-page (line)
    /// granularity: its fault handlers and servers route every operation at
    /// the granularity of the faulting line. Protocols returning `false` are
    /// transparently clamped to whole-page granularity at allocation time.
    fn supports_subpage(&self) -> bool {
        false
    }

    /// True if the protocol can let uncontended remote read faults be served
    /// by the one-sided `FetchRead` fast path (its read-fault handler tries
    /// the fast path before the classic request when the runtime enables
    /// one-sided reads). For such protocols the home's reference copy must be
    /// safe to hand out read-only whenever its entry is readable and
    /// uncontended.
    fn one_sided_reads(&self) -> bool {
        false
    }

    /// Called on the home node when a diff arrives. The default applies the
    /// diff to the home copy and bumps the version of the diffed line.
    fn diff_server(&self, ctx: &mut ServerCtx<'_>, diff: PageDiff, from: NodeId) {
        let runtime = ctx.runtime.clone();
        let node = ctx.local_node;
        let bytes = diff.modified_bytes();
        runtime.frames(node).apply_diff(diff.page, &diff);
        runtime
            .page_table(node)
            .update_at(diff.page, diff.line, |e| {
                e.version += 1;
                e.copyset.insert(from);
            });
        ctx.sim.charge(runtime.costs().diff_apply(bytes));
    }
}

type FaultFn = dyn Fn(&mut DsmThreadCtx<'_, '_>, FaultInfo) + Send + Sync;
type RequestFn = dyn Fn(&mut ServerCtx<'_>, PageRequest) + Send + Sync;
type InvalidateFn = dyn Fn(&mut ServerCtx<'_>, Invalidation) + Send + Sync;
type TransferFn = dyn Fn(&mut ServerCtx<'_>, PageTransfer) + Send + Sync;
type LockFn = dyn Fn(&mut DsmThreadCtx<'_, '_>, LockId) + Send + Sync;

/// A protocol assembled from user-provided routines — the equivalent of the
/// paper's `dsm_create_protocol` call, which takes the 8 component routines
/// and returns a protocol identifier usable exactly like the built-in ones.
///
/// Routines that are not provided default to "do nothing" for lock hooks and
/// to a panic for the others (using a protocol without defining the actions
/// it needs is a programming error).
pub struct CustomProtocol {
    name: String,
    read_fault: Option<Box<FaultFn>>,
    write_fault: Option<Box<FaultFn>>,
    read_server: Option<Box<RequestFn>>,
    write_server: Option<Box<RequestFn>>,
    invalidate_server: Option<Box<InvalidateFn>>,
    receive_page_server: Option<Box<TransferFn>>,
    lock_acquire: Option<Box<LockFn>>,
    lock_release: Option<Box<LockFn>>,
}

impl CustomProtocol {
    /// Start building a protocol named `name`.
    pub fn builder(name: impl Into<String>) -> CustomProtocolBuilder {
        CustomProtocolBuilder {
            proto: CustomProtocol {
                name: name.into(),
                read_fault: None,
                write_fault: None,
                read_server: None,
                write_server: None,
                invalidate_server: None,
                receive_page_server: None,
                lock_acquire: None,
                lock_release: None,
            },
        }
    }
}

/// Builder for [`CustomProtocol`].
pub struct CustomProtocolBuilder {
    proto: CustomProtocol,
}

impl CustomProtocolBuilder {
    /// Set the read-fault handler.
    pub fn read_fault_handler(
        mut self,
        f: impl Fn(&mut DsmThreadCtx<'_, '_>, FaultInfo) + Send + Sync + 'static,
    ) -> Self {
        self.proto.read_fault = Some(Box::new(f));
        self
    }

    /// Set the write-fault handler.
    pub fn write_fault_handler(
        mut self,
        f: impl Fn(&mut DsmThreadCtx<'_, '_>, FaultInfo) + Send + Sync + 'static,
    ) -> Self {
        self.proto.write_fault = Some(Box::new(f));
        self
    }

    /// Set the read-request server routine.
    pub fn read_server(
        mut self,
        f: impl Fn(&mut ServerCtx<'_>, PageRequest) + Send + Sync + 'static,
    ) -> Self {
        self.proto.read_server = Some(Box::new(f));
        self
    }

    /// Set the write-request server routine.
    pub fn write_server(
        mut self,
        f: impl Fn(&mut ServerCtx<'_>, PageRequest) + Send + Sync + 'static,
    ) -> Self {
        self.proto.write_server = Some(Box::new(f));
        self
    }

    /// Set the invalidation server routine.
    pub fn invalidate_server(
        mut self,
        f: impl Fn(&mut ServerCtx<'_>, Invalidation) + Send + Sync + 'static,
    ) -> Self {
        self.proto.invalidate_server = Some(Box::new(f));
        self
    }

    /// Set the page-receipt server routine.
    pub fn receive_page_server(
        mut self,
        f: impl Fn(&mut ServerCtx<'_>, PageTransfer) + Send + Sync + 'static,
    ) -> Self {
        self.proto.receive_page_server = Some(Box::new(f));
        self
    }

    /// Set the lock-acquire consistency action.
    pub fn lock_acquire(
        mut self,
        f: impl Fn(&mut DsmThreadCtx<'_, '_>, LockId) + Send + Sync + 'static,
    ) -> Self {
        self.proto.lock_acquire = Some(Box::new(f));
        self
    }

    /// Set the lock-release consistency action.
    pub fn lock_release(
        mut self,
        f: impl Fn(&mut DsmThreadCtx<'_, '_>, LockId) + Send + Sync + 'static,
    ) -> Self {
        self.proto.lock_release = Some(Box::new(f));
        self
    }

    /// Finish building: the protocol can now be registered with
    /// `DsmRuntime::register_protocol`.
    pub fn build(self) -> Arc<dyn DsmProtocol> {
        Arc::new(self.proto)
    }
}

fn missing(action: &str, proto: &str) -> ! {
    panic!(
        "protocol '{proto}' does not define the '{action}' action but the generic core needed it"
    )
}

impl DsmProtocol for CustomProtocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        match &self.read_fault {
            Some(f) => f(ctx, fault),
            None => missing("read_fault_handler", &self.name),
        }
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        match &self.write_fault {
            Some(f) => f(ctx, fault),
            None => missing("write_fault_handler", &self.name),
        }
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        match &self.read_server {
            Some(f) => f(ctx, req),
            None => missing("read_server", &self.name),
        }
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        match &self.write_server {
            Some(f) => f(ctx, req),
            None => missing("write_server", &self.name),
        }
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        match &self.invalidate_server {
            Some(f) => f(ctx, inv),
            None => missing("invalidate_server", &self.name),
        }
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        match &self.receive_page_server {
            Some(f) => f(ctx, transfer),
            None => missing("receive_page_server", &self.name),
        }
    }

    fn lock_acquire(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        if let Some(f) = &self.lock_acquire {
            f(ctx, lock);
        }
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        if let Some(f) = &self.lock_release {
            f(ctx, lock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_id_formats() {
        assert_eq!(format!("{}", ProtocolId(3)), "proto#3");
        assert_eq!(format!("{:?}", ProtocolId(3)), "proto#3");
    }

    #[test]
    fn builder_produces_a_named_protocol() {
        let proto = CustomProtocol::builder("my_proto")
            .read_fault_handler(|_ctx, _fault| {})
            .write_fault_handler(|_ctx, _fault| {})
            .build();
        assert_eq!(proto.name(), "my_proto");
    }

    #[test]
    fn fault_info_is_plain_data() {
        let f = FaultInfo {
            addr: DsmAddr(4096 + 8),
            page: PageId(1),
            line: crate::page::LINE0,
            access: Access::Write,
        };
        let g = f;
        assert_eq!(f, g);
        assert_eq!(g.page, PageId(1));
    }
}
