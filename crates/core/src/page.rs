//! Pages, addresses and access rights.
//!
//! DSM-PM2 is a page-based DSM: the shared address space is divided into
//! fixed-size pages, each managed individually by the page manager and the
//! consistency protocols. Addresses are cluster-wide iso-addresses (see
//! `dsmpm2_pm2::IsoAllocator`), so a [`DsmAddr`] designates the same datum on
//! every node.

use std::fmt;

/// Size of a DSM page in bytes. The paper's measurements use common 4 kB pages.
pub const PAGE_SIZE: usize = 4096;

/// Smallest supported coherence-line size, in bytes. Lines below this would
/// explode the per-page entry count (and the paper's own argument for
/// sub-page units is false sharing between *objects*, not between bytes).
pub const MIN_LINE_SIZE: usize = 64;

/// Index of a coherence line within its page.
///
/// The coherence unit of a page is either the whole page (the default — the
/// page then consists of exactly one line, line 0, spanning all of
/// [`PAGE_SIZE`]) or one of `PAGE_SIZE / granularity` equal-sized lines when
/// the region was allocated with a sub-page granularity. Every piece of
/// per-unit protocol state (rights, ownership, copysets, twins, versions) is
/// keyed by `(PageId, LineIx)`, so at the default granularity the historical
/// page-level behaviour is reproduced bit-for-bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineIx(pub u16);

/// Line 0: the whole page at page granularity, the first line otherwise.
pub const LINE0: LineIx = LineIx(0);

impl LineIx {
    /// Raw line index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LineIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LineIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Check that `line_size` is a valid coherence-line size: it must divide
/// [`PAGE_SIZE`] evenly and be at least [`MIN_LINE_SIZE`]. Returns it back.
pub fn validate_line_size(line_size: usize) -> usize {
    assert!(
        (MIN_LINE_SIZE..=PAGE_SIZE).contains(&line_size),
        "coherence granularity {line_size} out of range [{MIN_LINE_SIZE}, {PAGE_SIZE}]"
    );
    assert!(
        PAGE_SIZE.is_multiple_of(line_size),
        "coherence granularity {line_size} does not divide the page size {PAGE_SIZE}"
    );
    line_size
}

/// Number of lines per page at `line_size` granularity.
pub fn lines_per_page(line_size: usize) -> u16 {
    (PAGE_SIZE / line_size) as u16
}

/// The line containing byte `offset` of a page split into `line_size` lines.
pub fn line_of_offset(offset: usize, line_size: usize) -> LineIx {
    debug_assert!(offset < PAGE_SIZE);
    LineIx((offset / line_size) as u16)
}

/// Byte range `(offset, len)` of `line` within its page.
pub fn line_range(line: LineIx, line_size: usize) -> (usize, usize) {
    (line.index() * line_size, line_size)
}

/// A cluster-wide shared-memory address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DsmAddr(pub u64);

/// Identity of a DSM page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Access rights of a node on a page, as recorded in its page table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Default)]
pub enum Access {
    /// The page is not mapped locally: any access faults.
    #[default]
    None,
    /// Read-only copy: writes fault.
    Read,
    /// Full access (the node is the writer or holds a writable replica).
    Write,
}

impl Access {
    /// True if rights `self` are sufficient to perform an access of kind
    /// `needed` (where `needed` is `Read` or `Write`).
    pub fn permits(self, needed: Access) -> bool {
        match needed {
            Access::None => true,
            Access::Read => self >= Access::Read,
            Access::Write => self == Access::Write,
        }
    }
}

impl DsmAddr {
    /// The page containing this address.
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE as u64)
    }

    /// Byte offset of this address within its page.
    pub fn offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Address `bytes` further.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> DsmAddr {
        DsmAddr(self.0 + bytes)
    }

    /// Raw address value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl PageId {
    /// First address of the page.
    pub fn base(self) -> DsmAddr {
        DsmAddr(self.0 * PAGE_SIZE as u64)
    }

    /// Raw page number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DsmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for DsmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u64> for DsmAddr {
    fn from(value: u64) -> Self {
        DsmAddr(value)
    }
}

/// Enumerate the pages covered by the byte range `[start, start + len)`.
pub fn pages_covering(start: DsmAddr, len: u64) -> Vec<PageId> {
    if len == 0 {
        return Vec::new();
    }
    let first = start.page().0;
    let last = DsmAddr(start.0 + len - 1).page().0;
    (first..=last).map(PageId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_to_page_and_offset() {
        let a = DsmAddr(4096 * 3 + 17);
        assert_eq!(a.page(), PageId(3));
        assert_eq!(a.offset(), 17);
        assert_eq!(PageId(3).base(), DsmAddr(4096 * 3));
        assert_eq!(a.add(4096).page(), PageId(4));
    }

    #[test]
    fn access_ordering_and_permits() {
        assert!(Access::Write.permits(Access::Read));
        assert!(Access::Write.permits(Access::Write));
        assert!(Access::Read.permits(Access::Read));
        assert!(!Access::Read.permits(Access::Write));
        assert!(!Access::None.permits(Access::Read));
        assert!(Access::None.permits(Access::None));
        assert!(Access::None < Access::Read && Access::Read < Access::Write);
    }

    #[test]
    fn pages_covering_ranges() {
        assert!(pages_covering(DsmAddr(0), 0).is_empty());
        assert_eq!(pages_covering(DsmAddr(0), 1), vec![PageId(0)]);
        assert_eq!(pages_covering(DsmAddr(0), 4096), vec![PageId(0)]);
        assert_eq!(pages_covering(DsmAddr(0), 4097), vec![PageId(0), PageId(1)]);
        assert_eq!(
            pages_covering(DsmAddr(4000), 200),
            vec![PageId(0), PageId(1)]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DsmAddr(0x1000)), "0x1000");
        assert_eq!(format!("{}", PageId(7)), "P7");
    }

    proptest! {
        /// Page/offset decomposition is a bijection.
        #[test]
        fn prop_page_offset_roundtrip(addr in 0u64..(1 << 40)) {
            let a = DsmAddr(addr);
            let rebuilt = a.page().base().add(a.offset() as u64);
            prop_assert_eq!(rebuilt, a);
        }

        /// pages_covering returns contiguous pages covering exactly the range.
        #[test]
        fn prop_pages_covering_is_contiguous(start in 0u64..(1 << 30), len in 1u64..100_000) {
            let pages = pages_covering(DsmAddr(start), len);
            prop_assert!(!pages.is_empty());
            for w in pages.windows(2) {
                prop_assert_eq!(w[1].0, w[0].0 + 1);
            }
            prop_assert_eq!(pages[0], DsmAddr(start).page());
            prop_assert_eq!(*pages.last().unwrap(), DsmAddr(start + len - 1).page());
        }
    }
}
