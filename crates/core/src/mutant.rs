//! Mutation gate: re-introduced historical protocol bugs.
//!
//! Four bugs found and fixed during the original bring-up of the protocol
//! library are kept compilable behind `--cfg dsm_mutant`, each selected at
//! runtime by the `DSM_MUTANT` environment variable. The `dsmpm2-verify`
//! mutation gate rebuilds with the cfg, activates each mutant in turn, and
//! asserts that the schedule explorer, race detector, or invariant oracle
//! catches every one while an unmutated build passes clean — evidence the
//! checkers have teeth rather than vacuously succeeding.
//!
//! In a normal build (no `--cfg dsm_mutant`) [`active`] is a `const`-foldable
//! `false` and every mutant arm compiles out entirely.
//!
//! The mutants, and the checker expected to kill each:
//!
//! | name | defect | killed by |
//! |------|--------|-----------|
//! | `copyset_wipe` | home's read server wipes the copyset before inserting the new reader, forgetting earlier readers | copyset ⊇ readers invariant |
//! | `pre_revoke_diff_push` | release-time diff flush skips ack bookkeeping and returns before homes applied the diffs | stale-read race under `Permuted` delivery |
//! | `hint_rewind` | home applies `AcquireDone` version updates unconditionally, letting a duplicated stale notice rewind the succession record | owner-version monotonicity oracle under `Lossy` duplication |
//! | `doomed_frame_write` | protocol switch evicts remote frames before consolidating their modified contents | final-memory divergence on the switch scenario |

/// Mutant names the gate can activate via `DSM_MUTANT`.
pub const MUTANTS: &[&str] = &[
    "copyset_wipe",
    "pre_revoke_diff_push",
    "hint_rewind",
    "doomed_frame_write",
];

/// True if the named mutant is compiled in (`--cfg dsm_mutant`) and selected
/// by the `DSM_MUTANT` environment variable (read once per process).
#[cfg(dsm_mutant)]
pub fn active(name: &str) -> bool {
    use std::sync::OnceLock;
    static SELECTED: OnceLock<Option<String>> = OnceLock::new();
    SELECTED
        .get_or_init(|| std::env::var("DSM_MUTANT").ok())
        .as_deref()
        == Some(name)
}

/// True if the named mutant is compiled in (`--cfg dsm_mutant`) and selected
/// by the `DSM_MUTANT` environment variable (read once per process).
#[cfg(not(dsm_mutant))]
#[inline(always)]
pub fn active(_name: &str) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutant_names_are_distinct() {
        let mut names = MUTANTS.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MUTANTS.len());
    }

    #[cfg(not(dsm_mutant))]
    #[test]
    fn mutants_compile_out_of_normal_builds() {
        for name in MUTANTS {
            assert!(!active(name));
        }
    }
}
