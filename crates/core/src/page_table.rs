//! The DSM page manager: per-node page tables.
//!
//! Each node keeps a table with one entry per shared page. A set of fields is
//! common to virtually all protocols (local access rights, probable owner,
//! home node, copyset); protocols reuse or ignore fields according to their
//! own page-management strategy, exactly as in the original design where "a
//! field may have different semantics in different protocols and may even be
//! left unused by some protocols". Generic auxiliary fields (`aux_node`,
//! `flags`, `pending_acks`, ...) give user-defined protocols room to stash
//! their own per-page state without modifying the core.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::WaitSet;

use crate::page::{Access, PageId};
use crate::protocol::ProtocolId;

/// One page-table entry, as seen by one node.
#[derive(Clone, Debug)]
pub struct PageEntry {
    /// The page this entry describes.
    pub page: PageId,
    /// Local access rights of this node.
    pub access: Access,
    /// True if this node considers itself the owner of the page (MRSW
    /// protocols move this flag along with write ownership).
    pub owned: bool,
    /// Probable owner (dynamic distributed manager) — the node to which
    /// requests are sent; updated as ownership hints flow through the system.
    pub prob_owner: NodeId,
    /// Home node (fixed distributed manager / home-based protocols).
    pub home: NodeId,
    /// Protocol managing this page.
    pub protocol: ProtocolId,
    /// Nodes believed to hold a copy (meaningful at the owner / home node).
    pub copyset: BTreeSet<NodeId>,
    /// Version counter bumped whenever the reference copy changes.
    pub version: u64,
    /// Highest ownership-succession version this node has heard of; guards
    /// `prob_owner` against rewinds by late invalidations (see
    /// [`crate::msg::Invalidation::version`]).
    pub owner_version: u64,
    /// True while a fetch for this page is in flight from this node (avoids
    /// duplicate requests when several local threads fault concurrently).
    pub pending_fetch: bool,
    /// Tail of the distributed write-acquisition queue as last seen by this
    /// node: the requester of the most recent write request it forwarded (or
    /// sent). Write requests chain behind it (and may be parked at it, see
    /// the `queued` flag on [`crate::msg::PageRequest`]); `prob_owner` itself only ever
    /// records ownership *history*, so routing always has a terminating
    /// fallback even when the queue information is stale.
    pub queue_tail: Option<NodeId>,
    /// Bumped every time a new fetch starts. Lets a deferred server request
    /// wait for exactly the fetch that was in flight when it arrived, rather
    /// than being re-trapped by a later fetch (whose completion may depend on
    /// the deferred request itself — a deadlock).
    pub fetch_seq: u64,
    /// Outstanding acknowledgements this node is waiting for (invalidations,
    /// diff acks).
    pub pending_acks: usize,
    /// True if this node wrote the page since the last release (used by the
    /// release-consistency protocols to know what to flush).
    pub modified_since_release: bool,
    /// Generic per-protocol node hint (e.g. the node to forward to).
    pub aux_node: Option<NodeId>,
    /// Generic per-protocol flag word.
    pub flags: u32,
}

impl PageEntry {
    /// A fresh entry for `page`, homed at `home`, with no local rights.
    pub fn new(page: PageId, home: NodeId, protocol: ProtocolId) -> Self {
        PageEntry {
            page,
            access: Access::None,
            owned: false,
            prob_owner: home,
            home,
            protocol,
            copyset: BTreeSet::new(),
            version: 0,
            owner_version: 0,
            queue_tail: None,
            fetch_seq: 0,
            pending_fetch: false,
            pending_acks: 0,
            modified_since_release: false,
            aux_node: None,
            flags: 0,
        }
    }
}

/// One shard of a page table: a slice of the entry map with its own lock.
/// Pages are distributed over shards by page id, so operations on different
/// shards never contend on the same lock — the page table was the single
/// contended structure of every node once several dispatcher, handler and
/// application threads ran concurrently.
struct Shard {
    entries: Mutex<HashMap<PageId, PageEntry>>,
    waiters: Mutex<HashMap<PageId, Arc<WaitSet>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            entries: Mutex::new(HashMap::new()),
            waiters: Mutex::new(HashMap::new()),
        }
    }
}

/// Default shard count of a node's page table (overridable through
/// [`dsmpm2_pm2::DsmTuning::page_table_shards`]).
pub const DEFAULT_PAGE_TABLE_SHARDS: usize = 8;

/// The page table of one node, sharded by page id.
///
/// The shard vector is immutable after construction, so *finding* the shard
/// of a page is lock-free; only the entries within one shard share a lock.
/// Consecutive page ids land in consecutive shards (round-robin), which
/// spreads the pages of one allocation evenly.
pub struct PageTable {
    node: NodeId,
    shards: Box<[Shard]>,
}

impl PageTable {
    /// An empty table for `node` with the default shard count.
    pub fn new(node: NodeId) -> Self {
        Self::with_shards(node, DEFAULT_PAGE_TABLE_SHARDS)
    }

    /// An empty table for `node` with an explicit shard count (`1` gives the
    /// historical single-lock table).
    pub fn with_shards(node: NodeId, shards: usize) -> Self {
        assert!(shards > 0, "a page table needs at least one shard");
        PageTable {
            node,
            shards: (0..shards).map(|_| Shard::new()).collect(),
        }
    }

    /// The node this table belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `page`. Reading the shard map takes no lock.
    fn shard(&self, page: PageId) -> &Shard {
        &self.shards[(page.0 % self.shards.len() as u64) as usize]
    }

    /// Install an entry for `page` if none exists yet.
    pub fn ensure(&self, page: PageId, home: NodeId, protocol: ProtocolId) {
        self.shard(page)
            .entries
            .lock()
            .entry(page)
            .or_insert_with(|| PageEntry::new(page, home, protocol));
    }

    /// True if the table knows about `page`.
    pub fn contains(&self, page: PageId) -> bool {
        self.shard(page).entries.lock().contains_key(&page)
    }

    /// A copy of the entry for `page`.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node — this corresponds
    /// to a wild access outside any DSM allocation.
    pub fn get(&self, page: PageId) -> PageEntry {
        self.shard(page)
            .entries
            .lock()
            .get(&page)
            .cloned()
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node))
    }

    /// A copy of the entry, or `None` if the page is unknown.
    pub fn try_get(&self, page: PageId) -> Option<PageEntry> {
        self.shard(page).entries.lock().get(&page).cloned()
    }

    /// Run `f` with shared access to the entry for `page`, without cloning it
    /// (cloning copies the whole copyset). The shard lock is held for the
    /// duration of `f`: keep it short and never call back into the same
    /// table from inside.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node.
    pub fn read<R>(&self, page: PageId, f: impl FnOnce(&PageEntry) -> R) -> R {
        let entries = self.shard(page).entries.lock();
        let entry = entries
            .get(&page)
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node));
        f(entry)
    }

    /// Run `f` with mutable access to the entry for `page`.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node.
    pub fn update<R>(&self, page: PageId, f: impl FnOnce(&mut PageEntry) -> R) -> R {
        let mut entries = self.shard(page).entries.lock();
        let entry = entries
            .get_mut(&page)
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node));
        f(entry)
    }

    /// Current local access rights on `page` (`None` if unknown).
    pub fn access(&self, page: PageId) -> Access {
        self.shard(page)
            .entries
            .lock()
            .get(&page)
            .map(|e| e.access)
            .unwrap_or(Access::None)
    }

    /// Set the local access rights on `page`.
    pub fn set_access(&self, page: PageId, access: Access) {
        self.update(page, |e| e.access = access);
    }

    /// The wait set threads block on while `page` is being fetched or while
    /// acknowledgements are outstanding.
    pub fn waiters(&self, page: PageId) -> Arc<WaitSet> {
        Arc::clone(
            self.shard(page)
                .waiters
                .lock()
                .entry(page)
                .or_insert_with(|| Arc::new(WaitSet::new())),
        )
    }

    /// Every page registered in this table.
    pub fn pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| s.entries.lock().keys().copied().collect::<Vec<_>>())
            .collect();
        pages.sort();
        pages
    }

    /// Pages this node wrote since the last release (release-consistency
    /// bookkeeping). Scans shard by shard, never holding more than one shard
    /// lock at a time.
    pub fn modified_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.entries
                    .lock()
                    .iter()
                    .filter(|(_, e)| e.modified_since_release)
                    .map(|(p, _)| *p)
                    .collect::<Vec<_>>()
            })
            .collect();
        pages.sort();
        pages
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.entries.lock().is_empty())
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PageTable(node={}, {} pages, {} shards)",
            self.node,
            self.len(),
            self.shards.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let t = PageTable::new(NodeId(1));
        t.ensure(PageId(7), NodeId(0), ProtocolId(0));
        t
    }

    #[test]
    fn ensure_is_idempotent() {
        let t = table();
        t.update(PageId(7), |e| e.access = Access::Write);
        t.ensure(PageId(7), NodeId(0), ProtocolId(0));
        assert_eq!(t.get(PageId(7)).access, Access::Write);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn new_entries_start_unmapped_and_homed() {
        let t = table();
        let e = t.get(PageId(7));
        assert_eq!(e.access, Access::None);
        assert!(!e.owned);
        assert_eq!(e.home, NodeId(0));
        assert_eq!(e.prob_owner, NodeId(0));
        assert!(e.copyset.is_empty());
        assert_eq!(e.version, 0);
        assert!(!e.pending_fetch);
    }

    #[test]
    fn update_and_access_helpers() {
        let t = table();
        t.set_access(PageId(7), Access::Read);
        assert_eq!(t.access(PageId(7)), Access::Read);
        assert_eq!(t.access(PageId(99)), Access::None);
        t.update(PageId(7), |e| {
            e.copyset.insert(NodeId(2));
            e.modified_since_release = true;
            e.version += 1;
        });
        let e = t.get(PageId(7));
        assert!(e.copyset.contains(&NodeId(2)));
        assert_eq!(e.version, 1);
        assert_eq!(t.modified_pages(), vec![PageId(7)]);
    }

    #[test]
    fn waiters_are_shared_per_page() {
        let t = table();
        let a = t.waiters(PageId(7));
        let b = t.waiters(PageId(7));
        assert!(Arc::ptr_eq(&a, &b));
        let c = t.waiters(PageId(8));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn pages_are_sorted() {
        let t = PageTable::new(NodeId(0));
        for p in [5u64, 1, 3] {
            t.ensure(PageId(p), NodeId(0), ProtocolId(0));
        }
        assert_eq!(t.pages(), vec![PageId(1), PageId(3), PageId(5)]);
    }

    #[test]
    fn sharding_spreads_pages_and_preserves_behaviour() {
        for shards in [1usize, 2, 7, 8, 64] {
            let t = PageTable::with_shards(NodeId(0), shards);
            assert_eq!(t.shard_count(), shards);
            for p in 0..40u64 {
                t.ensure(PageId(p), NodeId(0), ProtocolId(0));
            }
            assert_eq!(t.len(), 40);
            t.update(PageId(17), |e| e.modified_since_release = true);
            t.update(PageId(3), |e| e.modified_since_release = true);
            assert_eq!(t.modified_pages(), vec![PageId(3), PageId(17)]);
            assert_eq!(t.pages().len(), 40);
            assert!(t.contains(PageId(39)));
            assert!(!t.contains(PageId(40)));
        }
    }

    #[test]
    fn read_sees_the_entry_without_cloning() {
        let t = table();
        t.update(PageId(7), |e| {
            e.copyset.insert(NodeId(4));
            e.access = Access::Read;
        });
        let (len, access) = t.read(PageId(7), |e| (e.copyset.len(), e.access));
        assert_eq!(len, 1);
        assert_eq!(access, Access::Read);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = PageTable::with_shards(NodeId(0), 0);
    }

    #[test]
    #[should_panic(expected = "no page-table entry")]
    fn unknown_page_access_panics() {
        table().get(PageId(1000));
    }

    #[test]
    fn try_get_does_not_panic() {
        assert!(table().try_get(PageId(1000)).is_none());
        assert!(table().try_get(PageId(7)).is_some());
    }
}
