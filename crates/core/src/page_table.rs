//! The DSM page manager: per-node page tables.
//!
//! Each node keeps a table with one entry per *coherence unit*. A set of
//! fields is common to virtually all protocols (local access rights, probable
//! owner, home node, copyset); protocols reuse or ignore fields according to
//! their own page-management strategy, exactly as in the original design
//! where "a field may have different semantics in different protocols and may
//! even be left unused by some protocols". Generic auxiliary fields
//! (`aux_node`, `flags`, `pending_acks`, ...) give user-defined protocols
//! room to stash their own per-page state without modifying the core.
//!
//! # Coherence units
//!
//! By default the unit is the whole page: each page has exactly one entry,
//! keyed `(page, line 0)`, and every page-level method below addresses it —
//! this reproduces the historical page-granularity table bit-for-bit. Regions
//! allocated with a sub-page granularity split each page into
//! `PAGE_SIZE / granularity` lines, each with its own independently-owned
//! entry keyed `(page, line)`. All lines of one page land in the same shard
//! (shards are chosen by page id), so resolving an offset to its line entry
//! takes a single shard lock: the `(page, line 0)` entry always exists and
//! records the page's line size (the *geometry*), and the target entry lives
//! behind the same lock.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::WaitSet;

use crate::page::{line_of_offset, lines_per_page, Access, LineIx, PageId, LINE0, PAGE_SIZE};
use crate::protocol::ProtocolId;

/// One page-table entry: the coherence state of one line of one page (the
/// whole page at the default granularity), as seen by one node.
#[derive(Clone, Debug)]
pub struct PageEntry {
    /// The page this entry describes.
    pub page: PageId,
    /// The coherence line this entry describes (line 0 at page granularity).
    pub line: LineIx,
    /// Size in bytes of this page's coherence lines (`PAGE_SIZE` at the
    /// default granularity). Identical across all entries of one page.
    pub line_size: usize,
    /// Local access rights of this node.
    pub access: Access,
    /// True if this node considers itself the owner of the page (MRSW
    /// protocols move this flag along with write ownership).
    pub owned: bool,
    /// Probable owner (dynamic distributed manager) — the node to which
    /// requests are sent; updated as ownership hints flow through the system.
    pub prob_owner: NodeId,
    /// Home node (fixed distributed manager / home-based protocols).
    pub home: NodeId,
    /// Protocol managing this page.
    pub protocol: ProtocolId,
    /// Nodes believed to hold a copy (meaningful at the owner / home node).
    pub copyset: BTreeSet<NodeId>,
    /// Version counter bumped whenever the reference copy changes.
    pub version: u64,
    /// Highest ownership-succession version this node has heard of; guards
    /// `prob_owner` against rewinds by late invalidations (see
    /// [`crate::msg::Invalidation::version`]).
    pub owner_version: u64,
    /// True while a fetch for this page is in flight from this node (avoids
    /// duplicate requests when several local threads fault concurrently).
    pub pending_fetch: bool,
    /// Tail of the distributed write-acquisition queue as last seen by this
    /// node: the requester of the most recent write request it forwarded (or
    /// sent). Write requests chain behind it (and may be parked at it, see
    /// the `queued` flag on [`crate::msg::PageRequest`]); `prob_owner` itself only ever
    /// records ownership *history*, so routing always has a terminating
    /// fallback even when the queue information is stale.
    pub queue_tail: Option<NodeId>,
    /// Bumped every time a new fetch starts. Lets a deferred server request
    /// wait for exactly the fetch that was in flight when it arrived, rather
    /// than being re-trapped by a later fetch (whose completion may depend on
    /// the deferred request itself — a deadlock).
    pub fetch_seq: u64,
    /// Outstanding acknowledgements this node is waiting for (invalidations,
    /// diff acks).
    pub pending_acks: usize,
    /// True if this node wrote the page since the last release (used by the
    /// release-consistency protocols to know what to flush).
    pub modified_since_release: bool,
    /// Generic per-protocol node hint (e.g. the node to forward to).
    pub aux_node: Option<NodeId>,
    /// Generic per-protocol flag word.
    pub flags: u32,
}

impl PageEntry {
    /// A fresh whole-page entry for `page`, homed at `home`, with no local
    /// rights.
    pub fn new(page: PageId, home: NodeId, protocol: ProtocolId) -> Self {
        Self::new_line(page, LINE0, PAGE_SIZE, home, protocol)
    }

    /// A fresh entry for one coherence line of `page`.
    pub fn new_line(
        page: PageId,
        line: LineIx,
        line_size: usize,
        home: NodeId,
        protocol: ProtocolId,
    ) -> Self {
        PageEntry {
            page,
            line,
            line_size,
            access: Access::None,
            owned: false,
            prob_owner: home,
            home,
            protocol,
            copyset: BTreeSet::new(),
            version: 0,
            owner_version: 0,
            queue_tail: None,
            fetch_seq: 0,
            pending_fetch: false,
            pending_acks: 0,
            modified_since_release: false,
            aux_node: None,
            flags: 0,
        }
    }

    /// Byte range `(offset, len)` this entry's line covers within its page.
    pub fn line_span(&self) -> (usize, usize) {
        crate::page::line_range(self.line, self.line_size)
    }
}

/// One shard of a page table: a slice of the entry map with its own lock.
/// Pages are distributed over shards by page id, so operations on different
/// shards never contend on the same lock — the page table was the single
/// contended structure of every node once several dispatcher, handler and
/// application threads ran concurrently. All lines of one page share a shard.
struct Shard {
    entries: Mutex<HashMap<(PageId, LineIx), PageEntry>>,
    waiters: Mutex<HashMap<(PageId, LineIx), Arc<WaitSet>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            entries: Mutex::new(HashMap::new()),
            waiters: Mutex::new(HashMap::new()),
        }
    }
}

/// Default shard count of a node's page table (overridable through
/// [`dsmpm2_pm2::DsmTuning::page_table_shards`]).
pub const DEFAULT_PAGE_TABLE_SHARDS: usize = 8;

/// The page table of one node, sharded by page id.
///
/// The shard vector is immutable after construction, so *finding* the shard
/// of a page is lock-free; only the entries within one shard share a lock.
/// Consecutive page ids land in consecutive shards (round-robin), which
/// spreads the pages of one allocation evenly.
pub struct PageTable {
    node: NodeId,
    shards: Box<[Shard]>,
}

impl PageTable {
    /// An empty table for `node` with the default shard count.
    pub fn new(node: NodeId) -> Self {
        Self::with_shards(node, DEFAULT_PAGE_TABLE_SHARDS)
    }

    /// An empty table for `node` with an explicit shard count (`1` gives the
    /// historical single-lock table).
    pub fn with_shards(node: NodeId, shards: usize) -> Self {
        assert!(shards > 0, "a page table needs at least one shard");
        PageTable {
            node,
            shards: (0..shards).map(|_| Shard::new()).collect(),
        }
    }

    /// The node this table belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `page`. Reading the shard map takes no lock.
    fn shard(&self, page: PageId) -> &Shard {
        &self.shards[(page.0 % self.shards.len() as u64) as usize]
    }

    /// Install a whole-page entry for `page` if none exists yet.
    pub fn ensure(&self, page: PageId, home: NodeId, protocol: ProtocolId) {
        self.ensure_lines(page, home, protocol, PAGE_SIZE);
    }

    /// Install the line entries of `page` at granularity `line_size` if none
    /// exist yet (`line_size == PAGE_SIZE` gives the single whole-page
    /// entry). All lines are created under one shard lock.
    pub fn ensure_lines(&self, page: PageId, home: NodeId, protocol: ProtocolId, line_size: usize) {
        let mut entries = self.shard(page).entries.lock();
        for ix in 0..lines_per_page(line_size) {
            entries.entry((page, LineIx(ix))).or_insert_with(|| {
                PageEntry::new_line(page, LineIx(ix), line_size, home, protocol)
            });
        }
    }

    /// Drop every line entry (and waiter set) of `page`. Only used when a
    /// region is re-registered with a different protocol or granularity; the
    /// caller must have quiesced all activity on the page first.
    pub fn remove_page(&self, page: PageId) {
        let shard = self.shard(page);
        let lines = {
            let mut entries = shard.entries.lock();
            let keys: Vec<(PageId, LineIx)> = entries
                .keys()
                .filter(|(p, _)| *p == page)
                .copied()
                .collect();
            for k in &keys {
                entries.remove(k);
            }
            keys
        };
        let mut waiters = shard.waiters.lock();
        for k in &lines {
            waiters.remove(k);
        }
    }

    /// True if the table knows about `page`.
    pub fn contains(&self, page: PageId) -> bool {
        self.shard(page).entries.lock().contains_key(&(page, LINE0))
    }

    /// Line size of `page` (`PAGE_SIZE` at the default granularity).
    ///
    /// # Panics
    /// Panics if the page is not registered on this node.
    pub fn line_size(&self, page: PageId) -> usize {
        self.read(page, |e| e.line_size)
    }

    /// Number of coherence lines `page` is split into.
    pub fn lines_of(&self, page: PageId) -> u16 {
        lines_per_page(self.line_size(page))
    }

    /// The line of `page` containing byte `offset`.
    pub fn line_of(&self, page: PageId, offset: usize) -> LineIx {
        line_of_offset(offset, self.line_size(page))
    }

    /// A copy of the whole-page (line 0) entry for `page`.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node — this corresponds
    /// to a wild access outside any DSM allocation.
    pub fn get(&self, page: PageId) -> PageEntry {
        self.get_at(page, LINE0)
    }

    /// A copy of the entry for line `line` of `page`.
    ///
    /// # Panics
    /// Panics if the unit is not registered on this node.
    pub fn get_at(&self, page: PageId, line: LineIx) -> PageEntry {
        self.shard(page)
            .entries
            .lock()
            .get(&(page, line))
            .cloned()
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node))
    }

    /// A copy of the line-0 entry, or `None` if the page is unknown.
    pub fn try_get(&self, page: PageId) -> Option<PageEntry> {
        self.try_get_at(page, LINE0)
    }

    /// A copy of the entry for line `line`, or `None` if unknown.
    pub fn try_get_at(&self, page: PageId, line: LineIx) -> Option<PageEntry> {
        self.shard(page).entries.lock().get(&(page, line)).cloned()
    }

    /// A copy of the entry governing byte `offset` of `page`, or `None` if
    /// the page is unknown. Resolves the page's geometry and fetches the line
    /// entry under a single shard lock — this is the per-access hot path.
    pub fn try_get_for_offset(&self, page: PageId, offset: usize) -> Option<PageEntry> {
        let entries = self.shard(page).entries.lock();
        let first = entries.get(&(page, LINE0))?;
        if first.line_size == PAGE_SIZE {
            return Some(first.clone());
        }
        let line = line_of_offset(offset, first.line_size);
        entries.get(&(page, line)).cloned()
    }

    /// Mark the line of `page` containing byte `offset` as modified since the
    /// last release. Geometry resolution and the update share one shard lock.
    pub fn mark_modified_at_offset(&self, page: PageId, offset: usize) {
        let mut entries = self.shard(page).entries.lock();
        let line_size = entries
            .get(&(page, LINE0))
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node))
            .line_size;
        let line = if line_size == PAGE_SIZE {
            LINE0
        } else {
            line_of_offset(offset, line_size)
        };
        if let Some(e) = entries.get_mut(&(page, line)) {
            e.modified_since_release = true;
        }
    }

    /// Run `f` with shared access to the line-0 entry for `page`, without
    /// cloning it (cloning copies the whole copyset). The shard lock is held
    /// for the duration of `f`: keep it short and never call back into the
    /// same table from inside.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node.
    pub fn read<R>(&self, page: PageId, f: impl FnOnce(&PageEntry) -> R) -> R {
        self.read_at(page, LINE0, f)
    }

    /// Run `f` with shared access to the entry for line `line` of `page`.
    ///
    /// # Panics
    /// Panics if the unit is not registered on this node.
    pub fn read_at<R>(&self, page: PageId, line: LineIx, f: impl FnOnce(&PageEntry) -> R) -> R {
        let entries = self.shard(page).entries.lock();
        let entry = entries
            .get(&(page, line))
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node));
        f(entry)
    }

    /// Run `f` with mutable access to the line-0 entry for `page`.
    ///
    /// # Panics
    /// Panics if the page is not registered on this node.
    pub fn update<R>(&self, page: PageId, f: impl FnOnce(&mut PageEntry) -> R) -> R {
        self.update_at(page, LINE0, f)
    }

    /// Run `f` with mutable access to the entry for line `line` of `page`.
    ///
    /// # Panics
    /// Panics if the unit is not registered on this node.
    pub fn update_at<R>(
        &self,
        page: PageId,
        line: LineIx,
        f: impl FnOnce(&mut PageEntry) -> R,
    ) -> R {
        let mut entries = self.shard(page).entries.lock();
        let entry = entries
            .get_mut(&(page, line))
            .unwrap_or_else(|| panic!("node {} has no page-table entry for {page}", self.node));
        f(entry)
    }

    /// Current local access rights on line 0 of `page` (`None` if unknown).
    pub fn access(&self, page: PageId) -> Access {
        self.access_at(page, LINE0)
    }

    /// Current local access rights on line `line` of `page`.
    pub fn access_at(&self, page: PageId, line: LineIx) -> Access {
        self.shard(page)
            .entries
            .lock()
            .get(&(page, line))
            .map(|e| e.access)
            .unwrap_or(Access::None)
    }

    /// Set the local access rights on line 0 of `page`.
    pub fn set_access(&self, page: PageId, access: Access) {
        self.update(page, |e| e.access = access);
    }

    /// Set the local access rights on line `line` of `page`.
    pub fn set_access_at(&self, page: PageId, line: LineIx, access: Access) {
        self.update_at(page, line, |e| e.access = access);
    }

    /// The wait set threads block on while line 0 of `page` is being fetched
    /// or while acknowledgements are outstanding.
    pub fn waiters(&self, page: PageId) -> Arc<WaitSet> {
        self.waiters_at(page, LINE0)
    }

    /// The wait set for line `line` of `page`.
    pub fn waiters_at(&self, page: PageId, line: LineIx) -> Arc<WaitSet> {
        Arc::clone(
            self.shard(page)
                .waiters
                .lock()
                .entry((page, line))
                .or_insert_with(|| Arc::new(WaitSet::new())),
        )
    }

    /// Every page registered in this table (each page once, regardless of how
    /// many lines it is split into).
    pub fn pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.entries
                    .lock()
                    .keys()
                    .filter(|(_, l)| *l == LINE0)
                    .map(|(p, _)| *p)
                    .collect::<Vec<_>>()
            })
            .collect();
        pages.sort();
        pages
    }

    /// Pages this node wrote since the last release (release-consistency
    /// bookkeeping). A page appears once even if several of its lines are
    /// modified. Scans shard by shard, never holding more than one shard
    /// lock at a time.
    pub fn modified_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.entries
                    .lock()
                    .iter()
                    .filter(|(_, e)| e.modified_since_release)
                    .map(|((p, _), _)| *p)
                    .collect::<Vec<_>>()
            })
            .collect();
        pages.sort();
        pages.dedup();
        pages
    }

    /// Coherence units this node wrote since the last release — the
    /// line-granularity analogue of [`PageTable::modified_pages`]. At the
    /// default granularity every unit is `(page, line 0)`.
    pub fn modified_units(&self) -> Vec<(PageId, LineIx)> {
        let mut units: Vec<(PageId, LineIx)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.entries
                    .lock()
                    .iter()
                    .filter(|(_, e)| e.modified_since_release)
                    .map(|(k, _)| *k)
                    .collect::<Vec<_>>()
            })
            .collect();
        units.sort();
        units
    }

    /// Number of entries (line entries count individually).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.entries.lock().is_empty())
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PageTable(node={}, {} entries, {} shards)",
            self.node,
            self.len(),
            self.shards.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        let t = PageTable::new(NodeId(1));
        t.ensure(PageId(7), NodeId(0), ProtocolId(0));
        t
    }

    #[test]
    fn ensure_is_idempotent() {
        let t = table();
        t.update(PageId(7), |e| e.access = Access::Write);
        t.ensure(PageId(7), NodeId(0), ProtocolId(0));
        assert_eq!(t.get(PageId(7)).access, Access::Write);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn new_entries_start_unmapped_and_homed() {
        let t = table();
        let e = t.get(PageId(7));
        assert_eq!(e.access, Access::None);
        assert!(!e.owned);
        assert_eq!(e.home, NodeId(0));
        assert_eq!(e.prob_owner, NodeId(0));
        assert!(e.copyset.is_empty());
        assert_eq!(e.version, 0);
        assert!(!e.pending_fetch);
        assert_eq!(e.line, LINE0);
        assert_eq!(e.line_size, PAGE_SIZE);
        assert_eq!(e.line_span(), (0, PAGE_SIZE));
    }

    #[test]
    fn update_and_access_helpers() {
        let t = table();
        t.set_access(PageId(7), Access::Read);
        assert_eq!(t.access(PageId(7)), Access::Read);
        assert_eq!(t.access(PageId(99)), Access::None);
        t.update(PageId(7), |e| {
            e.copyset.insert(NodeId(2));
            e.modified_since_release = true;
            e.version += 1;
        });
        let e = t.get(PageId(7));
        assert!(e.copyset.contains(&NodeId(2)));
        assert_eq!(e.version, 1);
        assert_eq!(t.modified_pages(), vec![PageId(7)]);
        assert_eq!(t.modified_units(), vec![(PageId(7), LINE0)]);
    }

    #[test]
    fn waiters_are_shared_per_page() {
        let t = table();
        let a = t.waiters(PageId(7));
        let b = t.waiters(PageId(7));
        assert!(Arc::ptr_eq(&a, &b));
        let c = t.waiters(PageId(8));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn pages_are_sorted() {
        let t = PageTable::new(NodeId(0));
        for p in [5u64, 1, 3] {
            t.ensure(PageId(p), NodeId(0), ProtocolId(0));
        }
        assert_eq!(t.pages(), vec![PageId(1), PageId(3), PageId(5)]);
    }

    #[test]
    fn sharding_spreads_pages_and_preserves_behaviour() {
        for shards in [1usize, 2, 7, 8, 64] {
            let t = PageTable::with_shards(NodeId(0), shards);
            assert_eq!(t.shard_count(), shards);
            for p in 0..40u64 {
                t.ensure(PageId(p), NodeId(0), ProtocolId(0));
            }
            assert_eq!(t.len(), 40);
            t.update(PageId(17), |e| e.modified_since_release = true);
            t.update(PageId(3), |e| e.modified_since_release = true);
            assert_eq!(t.modified_pages(), vec![PageId(3), PageId(17)]);
            assert_eq!(t.pages().len(), 40);
            assert!(t.contains(PageId(39)));
            assert!(!t.contains(PageId(40)));
        }
    }

    #[test]
    fn read_sees_the_entry_without_cloning() {
        let t = table();
        t.update(PageId(7), |e| {
            e.copyset.insert(NodeId(4));
            e.access = Access::Read;
        });
        let (len, access) = t.read(PageId(7), |e| (e.copyset.len(), e.access));
        assert_eq!(len, 1);
        assert_eq!(access, Access::Read);
    }

    #[test]
    fn line_entries_are_independent() {
        let t = PageTable::new(NodeId(0));
        let line_size = 1024; // 4 lines per page
        t.ensure_lines(PageId(9), NodeId(0), ProtocolId(0), line_size);
        assert_eq!(t.len(), 4);
        assert_eq!(t.lines_of(PageId(9)), 4);
        assert_eq!(t.line_size(PageId(9)), line_size);
        assert_eq!(t.pages(), vec![PageId(9)], "a page lists once");

        t.set_access_at(PageId(9), LineIx(2), Access::Write);
        t.update_at(PageId(9), LineIx(2), |e| {
            e.owned = true;
            e.modified_since_release = true;
        });
        assert_eq!(t.access_at(PageId(9), LineIx(2)), Access::Write);
        assert_eq!(t.access_at(PageId(9), LineIx(1)), Access::None);
        assert!(!t.get_at(PageId(9), LineIx(0)).owned);
        assert!(t.get_at(PageId(9), LineIx(2)).owned);
        assert_eq!(t.modified_units(), vec![(PageId(9), LineIx(2))]);
        assert_eq!(t.modified_pages(), vec![PageId(9)]);

        // Offset resolution picks the right line entry under one lock.
        let e = t.try_get_for_offset(PageId(9), 2 * line_size + 5).unwrap();
        assert_eq!(e.line, LineIx(2));
        assert_eq!(e.access, Access::Write);
        assert_eq!(e.line_span(), (2 * line_size, line_size));
        let e = t.try_get_for_offset(PageId(9), 0).unwrap();
        assert_eq!(e.line, LINE0);

        // Line-targeted modification marking.
        t.mark_modified_at_offset(PageId(9), 3 * line_size);
        assert_eq!(
            t.modified_units(),
            vec![(PageId(9), LineIx(2)), (PageId(9), LineIx(3))]
        );

        // Waiters are per line.
        let w2 = t.waiters_at(PageId(9), LineIx(2));
        let w3 = t.waiters_at(PageId(9), LineIx(3));
        assert!(!Arc::ptr_eq(&w2, &w3));

        t.remove_page(PageId(9));
        assert!(t.is_empty());
        assert!(!t.contains(PageId(9)));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = PageTable::with_shards(NodeId(0), 0);
    }

    #[test]
    #[should_panic(expected = "no page-table entry")]
    fn unknown_page_access_panics() {
        table().get(PageId(1000));
    }

    #[test]
    fn try_get_does_not_panic() {
        assert!(table().try_get(PageId(1000)).is_none());
        assert!(table().try_get(PageId(7)).is_some());
        assert!(table().try_get_for_offset(PageId(1000), 0).is_none());
        assert!(table().try_get_for_offset(PageId(7), 100).is_some());
    }
}
