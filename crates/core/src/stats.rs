//! DSM-level statistics.
//!
//! Typed counters complementing the generic [`dsmpm2_pm2::Monitor`]: the
//! benchmark harness uses them to report fault counts, transferred pages,
//! invalidations and diffs per experiment, and the tests use them to check
//! protocol behaviour (e.g. "no page is ever transferred by the
//! thread-migration protocol").

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters collected by the DSM generic core.
#[derive(Debug, Default)]
pub struct DsmStats {
    read_faults: AtomicU64,
    write_faults: AtomicU64,
    page_transfers: AtomicU64,
    page_bytes: AtomicU64,
    invalidations: AtomicU64,
    invalidation_acks: AtomicU64,
    diffs_sent: AtomicU64,
    diff_bytes: AtomicU64,
    twins_created: AtomicU64,
    lock_acquires: AtomicU64,
    lock_releases: AtomicU64,
    barriers: AtomicU64,
    thread_migrations: AtomicU64,
    local_accesses: AtomicU64,
    inline_checks: AtomicU64,
    request_forwards: AtomicU64,
    coherence_batches: AtomicU64,
    coherence_batched_messages: AtomicU64,
    one_sided_serves: AtomicU64,
    one_sided_busy: AtomicU64,
    fetch_handler_wakes: AtomicU64,
}

/// A plain-value snapshot of [`DsmStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsmStatsSnapshot {
    /// Read page faults taken.
    pub read_faults: u64,
    /// Write page faults taken.
    pub write_faults: u64,
    /// Full pages transferred between nodes.
    pub page_transfers: u64,
    /// Bytes of page data transferred.
    pub page_bytes: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Invalidation acknowledgements received.
    pub invalidation_acks: u64,
    /// Diff messages sent to home nodes.
    pub diffs_sent: u64,
    /// Bytes of diff payload sent.
    pub diff_bytes: u64,
    /// Twins created by multiple-writer protocols.
    pub twins_created: u64,
    /// DSM lock acquisitions.
    pub lock_acquires: u64,
    /// DSM lock releases.
    pub lock_releases: u64,
    /// Barrier episodes completed (per participant).
    pub barriers: u64,
    /// Thread migrations triggered by DSM protocols.
    pub thread_migrations: u64,
    /// Accesses served entirely locally (fast path).
    pub local_accesses: u64,
    /// Explicit inline locality checks performed.
    pub inline_checks: u64,
    /// Page requests forwarded along the probable-owner chain.
    pub request_forwards: u64,
    /// Batched envelopes put on the wire by the per-tick message batcher.
    pub coherence_batches: u64,
    /// Coherence messages that travelled inside a batched envelope (each
    /// batch carries at least two).
    pub coherence_batched_messages: u64,
    /// Read fetches served one-sided by the home's delivery interceptor at
    /// message-arrival instant (no handler thread, no dispatcher pass).
    pub one_sided_serves: u64,
    /// One-sided fetch attempts refused because home-side state was
    /// contended (pending acquisition, in-flight diff, doomed frame);
    /// the requester fell back to the classic request path.
    pub one_sided_busy: u64,
    /// Fetch requests that woke a handler thread on the serving node (the
    /// fallback path; zero when every fetch was served one-sided).
    pub fetch_handler_wakes: u64,
}

macro_rules! counter_methods {
    ($($field:ident => $inc:ident),* $(,)?) => {
        impl DsmStats {
            $(
                /// Increment the corresponding counter.
                pub fn $inc(&self) {
                    self.$field.fetch_add(1, Ordering::Relaxed);
                }
            )*
        }
    };
}

counter_methods!(
    read_faults => incr_read_fault,
    write_faults => incr_write_fault,
    page_transfers => incr_page_transfer,
    invalidations => incr_invalidation,
    invalidation_acks => incr_invalidation_ack,
    diffs_sent => incr_diff_sent,
    twins_created => incr_twin_created,
    lock_acquires => incr_lock_acquire,
    lock_releases => incr_lock_release,
    barriers => incr_barrier,
    thread_migrations => incr_thread_migration,
    local_accesses => incr_local_access,
    inline_checks => incr_inline_check,
    request_forwards => incr_request_forward,
    coherence_batches => incr_coherence_batch,
    one_sided_serves => incr_one_sided_serve,
    one_sided_busy => incr_one_sided_busy,
    fetch_handler_wakes => incr_fetch_handler_wake,
);

impl DsmStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        DsmStats::default()
    }

    /// Account `bytes` of page payload for one page transfer.
    pub fn add_page_bytes(&self, bytes: u64) {
        self.page_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account `bytes` of diff payload.
    pub fn add_diff_bytes(&self, bytes: u64) {
        self.diff_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account `n` coherence messages coalesced into one batched envelope.
    pub fn add_coherence_batched_messages(&self, n: u64) {
        self.coherence_batched_messages
            .fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent snapshot of every counter.
    pub fn snapshot(&self) -> DsmStatsSnapshot {
        DsmStatsSnapshot {
            read_faults: self.read_faults.load(Ordering::Relaxed),
            write_faults: self.write_faults.load(Ordering::Relaxed),
            page_transfers: self.page_transfers.load(Ordering::Relaxed),
            page_bytes: self.page_bytes.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            invalidation_acks: self.invalidation_acks.load(Ordering::Relaxed),
            diffs_sent: self.diffs_sent.load(Ordering::Relaxed),
            diff_bytes: self.diff_bytes.load(Ordering::Relaxed),
            twins_created: self.twins_created.load(Ordering::Relaxed),
            lock_acquires: self.lock_acquires.load(Ordering::Relaxed),
            lock_releases: self.lock_releases.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            thread_migrations: self.thread_migrations.load(Ordering::Relaxed),
            local_accesses: self.local_accesses.load(Ordering::Relaxed),
            inline_checks: self.inline_checks.load(Ordering::Relaxed),
            request_forwards: self.request_forwards.load(Ordering::Relaxed),
            coherence_batches: self.coherence_batches.load(Ordering::Relaxed),
            coherence_batched_messages: self.coherence_batched_messages.load(Ordering::Relaxed),
            one_sided_serves: self.one_sided_serves.load(Ordering::Relaxed),
            one_sided_busy: self.one_sided_busy.load(Ordering::Relaxed),
            fetch_handler_wakes: self.fetch_handler_wakes.load(Ordering::Relaxed),
        }
    }
}

impl DsmStatsSnapshot {
    /// Total page faults (read + write).
    pub fn total_faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_independently() {
        let s = DsmStats::new();
        s.incr_read_fault();
        s.incr_read_fault();
        s.incr_write_fault();
        s.incr_page_transfer();
        s.add_page_bytes(4096);
        s.incr_thread_migration();
        s.incr_inline_check();
        let snap = s.snapshot();
        assert_eq!(snap.read_faults, 2);
        assert_eq!(snap.write_faults, 1);
        assert_eq!(snap.total_faults(), 3);
        assert_eq!(snap.page_transfers, 1);
        assert_eq!(snap.page_bytes, 4096);
        assert_eq!(snap.thread_migrations, 1);
        assert_eq!(snap.inline_checks, 1);
        assert_eq!(snap.invalidations, 0);
    }

    #[test]
    fn snapshot_is_plain_data() {
        let s = DsmStats::new();
        s.incr_lock_acquire();
        let a = s.snapshot();
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(b.lock_acquires, 1);
    }

    #[test]
    fn diff_accounting() {
        let s = DsmStats::new();
        s.incr_diff_sent();
        s.add_diff_bytes(120);
        s.incr_twin_created();
        let snap = s.snapshot();
        assert_eq!(snap.diffs_sent, 1);
        assert_eq!(snap.diff_bytes, 120);
        assert_eq!(snap.twins_created, 1);
    }
}
