//! # dsmpm2-core — the DSM-PM2 generic core
//!
//! This crate is the reproduction of the paper's central contribution: a
//! *platform* for designing, implementing and experimenting with
//! multithreaded DSM consistency protocols. It provides the generic layers of
//! Figure 1 of the paper:
//!
//! * the **DSM page manager** ([`PageTable`], [`PageEntry`], [`FrameStore`])
//!   — a distributed page table with generic fields protocols reuse as they
//!   see fit;
//! * the **DSM communication module** ([`DsmRuntime::send_page_request`],
//!   [`DsmRuntime::send_page`], [`DsmRuntime::send_invalidate`],
//!   [`DsmRuntime::send_diff`], ...) built on PM2 RPC;
//! * **access detection** (the typed accessors of [`DsmThreadCtx`], which
//!   fault in software and re-execute the access after the handler runs);
//! * the **DSM protocol library** ([`protolib`]) — thread-safe building
//!   blocks: bring a page copy, migrate the thread to the data, invalidate a
//!   copyset, twins and diffs;
//! * the **DSM protocol policy layer** ([`DsmProtocol`], [`CustomProtocol`],
//!   [`DsmRuntime::register_protocol`], [`DsmRuntime::set_default_protocol`])
//!   — protocols are sets of 8 actions, registered at run time and selectable
//!   per allocated region ([`DsmAttr`]);
//! * **synchronization** ([`LockId`], [`BarrierId`]) with consistency hooks
//!   at acquire/release, as required by the relaxed models.
//!
//! The built-in protocols of Table 2 live in the companion crate
//! `dsmpm2-protocols`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod access;
mod comm;
mod costs;
mod ctx;
mod diff;
mod frames;
mod msg;
pub mod mutant;
mod page;
mod page_table;
mod protocol;
pub mod protolib;
mod runtime;
mod stats;
mod sync;
mod verify;

pub use access::DsmScalar;
pub use comm::{SVC_BARRIER, SVC_DSM, SVC_DSM_FETCH, SVC_LOCK_ACQUIRE, SVC_LOCK_RELEASE};
pub use costs::DsmCosts;
pub use ctx::{DsmThreadCtx, ServerCtx};
pub use diff::{DiffRun, PageDiff};
pub use frames::{Frame, FrameStore};
pub use msg::{DsmMsg, FetchRead, FetchReply, Invalidation, PageRequest, PageTransfer};
pub use page::{
    line_of_offset, line_range, lines_per_page, pages_covering, Access, DsmAddr, LineIx, PageId,
    LINE0, MIN_LINE_SIZE, PAGE_SIZE,
};
pub use page_table::{PageEntry, PageTable, DEFAULT_PAGE_TABLE_SHARDS};
pub use protocol::{CustomProtocol, CustomProtocolBuilder, DsmProtocol, FaultInfo, ProtocolId};
pub use runtime::{DsmAttr, DsmRuntime, HomePolicy, PageMeta};
pub use stats::{DsmStats, DsmStatsSnapshot};
pub use sync::{BarrierId, LockId};
pub use verify::{
    install_global_verify_hooks, ConsistencyModel, MemAccess, SyncEvent, VerifyHooks,
    VerifyHooksGuard,
};

/// Convenience re-exports from the runtime layers below.
pub use dsmpm2_madeleine::{NodeId, Topology};
pub use dsmpm2_pm2::{
    DsmTuning, Engine, LossyConfig, PermutedConfig, Pm2Cluster, Pm2Config, Pm2ThreadState,
    SimDuration, SimTime, ThreadId, TransportBackend, TransportTuning, WireStatsSnapshot,
};
