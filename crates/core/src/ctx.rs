//! Execution contexts handed to protocol actions.
//!
//! Two kinds of code call into the DSM core:
//!
//! * *application threads* (PM2 threads running user code): they fault, take
//!   locks, wait at barriers, and may be migrated. They receive a
//!   [`DsmThreadCtx`], which wraps their `Pm2Context`.
//! * *service threads* (the hidden threads created to process incoming DSM
//!   messages): they run the protocol's server actions. They receive a
//!   [`ServerCtx`].

use dsmpm2_madeleine::NodeId;
use dsmpm2_pm2::Pm2Context;
use dsmpm2_sim::SimHandle;

use crate::runtime::DsmRuntime;

/// Context of an application thread performing DSM operations.
pub struct DsmThreadCtx<'a, 'b> {
    /// The underlying PM2 thread context (location, migration, RPC, clock).
    pub pm2: &'a mut Pm2Context<'b>,
    pub(crate) runtime: DsmRuntime,
}

impl<'a, 'b> DsmThreadCtx<'a, 'b> {
    /// Wrap a PM2 context. Normally created by `DsmRuntime::spawn_dsm_thread`.
    pub fn new(pm2: &'a mut Pm2Context<'b>, runtime: DsmRuntime) -> Self {
        DsmThreadCtx { pm2, runtime }
    }

    /// The DSM runtime this thread operates on.
    pub fn runtime(&self) -> &DsmRuntime {
        &self.runtime
    }

    /// The node this thread currently executes on (changes after migration).
    pub fn node(&self) -> NodeId {
        self.pm2.node()
    }

    /// The simulation handle of this thread.
    pub fn sim(&mut self) -> &mut SimHandle {
        self.pm2.sim
    }

    /// Charge local compute time to this thread.
    pub fn compute(&mut self, d: dsmpm2_sim::SimDuration) {
        self.pm2.compute(d);
    }
}

impl std::fmt::Debug for DsmThreadCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DsmThreadCtx(node={})", self.node())
    }
}

/// Context of a DSM service thread running a protocol server action.
pub struct ServerCtx<'a> {
    /// The simulation handle of the service thread.
    pub sim: &'a mut SimHandle,
    /// The DSM runtime.
    pub runtime: DsmRuntime,
    /// Node on which the server action executes.
    pub local_node: NodeId,
    /// Node the triggering message came from.
    pub from_node: NodeId,
}

impl std::fmt::Debug for ServerCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServerCtx(node={}, from={})",
            self.local_node, self.from_node
        )
    }
}
