//! DSM wire messages.
//!
//! The DSM communication module exchanges a small set of messages, matching
//! the communication routines the paper identifies as common to all
//! page-based protocols: page requests, page transfers, invalidations (plus
//! their acknowledgements) and diffs.

use dsmpm2_madeleine::NodeId;

use crate::diff::PageDiff;
use crate::page::{Access, LineIx, PageId};

/// A request for a copy of (or for ownership of) a page or coherence line.
///
/// At the default whole-page granularity `line` is always line 0 and the
/// message is exactly the historical page request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageRequest {
    /// Requested page.
    pub page: PageId,
    /// Requested coherence line within the page (line 0 at page granularity).
    pub line: LineIx,
    /// `Read` for a read copy, `Write` for write access / ownership.
    pub access: Access,
    /// Node that needs the page (requests may be forwarded, so this is not
    /// necessarily the sender of the message).
    pub requester: NodeId,
}

/// A page (or coherence line) sent to a requester.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageTransfer {
    /// The page being transferred.
    pub page: PageId,
    /// The coherence line being transferred (line 0 at page granularity).
    pub line: LineIx,
    /// Contents: the full page at page granularity, one line otherwise.
    pub data: Vec<u8>,
    /// Rights granted to the receiving node.
    pub grant: Access,
    /// The node to be considered owner after this transfer.
    pub owner: NodeId,
    /// Copyset transferred along with ownership (empty otherwise).
    pub copyset: Vec<NodeId>,
    /// Version of the reference copy.
    pub version: u64,
}

/// An invalidation request for a local copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invalidation {
    /// Page whose local copy must be invalidated.
    pub page: PageId,
    /// Coherence line to invalidate (line 0 at page granularity).
    pub line: LineIx,
    /// Node that triggered the invalidation (new owner or home node).
    pub from: NodeId,
    /// If set, the receiving node should update its probable-owner hint.
    pub new_owner: Option<NodeId>,
    /// True if the sender waits for an acknowledgement.
    pub needs_ack: bool,
    /// Ownership-succession version at the sender (the page version counter,
    /// bumped on every write transfer). Receivers only rewind their
    /// probable-owner hint for strictly newer versions: a late-arriving
    /// invalidation from an old reign must not clobber fresher hints, or the
    /// hint graph can cycle and deadlock the request chain.
    pub version: u64,
}

/// Messages handled by the `dsm` service. Each variant maps to one of the
/// protocol actions (or to a generic-core action for acknowledgements).
#[derive(Debug)]
pub enum DsmMsg {
    /// Routed to `read_server` / `write_server` depending on the access kind.
    Request(PageRequest),
    /// Routed to `receive_page_server`.
    Transfer(PageTransfer),
    /// Routed to `invalidate_server`.
    Invalidate(Invalidation),
    /// Handled by the generic core: decrements the pending-ack count of the
    /// page on the receiving node.
    InvalidateAck {
        /// Acknowledged page.
        page: PageId,
        /// Acknowledged coherence line (line 0 at page granularity).
        line: LineIx,
    },
    /// Routed to the protocol's `diff_server` hook (home-based protocols).
    Diff {
        /// The modifications.
        diff: PageDiff,
        /// Node that produced the diff.
        from: NodeId,
        /// True if the sender waits for an acknowledgement.
        needs_ack: bool,
    },
    /// Handled by the generic core like `InvalidateAck`.
    DiffAck {
        /// Acknowledged page.
        page: PageId,
        /// Acknowledged coherence line (line 0 at page granularity).
        line: LineIx,
    },
    /// Sent to a page's home node when a node finishes installing write
    /// ownership. The home is the serialization point for ownership
    /// acquisitions (Li & Hudak's improved centralized manager): it forwards
    /// one write request at a time and waits for this notice before
    /// forwarding the next, so write requests are never routed at a node
    /// that is still fetching.
    AcquireDone {
        /// The acquired page.
        page: PageId,
        /// The acquired coherence line (line 0 at page granularity).
        line: LineIx,
        /// The new owner.
        owner: NodeId,
        /// Ownership-succession version of the acquisition.
        version: u64,
    },
    /// Several coherence messages (invalidations, diffs, acknowledgements,
    /// ownership notices) addressed to the same node within one virtual-time
    /// tick, coalesced into a single wire envelope by the per-tick batcher.
    /// The receiving node unpacks the batch atomically — every sub-message
    /// becomes visible at the same instant, in send order — and serves each
    /// one in its own handler thread, exactly as if they had arrived
    /// separately. Batches are never nested.
    Batch(Vec<DsmMsg>),
}

/// A one-sided read request, carried by the dedicated `dsm_fetch` RPC service
/// rather than by [`DsmMsg`]: the transport-seam interceptor recognizes it at
/// message-delivery instant on the home node and — when the home-side state
/// is uncontended — answers directly from the installed frame, without waking
/// a handler thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchRead {
    /// Requested page.
    pub page: PageId,
    /// Requested coherence line (line 0 at page granularity).
    pub line: LineIx,
    /// Node performing the read fault.
    pub requester: NodeId,
}

/// Reply to a [`FetchRead`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchReply {
    /// The home served a read-only copy of the line (or whole page at page
    /// granularity) directly from its frame.
    Data {
        /// Line (or page) contents.
        data: Vec<u8>,
        /// Version of the home's reference copy.
        version: u64,
        /// Probable owner to record at the requester.
        owner: NodeId,
    },
    /// The home-side state was contended (pending acquisition, doomed frame,
    /// in-flight coherence activity): retry through the classic two-sided
    /// request path.
    Busy,
}

impl FetchReply {
    /// Payload bytes accounted to the network model for this reply.
    pub fn payload_bytes(&self) -> usize {
        match self {
            FetchReply::Data { data, .. } => data.len(),
            FetchReply::Busy => 0,
        }
    }
}

impl DsmMsg {
    /// Payload bytes accounted to the network model for this message.
    pub fn payload_bytes(&self) -> usize {
        match self {
            DsmMsg::Request(_) => 0,
            DsmMsg::Transfer(t) => t.data.len(),
            DsmMsg::Invalidate(_) => 0,
            DsmMsg::InvalidateAck { .. } => 0,
            DsmMsg::Diff { diff, .. } => diff.payload_bytes(),
            DsmMsg::DiffAck { .. } => 0,
            DsmMsg::AcquireDone { .. } => 0,
            DsmMsg::Batch(msgs) => msgs.iter().map(DsmMsg::payload_bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{LINE0, PAGE_SIZE};

    #[test]
    fn payload_accounting() {
        let req = DsmMsg::Request(PageRequest {
            page: PageId(1),
            line: LINE0,
            access: Access::Read,
            requester: NodeId(0),
        });
        assert_eq!(req.payload_bytes(), 0);

        let transfer = DsmMsg::Transfer(PageTransfer {
            page: PageId(1),
            line: LINE0,
            data: vec![0; PAGE_SIZE],
            grant: Access::Read,
            owner: NodeId(0),
            copyset: vec![],
            version: 1,
        });
        assert_eq!(transfer.payload_bytes(), PAGE_SIZE);

        let mut cur = vec![0u8; PAGE_SIZE];
        cur[10] = 1;
        let diff = PageDiff::compute(PageId(1), &vec![0u8; PAGE_SIZE], &cur);
        let bytes = diff.payload_bytes();
        let msg = DsmMsg::Diff {
            diff,
            from: NodeId(2),
            needs_ack: true,
        };
        assert_eq!(msg.payload_bytes(), bytes);
        assert_eq!(
            DsmMsg::InvalidateAck {
                page: PageId(3),
                line: LINE0
            }
            .payload_bytes(),
            0
        );
        assert_eq!(
            DsmMsg::DiffAck {
                page: PageId(3),
                line: LINE0
            }
            .payload_bytes(),
            0
        );
        let batch = DsmMsg::Batch(vec![
            msg,
            DsmMsg::InvalidateAck {
                page: PageId(3),
                line: LINE0,
            },
            DsmMsg::AcquireDone {
                page: PageId(4),
                line: LINE0,
                owner: NodeId(1),
                version: 2,
            },
        ]);
        assert_eq!(batch.payload_bytes(), bytes, "batch sums its sub-messages");
    }

    #[test]
    fn fetch_reply_payload_accounting() {
        let data = FetchReply::Data {
            data: vec![0; 256],
            version: 3,
            owner: NodeId(1),
        };
        assert_eq!(data.payload_bytes(), 256);
        assert_eq!(FetchReply::Busy.payload_bytes(), 0);
    }
}
