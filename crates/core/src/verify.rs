//! Observation seam for the `dsmpm2-verify` checker.
//!
//! The generic core reports three kinds of events to an optionally installed
//! [`VerifyHooks`] observer: application-level shared-memory accesses (from
//! the typed accessors of [`crate::DsmThreadCtx`]), synchronization events
//! (lock acquire/release and barrier enter/exit), and ownership-succession
//! version updates at a page's home manager. The verify crate builds a
//! happens-before race detector and a protocol invariant oracle on top of
//! this stream.
//!
//! The seam is designed to be invisible when unused: a runtime built with no
//! hooks installed pays one `Option` check per reported event and nothing
//! else, and an installed observer must never charge virtual time or mutate
//! DSM state — instrumented runs are bit-identical (memory *and* virtual
//! time) to uninstrumented ones, which `tests/verify_conformance.rs`
//! enforces.

use std::sync::{Arc, Mutex};

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::{SimTime, ThreadId};

use crate::page::{DsmAddr, PageId};
use crate::runtime::DsmRuntime;
use crate::sync::{BarrierId, LockId};

/// The consistency model a protocol promises to application code.
///
/// The paper's Table 2 classifies every built-in protocol by its model; the
/// verify layer uses the declaration to decide which unsynchronized sharing
/// patterns are findings. Under [`ConsistencyModel::Sequential`] every access
/// is globally serialized by the protocol itself, so a data race is benign by
/// definition; under the relaxed models a pair of conflicting accesses not
/// ordered by synchronization reads or clobbers stale data and is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential consistency: one global serialization of all accesses.
    Sequential,
    /// Release consistency: writes propagate at release/acquire pairs.
    Release,
    /// The Java memory model variant of release consistency (monitor
    /// enter/exit, on-the-fly recorded writes).
    Java,
    /// Entry consistency: data bound to a lock is made consistent only by
    /// acquiring exactly that lock.
    Entry,
}

impl ConsistencyModel {
    /// True if the model serializes every access on its own, making
    /// unsynchronized conflicting accesses benign (no race finding).
    pub fn tolerates_unsynchronized_sharing(self) -> bool {
        matches!(self, ConsistencyModel::Sequential)
    }
}

/// One application-level access to shared memory, as observed by the typed
/// accessors after access detection has granted the required rights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// The accessing thread's local virtual time.
    pub time: SimTime,
    /// Node the access executed on (after any migration).
    pub node: NodeId,
    /// Simulated thread performing the access.
    pub thread: ThreadId,
    /// Page containing the accessed range.
    pub page: PageId,
    /// First byte of the accessed range.
    pub addr: DsmAddr,
    /// Length of the accessed range in bytes.
    pub len: usize,
    /// True for writes, false for reads.
    pub is_write: bool,
}

/// One synchronization event of an application thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncEvent {
    /// The thread acquired a DSM lock (the lock is now held).
    LockAcquired {
        /// The thread's local virtual time.
        time: SimTime,
        /// Node the thread runs on.
        node: NodeId,
        /// The acquiring thread.
        thread: ThreadId,
        /// The acquired lock.
        lock: LockId,
    },
    /// The thread is about to release a DSM lock (consistency actions and
    /// the release message follow).
    LockReleasing {
        /// The thread's local virtual time.
        time: SimTime,
        /// Node the thread runs on.
        node: NodeId,
        /// The releasing thread.
        thread: ThreadId,
        /// The released lock.
        lock: LockId,
    },
    /// The thread arrived at a DSM barrier (release half).
    BarrierEnter {
        /// The thread's local virtual time.
        time: SimTime,
        /// Node the thread runs on.
        node: NodeId,
        /// The arriving thread.
        thread: ThreadId,
        /// The barrier.
        barrier: BarrierId,
    },
    /// The thread passed a DSM barrier (acquire half; every participant has
    /// arrived).
    BarrierExit {
        /// The thread's local virtual time.
        time: SimTime,
        /// Node the thread runs on.
        node: NodeId,
        /// The exiting thread.
        thread: ThreadId,
        /// The barrier.
        barrier: BarrierId,
    },
}

impl SyncEvent {
    /// The event's virtual time.
    pub fn time(self) -> SimTime {
        match self {
            SyncEvent::LockAcquired { time, .. }
            | SyncEvent::LockReleasing { time, .. }
            | SyncEvent::BarrierEnter { time, .. }
            | SyncEvent::BarrierExit { time, .. } => time,
        }
    }

    /// The node the event happened on.
    pub fn node(self) -> NodeId {
        match self {
            SyncEvent::LockAcquired { node, .. }
            | SyncEvent::LockReleasing { node, .. }
            | SyncEvent::BarrierEnter { node, .. }
            | SyncEvent::BarrierExit { node, .. } => node,
        }
    }

    /// The thread the event belongs to.
    pub fn thread(self) -> ThreadId {
        match self {
            SyncEvent::LockAcquired { thread, .. }
            | SyncEvent::LockReleasing { thread, .. }
            | SyncEvent::BarrierEnter { thread, .. }
            | SyncEvent::BarrierExit { thread, .. } => thread,
        }
    }
}

/// Observer of the generic core's verification event stream.
///
/// Implementations receive the runtime by reference so per-step invariant
/// checkers can probe page tables and frame stores at the instant of the
/// event; they must not hold on to a strong `DsmRuntime` clone (that would
/// cycle through the runtime's own `Arc`) and must never charge virtual time
/// or mutate DSM state.
pub trait VerifyHooks: Send + Sync {
    /// An application thread completed a shared-memory access.
    fn mem_access(&self, rt: &DsmRuntime, access: MemAccess);

    /// An application thread crossed a synchronization point.
    fn sync_event(&self, rt: &DsmRuntime, event: SyncEvent);

    /// An `AcquireDone` notice updated (or was gated away from updating) the
    /// home manager's ownership-succession version for `page`: `old` is the
    /// version before the notice was processed, `new` the version after.
    /// `new < old` means the succession record was rewound — a protocol bug.
    fn owner_version_update(
        &self,
        rt: &DsmRuntime,
        time: SimTime,
        node: NodeId,
        page: PageId,
        old: u64,
        new: u64,
    );
}

static GLOBAL_HOOKS: Mutex<Option<Arc<dyn VerifyHooks>>> = Mutex::new(None);

/// Install `hooks` as the process-global observer captured by every
/// [`DsmRuntime`] constructed while the returned guard is alive.
///
/// The global is consulted once, at runtime construction; runtimes built
/// before the install or after the guard drops are unaffected. This is how
/// the verify crate instruments workloads that build their own runtimes
/// internally. Installations must not overlap — tests that use this guard
/// serialize on their own mutex.
#[must_use = "the hooks are uninstalled when the guard drops"]
pub fn install_global_verify_hooks(hooks: Arc<dyn VerifyHooks>) -> VerifyHooksGuard {
    let mut slot = GLOBAL_HOOKS.lock().expect("verify hooks lock");
    assert!(
        slot.is_none(),
        "global verify hooks are already installed; installations must not overlap"
    );
    *slot = Some(hooks);
    VerifyHooksGuard { _private: () }
}

pub(crate) fn global_verify_hooks() -> Option<Arc<dyn VerifyHooks>> {
    GLOBAL_HOOKS.lock().expect("verify hooks lock").clone()
}

/// Uninstalls the process-global verify hooks when dropped. Returned by
/// [`install_global_verify_hooks`].
pub struct VerifyHooksGuard {
    _private: (),
}

impl Drop for VerifyHooksGuard {
    fn drop(&mut self) {
        *GLOBAL_HOOKS.lock().expect("verify hooks lock") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_model_classifies_benign_sharing() {
        assert!(ConsistencyModel::Sequential.tolerates_unsynchronized_sharing());
        assert!(!ConsistencyModel::Release.tolerates_unsynchronized_sharing());
        assert!(!ConsistencyModel::Java.tolerates_unsynchronized_sharing());
        assert!(!ConsistencyModel::Entry.tolerates_unsynchronized_sharing());
    }

    #[test]
    fn sync_event_accessors_cover_every_variant() {
        let t = SimTime::from_nanos(5);
        let events = [
            SyncEvent::LockAcquired {
                time: t,
                node: NodeId(1),
                thread: ThreadId::from_u64(3),
                lock: LockId(7),
            },
            SyncEvent::LockReleasing {
                time: t,
                node: NodeId(1),
                thread: ThreadId::from_u64(3),
                lock: LockId(7),
            },
            SyncEvent::BarrierEnter {
                time: t,
                node: NodeId(1),
                thread: ThreadId::from_u64(3),
                barrier: BarrierId(9),
            },
            SyncEvent::BarrierExit {
                time: t,
                node: NodeId(1),
                thread: ThreadId::from_u64(3),
                barrier: BarrierId(9),
            },
        ];
        for e in events {
            assert_eq!(e.time(), t);
            assert_eq!(e.node(), NodeId(1));
            assert_eq!(e.thread(), ThreadId::from_u64(3));
        }
    }
}
