//! Access detection: the software MMU.
//!
//! The original DSM-PM2 detects accesses to shared data with page faults
//! (SIGSEGV + mprotect). In this reproduction every DSM access goes through
//! the typed accessors below, which consult the calling thread's node page
//! table: if the local rights are insufficient the access *faults*, the
//! calibrated fault-detection cost (11 µs) is charged, the protocol's fault
//! handler runs, and the access is then repeated — exactly the structure of a
//! signal-based fault path, without the `unsafe` signal handling. The paper
//! itself supports bypassing page faults with explicit locality checks (the
//! `java_ic` protocol); [`DsmThreadCtx::inline_check`] models that path.

use crate::ctx::DsmThreadCtx;
use crate::page::{Access, DsmAddr, PAGE_SIZE};
use crate::protocol::FaultInfo;
use crate::runtime::DsmRuntime;

/// Scalar types that can be stored in DSM memory.
pub trait DsmScalar: Copy + Sized + Send + 'static {
    /// Size of the value in bytes.
    const SIZE: usize;
    /// Serialize into little-endian bytes.
    fn store_le(self, out: &mut [u8]);
    /// Deserialize from little-endian bytes.
    fn load_le(buf: &[u8]) -> Self;
}

macro_rules! impl_dsm_scalar {
    ($($t:ty),* $(,)?) => {
        $(
            impl DsmScalar for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                fn store_le(self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }
                fn load_le(buf: &[u8]) -> Self {
                    <$t>::from_le_bytes(buf.try_into().expect("slice of exact size"))
                }
            }
        )*
    };
}

impl_dsm_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

fn check_within_page(addr: DsmAddr, size: usize) {
    assert!(
        addr.offset() + size <= PAGE_SIZE,
        "DSM access at {addr} of {size} bytes crosses a page boundary; \
         lay shared objects out so that scalars do not straddle pages"
    );
}

impl DsmThreadCtx<'_, '_> {
    /// Make sure the calling thread's node holds `needed` rights on the page
    /// containing `addr`, taking page faults (and running the protocol's
    /// fault handlers) as long as it does not. This is the access-detection
    /// loop: "on exiting the fault handler the thread repeats the access".
    pub fn ensure_access(&mut self, addr: DsmAddr, needed: Access) {
        self.ensure_access_sized(addr, 1, needed);
    }

    /// [`DsmThreadCtx::ensure_access`] for an access of `size` bytes: also
    /// checks that the access does not straddle a coherence-line boundary on
    /// sub-page-granularity regions (rights are per line, so a straddling
    /// access would only be covered on its first line).
    pub fn ensure_access_sized(&mut self, addr: DsmAddr, size: usize, needed: Access) {
        let page = addr.page();
        loop {
            let node = self.node();
            let entry = self
                .runtime()
                .page_table(node)
                .try_get_for_offset(page, addr.offset())
                .unwrap_or_else(|| {
                    panic!("access at {addr} is outside every DSM allocation (node {node})")
                });
            if entry.line_size < PAGE_SIZE {
                let (line_start, line_len) = entry.line_span();
                assert!(
                    addr.offset() + size <= line_start + line_len,
                    "DSM access at {addr} of {size} bytes crosses a coherence-line boundary \
                     (granularity {}); lay shared objects out so that scalars do not straddle lines",
                    entry.line_size
                );
            }
            if entry.access.permits(needed) {
                return;
            }
            // Page fault: charge the detection cost and run the handler.
            let rt = self.runtime().clone();
            rt.cluster()
                .monitor()
                .record("dsm_page_fault", rt.costs().page_fault());
            self.pm2.sim.charge(rt.costs().page_fault());
            match needed {
                Access::Write => rt.stats().incr_write_fault(),
                _ => rt.stats().incr_read_fault(),
            }
            let protocol = rt.protocol(entry.protocol);
            let fault = FaultInfo {
                addr,
                page,
                line: entry.line,
                access: needed,
            };
            if needed == Access::Write {
                protocol.write_fault_handler(self, fault);
            } else {
                protocol.read_fault_handler(self, fault);
            }
            // Loop: repeat the access (possibly from a different node if the
            // handler migrated the thread).
        }
    }

    /// Charge the cost of one explicit inline locality check and report
    /// whether the page containing `addr` is present locally with `needed`
    /// rights (the `java_ic` / compiler-target access path).
    pub fn inline_check(&mut self, addr: DsmAddr, needed: Access) -> bool {
        let rt = self.runtime().clone();
        rt.stats().incr_inline_check();
        self.pm2.sim.charge(rt.costs().inline_check());
        rt.page_table(self.node())
            .access(addr.page())
            .permits(needed)
    }

    /// Read a scalar from shared memory (faulting as needed).
    pub fn read<T: DsmScalar>(&mut self, addr: DsmAddr) -> T {
        check_within_page(addr, T::SIZE);
        self.ensure_access_sized(addr, T::SIZE, Access::Read);
        self.read_local(addr)
    }

    /// Write a scalar to shared memory (faulting as needed). When the page's
    /// protocol records writes on the fly ([`crate::DsmProtocol::records_writes`],
    /// the Java protocols), the modified range is recorded exactly as
    /// [`DsmThreadCtx::write_recorded`] would — plain writes stay portable
    /// across every registered protocol.
    pub fn write<T: DsmScalar>(&mut self, addr: DsmAddr, value: T) {
        check_within_page(addr, T::SIZE);
        self.ensure_access_sized(addr, T::SIZE, Access::Write);
        let record = self.page_records_writes(addr);
        self.write_local(addr, value, record);
    }

    /// Whether the protocol of the page holding `addr` records writes on the
    /// fly. Reads the protocol id from the local (sharded) page table rather
    /// than the cluster-wide directory, so concurrent writers on different
    /// pages do not serialize on one global lock.
    fn page_records_writes(&mut self, addr: DsmAddr) -> bool {
        let rt = self.runtime().clone();
        let protocol = rt.page_table(self.node()).read(addr.page(), |e| e.protocol);
        rt.protocol(protocol).records_writes()
    }

    /// Write a scalar and record the modified range with field granularity
    /// (the on-the-fly diff recording used by the Java protocols' `put`).
    pub fn write_recorded<T: DsmScalar>(&mut self, addr: DsmAddr, value: T) {
        check_within_page(addr, T::SIZE);
        self.ensure_access_sized(addr, T::SIZE, Access::Write);
        self.write_local(addr, value, true);
    }

    /// Read `buf.len()` bytes from shared memory (must not cross a page).
    pub fn read_bytes(&mut self, addr: DsmAddr, buf: &mut [u8]) {
        check_within_page(addr, buf.len());
        self.ensure_access_sized(addr, buf.len(), Access::Read);
        let rt = self.runtime().clone();
        let node = self.node();
        rt.stats().incr_local_access();
        self.pm2.sim.charge(rt.costs().local_access());
        rt.frames(node).read(addr.page(), addr.offset(), buf);
        self.report_access(&rt, addr, buf.len(), false);
    }

    /// Write `bytes` to shared memory (must not cross a page). Recorded with
    /// field granularity when the page's protocol records writes on the fly
    /// (see [`DsmThreadCtx::write`]).
    pub fn write_bytes(&mut self, addr: DsmAddr, bytes: &[u8]) {
        check_within_page(addr, bytes.len());
        self.ensure_access_sized(addr, bytes.len(), Access::Write);
        let record = self.page_records_writes(addr);
        let rt = self.runtime().clone();
        let node = self.node();
        rt.stats().incr_local_access();
        self.pm2.sim.charge(rt.costs().local_access());
        if record {
            rt.frames(node)
                .write_recorded(addr.page(), addr.offset(), bytes);
        } else {
            rt.frames(node).write(addr.page(), addr.offset(), bytes);
        }
        rt.page_table(node)
            .mark_modified_at_offset(addr.page(), addr.offset());
        self.report_access(&rt, addr, bytes.len(), true);
    }

    /// Read a scalar assuming rights are already held (no fault detection).
    /// Used by protocol code and by the inline-check access path after a
    /// successful check.
    pub fn read_local<T: DsmScalar>(&mut self, addr: DsmAddr) -> T {
        let rt = self.runtime().clone();
        let node = self.node();
        rt.stats().incr_local_access();
        self.pm2.sim.charge(rt.costs().local_access());
        let mut buf = vec![0u8; T::SIZE];
        rt.frames(node).read(addr.page(), addr.offset(), &mut buf);
        self.report_access(&rt, addr, T::SIZE, false);
        T::load_le(&buf)
    }

    /// Write a scalar assuming rights are already held.
    pub fn write_local<T: DsmScalar>(&mut self, addr: DsmAddr, value: T, record: bool) {
        let rt = self.runtime().clone();
        let node = self.node();
        rt.stats().incr_local_access();
        self.pm2.sim.charge(rt.costs().local_access());
        let mut buf = vec![0u8; T::SIZE];
        value.store_le(&mut buf);
        if record {
            rt.frames(node)
                .write_recorded(addr.page(), addr.offset(), &buf);
        } else {
            rt.frames(node).write(addr.page(), addr.offset(), &buf);
        }
        rt.page_table(node)
            .mark_modified_at_offset(addr.page(), addr.offset());
        self.report_access(&rt, addr, T::SIZE, true);
    }

    /// Report an application-level access to the verify observer, if one is
    /// installed. The observer must charge no virtual time (see
    /// [`crate::VerifyHooks`]), so instrumented runs stay bit-identical.
    fn report_access(&mut self, rt: &DsmRuntime, addr: DsmAddr, len: usize, is_write: bool) {
        if let Some(hooks) = rt.hooks() {
            let access = crate::verify::MemAccess {
                time: self.pm2.sim.now(),
                node: self.node(),
                thread: self.pm2.sim.id(),
                page: addr.page(),
                addr,
                len,
                is_write,
            };
            hooks.mem_access(rt, access);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_through_le_bytes() {
        let mut buf = [0u8; 8];
        1234567890123u64.store_le(&mut buf);
        assert_eq!(u64::load_le(&buf), 1234567890123);
        let mut buf = [0u8; 4];
        (-7i32).store_le(&mut buf);
        assert_eq!(i32::load_le(&buf), -7);
        let mut buf = [0u8; 8];
        3.25f64.store_le(&mut buf);
        assert_eq!(f64::load_le(&buf), 3.25);
        assert_eq!(<u8 as DsmScalar>::SIZE, 1);
        assert_eq!(<f64 as DsmScalar>::SIZE, 8);
    }

    #[test]
    #[should_panic(expected = "crosses a page boundary")]
    fn cross_page_access_is_rejected() {
        check_within_page(DsmAddr(PAGE_SIZE as u64 - 2), 4);
    }

    #[test]
    fn within_page_access_is_accepted() {
        check_within_page(DsmAddr(PAGE_SIZE as u64 - 4), 4);
        check_within_page(DsmAddr(0), PAGE_SIZE);
    }
}
