//! DSM software-path cost constants.
//!
//! These constants model the parts of the fault path that are *not*
//! communication: catching the page-fault signal and extracting fault
//! information, updating the distributed page table, installing the received
//! page and setting access rights. They are calibrated from the paper's
//! Tables 3 and 4:
//!
//! * page-fault detection: 11 µs on every platform (it is a purely local,
//!   CPU-bound cost on the 450 MHz PII nodes);
//! * protocol overhead of the page-transfer policy: 26 µs (request processing
//!   on the owner plus page installation on the requester);
//! * protocol overhead of the thread-migration policy: ~1 µs (a single call
//!   into the runtime's migration primitive).

use dsmpm2_sim::SimDuration;

/// Cost constants of the DSM generic core and protocol library.
#[derive(Clone, Debug, PartialEq)]
pub struct DsmCosts {
    /// Catching a page fault and extracting fault information, in µs.
    pub page_fault_us: f64,
    /// Protocol overhead of a page-transfer fault: request processing on the
    /// owner side plus page installation and page-table update on the
    /// requester side, in µs (split evenly between the two sides).
    pub page_protocol_overhead_us: f64,
    /// Protocol overhead of a thread-migration fault (the handler merely
    /// calls the PM2 migration primitive), in µs.
    pub migration_protocol_overhead_us: f64,
    /// Cost of one access to data already available locally with sufficient
    /// rights (the common fast path), in µs.
    pub local_access_us: f64,
    /// Cost of one explicit inline locality check (the `java_ic` get/put
    /// path), in µs.
    pub inline_check_us: f64,
    /// Cost of creating a twin (copying a 4 kB page locally), in µs.
    pub twin_create_us: f64,
    /// Cost of scanning one page to compute a diff, in µs.
    pub diff_compute_us: f64,
    /// Cost of applying a diff at the home node, per modified byte, in µs.
    pub diff_apply_per_byte_us: f64,
    /// Page-table bookkeeping when updating an entry (owner change, copyset
    /// update, access-right change), in µs.
    pub table_update_us: f64,
}

impl Default for DsmCosts {
    fn default() -> Self {
        DsmCosts {
            page_fault_us: 11.0,
            page_protocol_overhead_us: 26.0,
            migration_protocol_overhead_us: 1.0,
            local_access_us: 0.04,
            inline_check_us: 0.25,
            twin_create_us: 6.0,
            diff_compute_us: 9.0,
            diff_apply_per_byte_us: 0.002,
            table_update_us: 0.5,
        }
    }
}

impl DsmCosts {
    /// Page-fault detection cost.
    pub fn page_fault(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.page_fault_us)
    }

    /// Requester-side half of the page-transfer protocol overhead.
    pub fn install_overhead(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.page_protocol_overhead_us / 2.0)
    }

    /// Owner-side half of the page-transfer protocol overhead.
    pub fn serve_overhead(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.page_protocol_overhead_us / 2.0)
    }

    /// Thread-migration protocol overhead.
    pub fn migration_overhead(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.migration_protocol_overhead_us)
    }

    /// Fast-path local access cost.
    pub fn local_access(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.local_access_us)
    }

    /// Inline locality check cost.
    pub fn inline_check(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.inline_check_us)
    }

    /// Twin creation cost.
    pub fn twin_create(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.twin_create_us)
    }

    /// Diff computation cost (per page scanned).
    pub fn diff_compute(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.diff_compute_us)
    }

    /// Diff application cost for `bytes` modified bytes.
    pub fn diff_apply(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros_f64(self.diff_apply_per_byte_us * bytes as f64)
    }

    /// Page-table update cost.
    pub fn table_update(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.table_update_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_constants() {
        let c = DsmCosts::default();
        assert_eq!(c.page_fault().as_micros_f64(), 11.0);
        assert_eq!(
            (c.install_overhead() + c.serve_overhead()).as_micros_f64(),
            26.0
        );
        assert_eq!(c.migration_overhead().as_micros_f64(), 1.0);
    }

    #[test]
    fn fast_path_is_orders_of_magnitude_cheaper_than_faults() {
        let c = DsmCosts::default();
        assert!(c.local_access().as_nanos() * 100 < c.page_fault().as_nanos());
        assert!(c.inline_check() > c.local_access());
    }

    #[test]
    fn diff_costs_scale_with_size() {
        let c = DsmCosts::default();
        assert!(c.diff_apply(4096) > c.diff_apply(4));
        assert_eq!(c.diff_apply(0), SimDuration::ZERO);
    }
}
