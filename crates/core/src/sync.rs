//! DSM synchronization objects: locks and barriers.
//!
//! Weak consistency models (release, entry, scope, Java) require consistency
//! actions to be taken at synchronization points, so the generic core
//! provides locks and barriers whose acquire/release events are hooked to the
//! selected protocol's `lock_acquire` / `lock_release` actions. A barrier is
//! treated as a release followed (after everyone arrived) by an acquire.
//!
//! Each lock and barrier has a *manager node*; acquiring is a blocking RPC to
//! that node whose handler thread waits until the object is available, which
//! naturally serializes contending requesters in virtual time.

use std::fmt;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::WaitSet;

/// Identifier of a DSM lock. Values with the high bit set designate the
/// implicit lock associated with a barrier (so release-consistency protocols
/// can flush at barriers through their ordinary lock hooks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u64);

/// Identifier of a DSM barrier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BarrierId(pub u64);

const BARRIER_BIT: u64 = 1 << 63;

impl LockId {
    /// The synthetic lock identity used when barrier `b` triggers the
    /// protocol's lock hooks.
    pub fn for_barrier(b: BarrierId) -> LockId {
        LockId(b.0 | BARRIER_BIT)
    }

    /// True if this identity denotes a barrier-induced synchronization point.
    pub fn is_barrier(self) -> bool {
        self.0 & BARRIER_BIT != 0
    }
}

impl fmt::Debug for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_barrier() {
            write!(f, "lock[barrier {}]", self.0 & !BARRIER_BIT)
        } else {
            write!(f, "lock{}", self.0)
        }
    }
}

impl fmt::Debug for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "barrier{}", self.0)
    }
}

/// Manager-side state of one DSM lock.
pub(crate) struct LockState {
    /// Node managing this lock.
    pub manager: NodeId,
    /// (held?, current holder node)
    pub held: Mutex<(bool, Option<NodeId>)>,
    /// Handler threads waiting for the lock to be released.
    pub waiters: WaitSet,
}

impl LockState {
    pub fn new(manager: NodeId) -> Self {
        LockState {
            manager,
            held: Mutex::new((false, None)),
            waiters: WaitSet::new(),
        }
    }
}

/// Manager-side state of one DSM barrier.
pub(crate) struct BarrierState {
    /// Node managing this barrier.
    pub manager: NodeId,
    /// Number of participants.
    pub parties: usize,
    /// (threads arrived in the current episode, episode number)
    pub round: Mutex<(usize, u64)>,
    /// Handler threads waiting for the episode to complete.
    pub waiters: WaitSet,
}

impl BarrierState {
    pub fn new(manager: NodeId, parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        BarrierState {
            manager,
            parties,
            round: Mutex::new((0, 0)),
            waiters: WaitSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_lock_ids_are_distinguishable() {
        let l = LockId(5);
        let b = LockId::for_barrier(BarrierId(5));
        assert!(!l.is_barrier());
        assert!(b.is_barrier());
        assert_ne!(l, b);
        assert_eq!(format!("{l:?}"), "lock5");
        assert!(format!("{b:?}").contains("barrier 5"));
        assert_eq!(format!("{:?}", BarrierId(2)), "barrier2");
    }

    #[test]
    fn lock_state_starts_free() {
        let s = LockState::new(NodeId(0));
        assert_eq!(*s.held.lock(), (false, None));
        assert_eq!(s.manager, NodeId(0));
        assert!(s.waiters.is_empty());
    }

    #[test]
    fn barrier_state_starts_at_round_zero() {
        let s = BarrierState::new(NodeId(1), 4);
        assert_eq!(*s.round.lock(), (0, 0));
        assert_eq!(s.parties, 4);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_party_barrier_is_rejected() {
        BarrierState::new(NodeId(0), 0);
    }
}
