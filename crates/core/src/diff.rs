//! Twins and diffs.
//!
//! Multiple-writer protocols (the paper's `hbrc_mw`, `java_ic`, `java_pf`)
//! let several nodes modify private copies of the same page concurrently and
//! reconcile at release time by shipping *diffs* to the page's home node.
//! A diff is computed either against a *twin* (a pristine copy of the page
//! saved at the first write fault, the "classical twinning technique"), or
//! recorded on the fly with word/field granularity when accesses go through
//! explicit `put` primitives (the Hyperion path).

use crate::page::{LineIx, PageId, LINE0, PAGE_SIZE};

/// One modified run of bytes within a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page.
    pub offset: usize,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// The set of modifications made to one page since its twin was created (or
/// since modification recording started).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDiff {
    /// Page the diff applies to.
    pub page: PageId,
    /// Coherence line the diff applies to (line 0 at page granularity; run
    /// offsets stay page-absolute either way, so `apply` is line-agnostic).
    pub line: LineIx,
    /// Modified runs, sorted by offset and non-overlapping.
    pub runs: Vec<DiffRun>,
}

impl PageDiff {
    /// An empty diff for `page`.
    pub fn empty(page: PageId) -> Self {
        PageDiff {
            page,
            line: LINE0,
            runs: Vec::new(),
        }
    }

    /// True if nothing was modified.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of payload bytes carried by the diff (used for network costing).
    pub fn payload_bytes(&self) -> usize {
        // Each run ships its bytes plus a small (offset, length) header.
        self.runs.iter().map(|r| r.bytes.len() + 8).sum()
    }

    /// Compute the diff between a pristine `twin` and the `current` contents
    /// of a page. Adjacent modified bytes are coalesced into runs.
    pub fn compute(page: PageId, twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be a full page");
        assert_eq!(current.len(), PAGE_SIZE, "page copy must be a full page");
        let mut runs = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if twin[i] != current[i] {
                let start = i;
                while i < PAGE_SIZE && twin[i] != current[i] {
                    i += 1;
                }
                runs.push(DiffRun {
                    offset: start,
                    bytes: current[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        PageDiff {
            page,
            line: LINE0,
            runs,
        }
    }

    /// Compute a line-scoped diff between the pristine `twin_line` and the
    /// `current_line` contents of one coherence line starting at byte
    /// `line_offset` of the page. Run offsets are page-absolute, so the
    /// resulting diff applies to a full-page reference copy exactly like a
    /// page-granularity diff.
    pub fn compute_range(
        page: PageId,
        line: LineIx,
        line_offset: usize,
        twin_line: &[u8],
        current_line: &[u8],
    ) -> Self {
        assert_eq!(
            twin_line.len(),
            current_line.len(),
            "line twin and line copy must have the same length"
        );
        assert!(
            line_offset + twin_line.len() <= PAGE_SIZE,
            "line escapes the page"
        );
        let len = twin_line.len();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < len {
            if twin_line[i] != current_line[i] {
                let start = i;
                while i < len && twin_line[i] != current_line[i] {
                    i += 1;
                }
                runs.push(DiffRun {
                    offset: line_offset + start,
                    bytes: current_line[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        PageDiff { page, line, runs }
    }

    /// Build a diff from explicitly recorded modified ranges (the
    /// on-the-fly recording used by the Java protocols), reading the new
    /// bytes from `current`.
    pub fn from_recorded_ranges(page: PageId, ranges: &[(usize, usize)], current: &[u8]) -> Self {
        assert_eq!(current.len(), PAGE_SIZE);
        let mut sorted: Vec<(usize, usize)> = ranges.to_vec();
        sorted.sort_unstable();
        // Merge overlapping or adjacent ranges.
        let mut merged: Vec<(usize, usize)> = Vec::new();
        for (start, len) in sorted {
            assert!(start + len <= PAGE_SIZE, "recorded range escapes the page");
            if let Some(last) = merged.last_mut() {
                if start <= last.0 + last.1 {
                    let end = (start + len).max(last.0 + last.1);
                    last.1 = end - last.0;
                    continue;
                }
            }
            merged.push((start, len));
        }
        let runs = merged
            .into_iter()
            .filter(|&(_, len)| len > 0)
            .map(|(offset, len)| DiffRun {
                offset,
                bytes: current[offset..offset + len].to_vec(),
            })
            .collect();
        PageDiff {
            page,
            line: LINE0,
            runs,
        }
    }

    /// Apply the diff to `target` (the home node's reference copy).
    pub fn apply(&self, target: &mut [u8]) {
        assert_eq!(target.len(), PAGE_SIZE, "target must be a full page");
        for run in &self.runs {
            target[run.offset..run.offset + run.bytes.len()].copy_from_slice(&run.bytes);
        }
    }

    /// Number of modified bytes.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn identical_pages_produce_empty_diff() {
        let twin = page_of(7);
        let diff = PageDiff::compute(PageId(0), &twin, &twin);
        assert!(diff.is_empty());
        assert_eq!(diff.modified_bytes(), 0);
        assert_eq!(diff.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change_is_one_small_run() {
        let twin = page_of(0);
        let mut cur = twin.clone();
        cur[100..104].copy_from_slice(&[1, 2, 3, 4]);
        let diff = PageDiff::compute(PageId(1), &twin, &cur);
        assert_eq!(diff.runs.len(), 1);
        assert_eq!(diff.runs[0].offset, 100);
        assert_eq!(diff.runs[0].bytes, vec![1, 2, 3, 4]);
        assert_eq!(diff.modified_bytes(), 4);
        assert!(diff.payload_bytes() < 64);
    }

    #[test]
    fn apply_reproduces_the_modified_page() {
        let twin = page_of(0xAA);
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[500..600].fill(2);
        cur[PAGE_SIZE - 1] = 3;
        let diff = PageDiff::compute(PageId(2), &twin, &cur);
        let mut home = twin.clone();
        diff.apply(&mut home);
        assert_eq!(home, cur);
    }

    #[test]
    fn recorded_ranges_merge_and_apply() {
        let mut cur = page_of(0);
        cur[10..20].fill(5);
        cur[20..30].fill(6);
        cur[100..104].fill(7);
        let diff = PageDiff::from_recorded_ranges(PageId(3), &[(20, 10), (10, 10), (100, 4)], &cur);
        assert_eq!(diff.runs.len(), 2, "adjacent ranges merge");
        let mut home = page_of(0);
        diff.apply(&mut home);
        assert_eq!(home[10..30], cur[10..30]);
        assert_eq!(home[100..104], cur[100..104]);
        assert_eq!(home[0], 0);
    }

    #[test]
    #[should_panic(expected = "escapes the page")]
    fn recorded_range_outside_page_panics() {
        let cur = page_of(0);
        let _ = PageDiff::from_recorded_ranges(PageId(0), &[(PAGE_SIZE - 2, 4)], &cur);
    }

    #[test]
    fn line_scoped_diff_uses_page_absolute_offsets() {
        use crate::page::LineIx;
        let line_size = 256;
        let twin_line = vec![0u8; line_size];
        let mut cur_line = twin_line.clone();
        cur_line[4..8].fill(9);
        let diff =
            PageDiff::compute_range(PageId(5), LineIx(3), 3 * line_size, &twin_line, &cur_line);
        assert_eq!(diff.line, LineIx(3));
        assert_eq!(diff.runs.len(), 1);
        assert_eq!(diff.runs[0].offset, 3 * line_size + 4);
        let mut home = page_of(0);
        diff.apply(&mut home);
        assert_eq!(home[3 * line_size + 4..3 * line_size + 8], [9, 9, 9, 9]);
        assert_eq!(home[0], 0);
    }

    #[test]
    fn empty_diff_constructor() {
        let d = PageDiff::empty(PageId(9));
        assert!(d.is_empty());
        assert_eq!(d.page, PageId(9));
    }

    proptest! {
        /// Twin + diff == current, for arbitrary modifications (the key
        /// correctness property of the multiple-writer protocols).
        #[test]
        fn prop_diff_apply_roundtrip(
            seed_twin in any::<u8>(),
            writes in proptest::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..200)
        ) {
            let twin = vec![seed_twin; PAGE_SIZE];
            let mut cur = twin.clone();
            for (pos, val) in writes {
                cur[pos] = val;
            }
            let diff = PageDiff::compute(PageId(0), &twin, &cur);
            let mut rebuilt = twin.clone();
            diff.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, cur);
        }

        /// Diffs of concurrent writers to disjoint ranges commute: applying
        /// both (in either order) yields the same merged page. This is the
        /// property the home-based MRMW protocols rely on.
        #[test]
        fn prop_disjoint_diffs_commute(
            cut in 1usize..(PAGE_SIZE - 1),
            a in any::<u8>(),
            b in any::<u8>(),
        ) {
            let base = vec![0u8; PAGE_SIZE];
            let mut writer1 = base.clone();
            writer1[..cut].fill(a.wrapping_add(1));
            let mut writer2 = base.clone();
            writer2[cut..].fill(b.wrapping_add(1));
            let d1 = PageDiff::compute(PageId(0), &base, &writer1);
            let d2 = PageDiff::compute(PageId(0), &base, &writer2);

            let mut order1 = base.clone();
            d1.apply(&mut order1);
            d2.apply(&mut order1);
            let mut order2 = base.clone();
            d2.apply(&mut order2);
            d1.apply(&mut order2);
            prop_assert_eq!(order1, order2);
        }

        /// Recorded-range diffs never lose a recorded write.
        #[test]
        fn prop_recorded_ranges_cover_writes(
            ranges in proptest::collection::vec((0usize..(PAGE_SIZE - 16), 1usize..16), 1..40)
        ) {
            let mut cur = vec![0u8; PAGE_SIZE];
            for (i, (off, len)) in ranges.iter().enumerate() {
                for b in 0..*len {
                    cur[off + b] = (i as u8).wrapping_add(1);
                }
            }
            let diff = PageDiff::from_recorded_ranges(PageId(0), &ranges, &cur);
            let mut rebuilt = vec![0u8; PAGE_SIZE];
            diff.apply(&mut rebuilt);
            for (off, len) in &ranges {
                prop_assert_eq!(&rebuilt[*off..*off + *len], &cur[*off..*off + *len]);
            }
        }
    }
}
