//! Declares the custom cfgs this crate is compiled with so
//! `RUSTFLAGS="--cfg dsm_mutant"` (the mutation-gate lane, which compiles the
//! re-introduced historical protocol bugs of [`mutant`](src/mutant.rs) in)
//! passes `unexpected_cfgs`.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(dsm_mutant)");
}
