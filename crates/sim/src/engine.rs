//! The discrete-event scheduler.
//!
//! The engine owns a priority queue of events ordered by `(virtual time,
//! sequence number)`. Exactly one simulated thread executes at a time; when a
//! thread parks, control returns to the scheduler which pops the next event.
//! Runs are therefore deterministic for a given program, independent of OS
//! scheduling, which is essential for reproducible protocol experiments.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::error::SimError;
use crate::handle::SimHandle;
use crate::thread::{SchedHandle, ThreadId, ThreadSlot};
use crate::time::{SimDuration, SimTime};

/// Marker panic payload used to unwind simulated threads during teardown.
pub(crate) struct ShutdownUnwind;

/// Best-effort extraction of a human-readable message from a panic payload,
/// so the payload is propagated as the run's error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Tuning knobs of the simulation engine itself (as opposed to the DSM-layer
/// knobs on `Pm2Config`). The default is the futex-style baton hand-off; the
/// legacy Condvar protocol stays selectable so conformance tests can assert
/// both produce bit-identical runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTuning {
    /// Use the original Mutex+Condvar scheduler/thread hand-off instead of
    /// the atomic-phase + `std::thread::park` baton.
    pub legacy_condvar_handoff: bool,
    /// Iterations of `spin_loop` each side of the futex baton burns before
    /// parking its OS thread (ignored by the legacy path).
    pub handoff_spin: u32,
}

impl Default for SimTuning {
    fn default() -> Self {
        SimTuning {
            legacy_condvar_handoff: false,
            handoff_spin: default_handoff_spin(),
        }
    }
}

/// Spinning before parking only pays off when the peer can actually make
/// progress on another core; on a single-CPU host every spin iteration just
/// burns the quantum the peer needs, so park immediately. The choice only
/// affects wall-clock speed, never simulated behaviour.
fn default_handoff_spin() -> u32 {
    static SPIN: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *SPIN.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    })
}

impl SimTuning {
    /// The pre-futex behaviour: every hand-off goes through Mutex+Condvar.
    /// Used as the microbenchmark baseline and by conformance-matrix rows.
    pub fn legacy() -> Self {
        SimTuning {
            legacy_condvar_handoff: true,
            handoff_spin: 0,
        }
    }
}

/// Configuration for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Upper bound on the number of processed events before the run aborts.
    /// Guards against runaway simulations in tests and benchmarks.
    pub max_events: u64,
    /// Human-readable label used in traces.
    pub name: String,
    /// Engine tuning knobs (baton hand-off selection).
    pub tuning: SimTuning,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_events: 50_000_000,
            name: "sim".to_string(),
            tuning: SimTuning::default(),
        }
    }
}

/// Summary of a completed simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Virtual time at which the last event was processed.
    pub final_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Number of times the baton was handed to a simulated thread.
    pub context_switches: u64,
    /// Total number of simulated threads spawned over the run.
    pub threads_spawned: u64,
}

enum EventKind {
    /// Hand the baton to a parked simulated thread.
    Wake(ThreadId),
    /// Execute a closure on the scheduler (used for delayed message delivery).
    Call(Box<dyn FnOnce(&EngineCtl) + Send>),
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct ThreadEntry {
    slot: Arc<ThreadSlot>,
    join: Option<JoinHandle<()>>,
    /// Daemon threads (network dispatchers, protocol service loops) do not
    /// keep the simulation alive and are not reported as deadlocked.
    daemon: bool,
}

pub(crate) struct Shared {
    now: AtomicU64,
    queue: Mutex<BinaryHeap<Reverse<Event>>>,
    seq: AtomicU64,
    threads: Mutex<HashMap<u64, ThreadEntry>>,
    next_tid: AtomicU64,
    panic_info: Mutex<Option<(String, String)>>,
    context_switches: AtomicU64,
    events_processed: AtomicU64,
    threads_spawned: AtomicU64,
    /// The scheduler's OS-thread handle, shared by every slot's futex baton.
    sched: Arc<SchedHandle>,
    config: EngineConfig,
}

impl Shared {
    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now.load(Ordering::SeqCst))
    }

    fn push_event(&self, time: SimTime, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push(Reverse(Event {
            time: time.as_nanos(),
            seq,
            kind,
        }));
    }

    pub(crate) fn schedule_wake(&self, tid: ThreadId, at: SimTime) {
        self.push_event(at, EventKind::Wake(tid));
    }

    pub(crate) fn schedule_call(&self, at: SimTime, f: Box<dyn FnOnce(&EngineCtl) + Send>) {
        self.push_event(at, EventKind::Call(f));
    }

    pub(crate) fn record_panic(&self, thread: String, message: String) {
        let mut info = self.panic_info.lock();
        if info.is_none() {
            *info = Some((thread, message));
        }
    }

    pub(crate) fn spawn_thread<F>(
        self: &Arc<Self>,
        name: String,
        start_at: SimTime,
        daemon: bool,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let tid = ThreadId(self.next_tid.fetch_add(1, Ordering::SeqCst));
        let slot = Arc::new(ThreadSlot::new(
            tid,
            name.clone(),
            &self.config.tuning,
            Arc::clone(&self.sched),
        ));
        let shared = Arc::clone(self);
        let slot_for_thread = Arc::clone(&slot);
        let join = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Wait for the first grant before touching user code.
                if !slot_for_thread.park_and_wait() {
                    slot_for_thread.mark_finished();
                    return;
                }
                let mut handle =
                    SimHandle::new(Arc::clone(&shared), tid, Arc::clone(&slot_for_thread));
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    f(&mut handle);
                    // Fold any compute charged after the last yield into the
                    // global clock, so completion times are accurate.
                    handle.flush();
                }));
                if let Err(payload) = result {
                    if payload.downcast_ref::<ShutdownUnwind>().is_none() {
                        shared.record_panic(slot_for_thread.name.clone(), panic_message(&*payload));
                    }
                }
                slot_for_thread.mark_finished();
            })
            .expect("failed to spawn backing OS thread for simulated thread");

        self.threads.lock().insert(
            tid.0,
            ThreadEntry {
                slot,
                join: Some(join),
                daemon,
            },
        );
        self.threads_spawned.fetch_add(1, Ordering::SeqCst);
        self.schedule_wake(tid, start_at);
        tid
    }

    /// Join and drop the backing OS threads of simulated threads that have
    /// finished. Message-driven workloads spawn one short-lived handler
    /// thread per request; without eager reaping a long run accumulates tens
    /// of thousands of exited-but-unjoined OS threads and eventually exhausts
    /// the process's thread quota.
    fn reap_finished(&self) {
        let mut handles = Vec::new();
        {
            let mut threads = self.threads.lock();
            let finished: Vec<u64> = threads
                .iter()
                .filter(|(_, e)| e.slot.is_finished())
                .map(|(&tid, _)| tid)
                .collect();
            for tid in finished {
                if let Some(entry) = threads.remove(&tid) {
                    handles.push(entry.join);
                }
            }
        }
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
    }
}

/// A lightweight, cloneable controller over the engine. It is handed to
/// scheduler callbacks and embedded in simulation-aware data structures
/// (channels, wait queues) so they can schedule wake-ups.
#[derive(Clone)]
pub struct EngineCtl {
    pub(crate) shared: Arc<Shared>,
}

impl EngineCtl {
    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Schedule a wake-up for `tid` at absolute virtual time `at`. Stale
    /// wake-ups (the thread finished, or is running when the event fires) are
    /// ignored, so spurious wakes are harmless; all blocking primitives
    /// re-check their condition in a loop.
    pub fn wake_at(&self, tid: ThreadId, at: SimTime) {
        self.shared.schedule_wake(tid, at);
    }

    /// Schedule a wake-up for `tid` after `delay` from the current global time.
    pub fn wake_after(&self, tid: ThreadId, delay: SimDuration) {
        let at = self.now() + delay;
        self.shared.schedule_wake(tid, at);
    }

    /// Schedule a closure to run on the scheduler at absolute time `at`.
    pub fn call_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared.schedule_call(at, Box::new(f));
    }

    /// Spawn a simulated thread that becomes runnable at the current global
    /// time. Mirrors [`Engine::spawn`] for code that only holds a controller.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared.spawn_thread(name.into(), now, false, f)
    }

    /// Spawn a daemon thread (see [`Engine::spawn_daemon`]) from a controller.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared.spawn_thread(name.into(), now, true, f)
    }
}

impl std::fmt::Debug for EngineCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineCtl(now={})", self.now())
    }
}

/// The discrete-event simulation engine.
pub struct Engine {
    shared: Arc<Shared>,
    ran: bool,
}

impl Engine {
    /// Create a new engine with the default configuration.
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// Create a new engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            shared: Arc::new(Shared {
                now: AtomicU64::new(0),
                queue: Mutex::new(BinaryHeap::new()),
                seq: AtomicU64::new(0),
                threads: Mutex::new(HashMap::new()),
                next_tid: AtomicU64::new(0),
                panic_info: Mutex::new(None),
                context_switches: AtomicU64::new(0),
                events_processed: AtomicU64::new(0),
                threads_spawned: AtomicU64::new(0),
                sched: Arc::new(SchedHandle::new()),
                config,
            }),
            ran: false,
        }
    }

    /// A controller that can be stored in simulation-aware data structures.
    pub fn ctl(&self) -> EngineCtl {
        EngineCtl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Spawn a simulated thread that becomes runnable at virtual time zero
    /// (or at the current time if the engine is already running).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared.spawn_thread(name.into(), now, false, f)
    }

    /// Spawn a daemon thread: it behaves like a normal simulated thread but
    /// does not keep the simulation alive. Used for service loops such as RPC
    /// dispatchers, which block on their incoming queue forever.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared.spawn_thread(name.into(), now, true, f)
    }

    /// Run the simulation to completion.
    ///
    /// Returns a [`RunReport`] on success, or a [`SimError`] if the simulated
    /// program deadlocked, a thread panicked, or the event budget was hit.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.ran = true;
        // The scheduler loop itself must never skip teardown: a panic that
        // escaped run_inner (e.g. out of a scheduler callback, or a bug in
        // the engine) would otherwise leave simulated threads parked forever
        // with no one holding the baton. Tear down first, then re-raise.
        let result = panic::catch_unwind(AssertUnwindSafe(|| self.run_inner()));
        self.teardown();
        match result {
            Ok(result) => result,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    fn run_inner(&self) -> Result<RunReport, SimError> {
        let shared = &self.shared;
        // Publish the scheduler's OS-thread handle before the first grant so
        // simulated threads can wake us from their futex batons.
        shared.sched.register_current();
        loop {
            if let Some((thread, message)) = shared.panic_info.lock().take() {
                return Err(SimError::ThreadPanic { thread, message });
            }

            let next = shared.queue.lock().pop();
            let Some(Reverse(event)) = next else {
                let parked: Vec<String> = shared
                    .threads
                    .lock()
                    .values()
                    .filter(|e| !e.daemon && e.slot.is_parked() && !e.slot.is_finished())
                    .map(|e| format!("{} ({})", e.slot.name, e.slot.id))
                    .collect();
                if parked.is_empty() {
                    return Ok(self.report());
                }
                return Err(SimError::Deadlock {
                    at: shared.now(),
                    parked_threads: parked,
                });
            };

            let processed = shared.events_processed.fetch_add(1, Ordering::SeqCst) + 1;
            if processed > shared.config.max_events {
                return Err(SimError::EventLimitExceeded {
                    limit: shared.config.max_events,
                });
            }
            // Periodically reclaim the OS threads of finished simulated
            // threads so message-heavy runs do not exhaust the thread quota.
            if processed.is_multiple_of(512) {
                shared.reap_finished();
            }

            // The clock never moves backwards: events scheduled "in the past"
            // (e.g. zero-delay wake-ups racing with compute charges) are
            // processed at the current time.
            let current = shared.now.load(Ordering::SeqCst);
            if event.time > current {
                shared.now.store(event.time, Ordering::SeqCst);
            }

            match event.kind {
                EventKind::Wake(tid) => {
                    let slot = shared
                        .threads
                        .lock()
                        .get(&tid.0)
                        .map(|e| Arc::clone(&e.slot));
                    if let Some(slot) = slot {
                        if !slot.is_finished() {
                            slot.wait_until_parked_or_finished();
                            if slot.grant_and_wait() {
                                shared.context_switches.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
                EventKind::Call(f) => {
                    let ctl = EngineCtl {
                        shared: Arc::clone(shared),
                    };
                    // A panicking scheduler callback must not take down the
                    // scheduler loop (teardown would never release the other
                    // threads' batons); record it like a thread panic and
                    // let the loop head convert it into the run's error.
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&ctl))) {
                        shared.record_panic("scheduler-call".to_string(), panic_message(&*payload));
                    }
                }
            }
        }
    }

    fn report(&self) -> RunReport {
        RunReport {
            final_time: self.shared.now(),
            events: self.shared.events_processed.load(Ordering::SeqCst),
            context_switches: self.shared.context_switches.load(Ordering::SeqCst),
            threads_spawned: self.shared.threads_spawned.load(Ordering::SeqCst),
        }
    }

    fn teardown(&self) {
        // Release every thread still waiting for the baton so its OS thread
        // can exit, then join them all.
        let mut entries: Vec<(Arc<ThreadSlot>, Option<JoinHandle<()>>)> = Vec::new();
        {
            let mut threads = self.shared.threads.lock();
            for entry in threads.values_mut() {
                entries.push((Arc::clone(&entry.slot), entry.join.take()));
            }
        }
        for (slot, _) in &entries {
            slot.request_shutdown();
        }
        for (_, join) in entries {
            if let Some(handle) = join {
                let _ = handle.join();
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.ran {
            self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_engine_runs_to_completion() {
        let mut engine = Engine::new();
        let report = engine.run().unwrap();
        assert_eq!(report.final_time, SimTime::ZERO);
        assert_eq!(report.threads_spawned, 0);
    }

    #[test]
    fn single_thread_advances_virtual_time() {
        let mut engine = Engine::new();
        let observed = Arc::new(AtomicU64::new(0));
        let obs = observed.clone();
        engine.spawn("worker", move |h| {
            h.sleep(SimDuration::from_micros(100));
            obs.store(h.now().as_nanos(), Ordering::SeqCst);
        });
        let report = engine.run().unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 100_000);
        assert_eq!(report.final_time, SimTime::from_micros(100));
        assert_eq!(report.threads_spawned, 1);
    }

    #[test]
    fn threads_interleave_deterministically_by_time() {
        let mut engine = Engine::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, delay) in [("late", 30u64), ("early", 10), ("mid", 20)] {
            let order = order.clone();
            engine.spawn(name, move |h| {
                h.sleep(SimDuration::from_micros(delay));
                order.lock().push(name.to_string());
            });
        }
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn spawn_inside_thread_starts_child() {
        let mut engine = Engine::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        engine.spawn("parent", move |h| {
            let c2 = c.clone();
            h.spawn("child", move |h| {
                h.sleep(SimDuration::from_micros(5));
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
        });
        let report = engine.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(report.threads_spawned, 2);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut engine = Engine::new();
        engine.spawn("stuck", |h| {
            // Park with no one to ever wake us.
            h.park();
        });
        match engine.run() {
            Err(SimError::Deadlock { parked_threads, .. }) => {
                assert_eq!(parked_threads.len(), 1);
                assert!(parked_threads[0].starts_with("stuck"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn thread_panic_is_reported() {
        let mut engine = Engine::new();
        engine.spawn("bad", |_h| panic!("intentional test panic"));
        match engine.run() {
            Err(SimError::ThreadPanic { thread, message }) => {
                assert_eq!(thread, "bad");
                assert!(message.contains("intentional"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guard_triggers() {
        let mut engine = Engine::with_config(EngineConfig {
            max_events: 10,
            name: "tiny".into(),
            ..EngineConfig::default()
        });
        engine.spawn("spinner", |h| loop {
            h.sleep(SimDuration::from_micros(1));
        });
        match engine.run() {
            Err(SimError::EventLimitExceeded { limit }) => assert_eq!(limit, 10),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn run_twice_is_an_error() {
        let mut engine = Engine::new();
        engine.run().unwrap();
        assert!(matches!(engine.run(), Err(SimError::AlreadyRan)));
    }

    #[test]
    fn wake_between_threads() {
        let mut engine = Engine::new();
        let ctl = engine.ctl();
        let woken_at = Arc::new(AtomicU64::new(0));
        let w = woken_at.clone();
        let sleeper = engine.spawn("sleeper", move |h| {
            h.park();
            w.store(h.now().as_nanos(), Ordering::SeqCst);
        });
        engine.spawn("waker", move |h| {
            h.sleep(SimDuration::from_micros(50));
            ctl.wake_at(sleeper, h.now());
        });
        engine.run().unwrap();
        assert_eq!(woken_at.load(Ordering::SeqCst), 50_000);
    }

    #[test]
    fn scheduled_call_runs_at_requested_time() {
        let mut engine = Engine::new();
        let ctl = engine.ctl();
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        ctl.call_at(SimTime::from_micros(25), move |c| {
            s.store(c.now().as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 25_000);
    }

    #[test]
    fn charge_accumulates_until_yield() {
        let mut engine = Engine::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        engine.spawn("computer", move |h| {
            h.charge(SimDuration::from_micros(3));
            h.charge(SimDuration::from_micros(4));
            // Local view includes pending compute.
            assert_eq!(h.now().as_nanos(), 7_000);
            h.flush();
            t2.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(t.load(Ordering::SeqCst), 7_000);
    }
}
