//! The discrete-event scheduler.
//!
//! The engine owns a set of priority queues ("shards") of events ordered by
//! `(virtual time, sequence number)`. Every event carries a *shard key*
//! (upper layers use the cluster node id; node-less events fall back to the
//! spawning thread's key), and each shard is owned by one *worker*.
//!
//! With the default `workers = 1` configuration the engine behaves exactly
//! like the historical single-threaded scheduler: one OS thread pops the
//! globally smallest event and hands the baton to at most one simulated
//! thread at a time. With `workers > 1` the engine drives the workers in
//! lock-step over virtual *instants*: all events at the current minimum time
//! execute in parallel across workers (each worker still runs its own events
//! one at a time, in sequence order), and every side effect produced during
//! the instant — wake-ups, scheduler calls, channel enqueues, spawns — is
//! buffered into the executing worker's *outbox*, tagged with the global
//! sequence number of the event that produced it. Before the clock advances,
//! the coordinator merges the outboxes in ascending parent-sequence order
//! and assigns fresh global sequence numbers in that order.
//!
//! Because each worker executes its instant-events in ascending sequence
//! order, and the merge orders effects by parent sequence, the resulting
//! global event order is exactly the order the single-worker engine would
//! have produced: runs are deterministic for a given program, and the final
//! memory and virtual time are independent of the worker count — which is
//! what the conformance matrix asserts. (Event *counts* may differ slightly
//! across worker counts: a same-instant cross-shard message that a polling
//! receiver would have observed immediately under one worker is deferred to
//! the instant's merge under many, costing one extra same-instant park/wake.
//! Virtual time and memory are unaffected; all blocking primitives re-check
//! their condition in a loop.)

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::continuation::{Coro, DEFAULT_STACK_BYTES};
use crate::error::SimError;
use crate::handle::SimHandle;
use crate::thread::{Backing, GrantSource, SchedHandle, ThreadId, ThreadSlot};
use crate::time::{SimDuration, SimTime};

/// Cap on the number of recycled continuation stacks kept around. Beyond
/// this, finished stacks are simply freed.
const STACK_POOL_CAP: usize = 32;

/// Marker panic payload used to unwind simulated threads during teardown.
pub(crate) struct ShutdownUnwind;

/// Best-effort extraction of a human-readable message from a panic payload,
/// so the payload is propagated as the run's error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Instant context: which worker/event is executing on this OS thread.
// ---------------------------------------------------------------------------

/// Per-OS-thread record of the event currently executing. Set when a worker
/// (or the coordinator) grants the baton to a simulated thread or runs a
/// scheduler callback; cleared when the thread parks again. Pushes into the
/// engine consult it to decide between the direct path (single active shard)
/// and the buffered per-worker outbox (parallel instant).
#[derive(Clone, Copy)]
pub(crate) struct InstantCtx {
    /// Identity of the engine (`Arc::as_ptr` of its `Shared`), so a push
    /// into a *different* engine is never mis-buffered.
    pub engine: usize,
    /// Index of the worker executing the parent event.
    pub worker: usize,
    /// Scheduled time of the parent event (its heap key, which together
    /// with `parent_seq` is the engine's execution order).
    pub parent_time: u64,
    /// Global sequence number of the parent event.
    pub parent_seq: u64,
    /// Shard key of the parent event (inherited by key-less pushes).
    pub shard: u64,
    /// True during a parallel instant: effects must be buffered.
    pub defer: bool,
    /// Monotone counter of ordered emissions (wait-set registrations) made
    /// by the parent event so far.
    pub sub: u64,
}

thread_local! {
    static INSTANT_CTX: Cell<Option<InstantCtx>> = const { Cell::new(None) };
}

pub(crate) fn set_instant_ctx(ctx: Option<InstantCtx>) {
    INSTANT_CTX.with(|c| c.set(ctx));
}

pub(crate) fn instant_ctx() -> Option<InstantCtx> {
    INSTANT_CTX.with(|c| c.get())
}

/// Update the shard key recorded in the current instant context (thread
/// migration re-homes a running thread mid-event).
pub(crate) fn set_instant_ctx_shard(shard: u64) {
    INSTANT_CTX.with(|c| {
        if let Some(mut ctx) = c.get() {
            ctx.shard = shard;
            c.set(Some(ctx));
        }
    });
}

/// Fallback for ordered emissions made outside any simulated context.
static EXTERNAL_ORDER: AtomicU64 = AtomicU64::new(0);

/// A totally ordered key identifying one "emission point" in the canonical
/// execution order: `(parent event time, parent event sequence, emission
/// index within the event)` — the first two components are exactly the
/// event heap's ordering, i.e. the order events *execute* in (an event
/// scheduled early for a late instant executes after a later-scheduled
/// event for an earlier instant). Emissions from outside the engine (setup
/// code) sort last, in program order. Used by [`crate::WaitSet`] and
/// [`crate::TickOutbox`] so that waiter/bucket order is a pure function of
/// the canonical execution order rather than of wall-clock interleaving
/// between workers — and coincides with the historical wall-clock FIFO on a
/// single worker.
pub(crate) fn next_order_key() -> (u64, u64, u64) {
    INSTANT_CTX.with(|c| match c.get() {
        Some(mut ctx) => {
            let key = (ctx.parent_time, ctx.parent_seq, ctx.sub);
            ctx.sub += 1;
            c.set(Some(ctx));
            key
        }
        None => (
            u64::MAX,
            u64::MAX,
            EXTERNAL_ORDER.fetch_add(1, Ordering::SeqCst),
        ),
    })
}

// ---------------------------------------------------------------------------
// Tuning / configuration
// ---------------------------------------------------------------------------

/// How the scheduler hands control to a simulated thread for one slice.
///
/// The mode is purely a wall-clock mechanism: the virtual-time behaviour of
/// a run — final memory, virtual time, event order — is bit-identical across
/// all three, which the conformance matrix asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HandoffMode {
    /// Run the slice as a stackful continuation on the scheduler's own OS
    /// thread: a grant is a ~dozen-instruction stack switch, no OS thread
    /// wakes up. The default. Unsupported targets (non-x86-64) silently
    /// fall back to [`HandoffMode::Baton`].
    Continuation,
    /// The PR 3 futex-style baton: each simulated thread is backed by a
    /// dedicated OS thread; grant/park are one atomic store plus one
    /// `unpark` per side. Kept as the per-thread fallback for workloads a
    /// fixed-size private stack cannot carry (deep recursion) and as a
    /// conformance baseline.
    Baton,
    /// The original Mutex+Condvar baton (the pre-PR 3 substrate), kept
    /// selectable so the `sched_handoff` microbenchmark can measure the
    /// true historical baseline.
    LegacyCondvar,
}

impl HandoffMode {
    /// The mode that will actually be used on this target: continuations
    /// downgrade to the OS-thread baton where no stack switch exists.
    pub fn effective(self) -> HandoffMode {
        match self {
            HandoffMode::Continuation if !crate::continuation::SUPPORTED => HandoffMode::Baton,
            mode => mode,
        }
    }

    /// Parse the `DSM_SIM_HANDOFF` environment values.
    fn parse(s: &str) -> Option<HandoffMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "continuation" | "coro" => Some(HandoffMode::Continuation),
            "baton" | "futex" => Some(HandoffMode::Baton),
            "legacy" | "condvar" | "legacy_condvar" => Some(HandoffMode::LegacyCondvar),
            _ => None,
        }
    }
}

/// Tuning knobs of the simulation engine itself (as opposed to the DSM-layer
/// knobs on `Pm2Config`). The default is the continuation hand-off on a
/// single worker; the baton and legacy-Condvar protocols stay selectable so
/// conformance tests can assert all three produce bit-identical runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTuning {
    /// Scheduler/thread hand-off implementation. Defaults to the
    /// `DSM_SIM_HANDOFF` environment variable (`continuation` | `baton` |
    /// `legacy`) when set — mirroring `DSM_SIM_WORKERS`, so CI can re-run
    /// the whole suite per mode — otherwise [`HandoffMode::Continuation`].
    pub handoff: HandoffMode,
    /// Iterations of `spin_loop` a baton side burns before parking its OS
    /// thread. This is the *configured ceiling*: the engine derives the
    /// effective per-worker budget from it (see [`SimTuning::handoff_spin`]
    /// semantics in `SpinMap`), zeroing it when the scheduler participants
    /// oversubscribe the host's cores or when a worker drives only
    /// continuations (which never wait on another OS thread).
    pub handoff_spin: u32,
    /// Number of event-queue shards / scheduler workers. `1` (the default)
    /// is the historical single-threaded engine; larger values run
    /// same-instant events of different shards in parallel OS threads while
    /// preserving the deterministic event order. Defaults to the
    /// `DSM_SIM_WORKERS` environment variable when set.
    pub workers: usize,
}

impl Default for SimTuning {
    fn default() -> Self {
        SimTuning {
            handoff: default_handoff(),
            handoff_spin: default_handoff_spin(),
            workers: default_workers(),
        }
    }
}

/// Default hand-off mode: the `DSM_SIM_HANDOFF` environment variable when
/// set (the CI matrix re-runs the suite with it), otherwise continuations.
fn default_handoff() -> HandoffMode {
    static MODE: std::sync::OnceLock<HandoffMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("DSM_SIM_HANDOFF")
            .ok()
            .and_then(|v| HandoffMode::parse(&v))
            .unwrap_or(HandoffMode::Continuation)
    })
}

/// Spinning before parking only pays off when the peer can actually make
/// progress on another core; on a single-CPU host every spin iteration just
/// burns the quantum the peer needs, so park immediately. The choice only
/// affects wall-clock speed, never simulated behaviour.
fn default_handoff_spin() -> u32 {
    static SPIN: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *SPIN.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    })
}

/// Hard cap on the worker count: beyond this the per-instant coordination
/// cost dwarfs any conceivable parallelism win.
const MAX_WORKERS: usize = 64;

/// Default worker count: the `DSM_SIM_WORKERS` environment variable when set
/// (the CI matrix re-runs the test suite with it), otherwise 1.
fn default_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("DSM_SIM_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|w| w.clamp(1, MAX_WORKERS))
            .unwrap_or(1)
    })
}

impl SimTuning {
    /// The pre-futex behaviour: every hand-off goes through Mutex+Condvar on
    /// a single worker. Used as the microbenchmark baseline and by
    /// conformance-matrix rows.
    pub fn legacy() -> Self {
        SimTuning {
            handoff: HandoffMode::LegacyCondvar,
            handoff_spin: 0,
            workers: 1,
        }
    }

    /// The PR 3 OS-thread futex baton (otherwise default tuning). Used by
    /// conformance-matrix rows and the hand-off microbenchmark.
    pub fn baton() -> Self {
        SimTuning::default().with_handoff(HandoffMode::Baton)
    }

    /// This tuning with an explicit hand-off mode.
    pub fn with_handoff(mut self, handoff: HandoffMode) -> Self {
        self.handoff = handoff;
        self
    }

    /// This tuning with an explicit worker count (clamped to `1..=64`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, MAX_WORKERS);
        self
    }
}

// ---------------------------------------------------------------------------
// Per-worker spin budgets
// ---------------------------------------------------------------------------

/// Effective spin budget for one scheduler participant, derived from the
/// configured ceiling. Spinning before parking pays off only when the peer
/// the spinner waits for can make progress on another core *right now*:
/// each active worker pairs with at most one running simulated OS thread,
/// so a pool of `workers` workers needs `2 * workers` cores before spinning
/// beats parking. On an oversubscribed host every spin iteration burns the
/// quantum the peer needs. Pure function, unit-tested; only wall-clock
/// speed is affected, never simulated behaviour.
pub(crate) fn effective_spin(configured: u32, workers: usize, cores: usize) -> u32 {
    if cores <= 1 || 2 * workers > cores {
        0
    } else {
        configured
    }
}

/// Per-worker spin budgets, re-derived whenever the set of OS-thread-backed
/// (baton/legacy) simulated threads homed on a worker changes — at spawn, at
/// finish, and when a migration re-shards a thread
/// ([`crate::SimHandle::set_shard`]). A worker whose shard homes only
/// continuations never waits on another OS thread at a grant, so its budget
/// drops to zero; the historical implementation tuned one global budget
/// once, which both over-spun oversubscribed multi-worker runs and kept
/// spinning for workers that had nothing to spin for.
pub(crate) struct SpinMap {
    /// Effective budget per worker, read on every grant/park.
    budgets: Vec<AtomicU32>,
    /// Number of OS-thread-backed simulated threads currently homed on each
    /// worker's shard set.
    os_backed: Vec<AtomicU64>,
    /// `effective_spin(configured, workers, cores)` — the budget a worker
    /// gets while at least one OS-backed thread is homed on it.
    base: u32,
}

impl SpinMap {
    pub fn new(configured: u32, workers: usize, cores: usize) -> Self {
        SpinMap {
            budgets: (0..workers).map(|_| AtomicU32::new(0)).collect(),
            os_backed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            base: effective_spin(configured, workers, cores),
        }
    }

    fn worker_of(&self, shard_key: u64) -> usize {
        (shard_key % self.budgets.len() as u64) as usize
    }

    /// Budget for the worker owning `shard_key` (thread side of the baton).
    /// Relaxed: the budget is a wall-clock performance hint only — a stale
    /// read spins a few extra (or fewer) iterations before parking; no other
    /// state is published through it, and `retune`'s SeqCst store still
    /// becomes visible promptly.
    pub fn for_key(&self, shard_key: u64) -> u32 {
        self.budgets[self.worker_of(shard_key)].load(Ordering::Relaxed)
    }

    /// Budget for worker `w` (granting side of the baton). Relaxed: same
    /// hint-only reasoning as [`SpinMap::for_key`].
    pub fn for_worker(&self, w: usize) -> u32 {
        self.budgets[w].load(Ordering::Relaxed)
    }

    /// Budget for the coordinator's own waits (worker-pool round barriers):
    /// worth spinning only under the same core-subscription condition.
    pub fn scheduler_spin(&self) -> u32 {
        self.base
    }

    fn retune(&self, w: usize) {
        let budget = if self.os_backed[w].load(Ordering::SeqCst) > 0 {
            self.base
        } else {
            0
        };
        self.budgets[w].store(budget, Ordering::SeqCst);
    }

    /// An OS-thread-backed simulated thread is now homed on `shard_key`.
    pub fn home_os_thread(&self, shard_key: u64) {
        let w = self.worker_of(shard_key);
        self.os_backed[w].fetch_add(1, Ordering::SeqCst);
        self.retune(w);
    }

    /// An OS-thread-backed simulated thread left `shard_key` (finished, or
    /// migrated away).
    pub fn unhome_os_thread(&self, shard_key: u64) {
        let w = self.worker_of(shard_key);
        self.os_backed[w].fetch_sub(1, Ordering::SeqCst);
        self.retune(w);
    }

    /// Re-home an OS-thread-backed thread after a migration re-shards it.
    pub fn rehome_os_thread(&self, from_key: u64, to_key: u64) {
        if self.worker_of(from_key) != self.worker_of(to_key) {
            self.unhome_os_thread(from_key);
            self.home_os_thread(to_key);
        }
    }

    /// Number of OS-thread-backed simulated threads homed on worker `w`
    /// (test support for the migration re-tuning regression tests).
    #[cfg(test)]
    pub fn os_backed_count(&self, w: usize) -> u64 {
        self.os_backed[w].load(Ordering::SeqCst)
    }
}

/// Host core count used to derive spin budgets.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------------
// Spawn options and slice outcomes
// ---------------------------------------------------------------------------

/// Per-thread overrides for [`Engine::spawn_with`] /
/// [`crate::SimHandle::spawn_with`]. The defaults follow the engine tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpawnOptions {
    /// Force a hand-off mode for this thread regardless of the engine-wide
    /// [`SimTuning::handoff`]. The designed use is
    /// `Some(HandoffMode::Baton)`: an escape hatch for bodies a fixed-size
    /// continuation stack cannot carry (deep recursion), which then run on
    /// a dedicated OS thread with a guard page while the rest of the
    /// simulation stays on continuations.
    pub handoff: Option<HandoffMode>,
    /// Private stack size for this thread: the continuation's coroutine
    /// stack (default 1 MiB, committed lazily) or the backing OS thread's
    /// stack when combined with an OS-thread hand-off.
    pub stack_bytes: Option<usize>,
}

impl SpawnOptions {
    /// Options forcing the OS-thread baton for this thread.
    pub fn baton() -> Self {
        SpawnOptions {
            handoff: Some(HandoffMode::Baton),
            ..SpawnOptions::default()
        }
    }

    /// This set of options with an explicit continuation stack size.
    pub fn with_stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = Some(bytes);
        self
    }
}

/// Why a simulated thread yielded its slice back to the scheduler. Reified
/// at every yield site (sleep, wait sets, channels, DSM faults) so the
/// scheduler — and the profiling surface, [`Engine::block_profile`] — can
/// see *what* the simulation spends its blocking on, independent of the
/// hand-off mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BlockReason {
    /// Generic park with no annotated cause.
    Other = 0,
    /// Blocked on a [`crate::WaitSet`] without a finer-grained annotation.
    WaitSet = 1,
    /// Blocked receiving from a simulation channel.
    Channel = 2,
    /// Blocked on a DSM page fault (waiting for a page or diff to arrive).
    PageFault = 3,
    /// Blocked waiting for protocol acknowledgements (release/flush).
    Ack = 4,
    /// Blocked on an RPC reply.
    Rpc = 5,
    /// Blocked in a barrier round.
    Barrier = 6,
}

/// All reasons, in discriminant order (the [`Engine::block_profile`] rows).
pub(crate) const BLOCK_REASONS: [BlockReason; 7] = [
    BlockReason::Other,
    BlockReason::WaitSet,
    BlockReason::Channel,
    BlockReason::PageFault,
    BlockReason::Ack,
    BlockReason::Rpc,
    BlockReason::Barrier,
];

/// What a slice reported when it yielded: the scheduler-visible outcome of
/// one resumption of a simulated thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The thread advanced virtual time and scheduled its own wake-up.
    Yielded(SimTime),
    /// The thread blocked for `reason`; some other party will wake it.
    Blocked(BlockReason),
    /// The thread's body completed; it will never run again.
    Done,
}

/// Configuration for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Upper bound on the number of processed events before the run aborts.
    /// Guards against runaway simulations in tests and benchmarks.
    pub max_events: u64,
    /// Human-readable label used in traces.
    pub name: String,
    /// Engine tuning knobs (baton hand-off selection, worker count).
    pub tuning: SimTuning,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_events: 50_000_000,
            name: "sim".to_string(),
            tuning: SimTuning::default(),
        }
    }
}

/// Summary of a completed simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time at which the last event was processed.
    pub final_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Number of times the baton was handed to a simulated thread.
    pub context_switches: u64,
    /// Total number of simulated threads spawned over the run.
    pub threads_spawned: u64,
    /// Number of virtual instants whose events were dispatched to more than
    /// one worker in parallel (always 0 with `workers = 1`).
    pub parallel_rounds: u64,
}

// ---------------------------------------------------------------------------
// Schedule control (the dsm-verify exploration seam)
// ---------------------------------------------------------------------------

/// One runnable alternative at a same-instant schedule choice point: the
/// lowest-sequence pending event of one shard key at the current virtual
/// instant. Executing any candidate preserves per-key (per-node) program
/// order; the *cross*-key order is exactly what a schedule explorer varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventChoice {
    /// Shard key of the candidate (upper layers use the cluster node id).
    pub shard_key: u64,
    /// Global sequence number of the candidate event. The candidate with the
    /// smallest sequence number is what the uncontrolled engine would run;
    /// candidates are presented in ascending sequence order, so index 0 is
    /// always the canonical choice.
    pub seq: u64,
    /// Thread the event would wake (`None` for scheduler calls such as
    /// message deliveries).
    pub wakes: Option<ThreadId>,
}

/// A hook consulted by the engine — and by permutation-aware transport
/// backends — at points where several orders are admissible and the engine
/// would otherwise resolve the tie canonically. Installing a controller
/// ([`Engine::set_controller`]) turns the deterministic engine into a
/// *controllable* one: a driver (the `dsm-verify` explorer) can replay a
/// recorded sequence of decisions and then deviate, enumerating the schedule
/// space of a program without touching the program itself.
///
/// Returning the canonical choice everywhere reproduces the uncontrolled run
/// bit for bit; that is what the replay proptest asserts.
pub trait ScheduleController: Send + Sync {
    /// Choose which same-instant event executes next. `choices` holds one
    /// candidate per shard key with pending events at the current instant, in
    /// ascending sequence order (index 0 = canonical). Only called when
    /// `choices.len() > 1`. The return value is an index into `choices`;
    /// out-of-range values are clamped to the last candidate.
    fn choose_event(&self, now: SimTime, choices: &[EventChoice]) -> usize;

    /// Choose a delivery slot for one message on a permutation-aware
    /// transport (`TransportBackend::Permuted`): a value in `0..options`,
    /// where 0 is the canonical (ideal) delivery and higher values add
    /// bounded extra arrival slack, permuting cross-link delivery order
    /// while per-link FIFO is preserved by the transport itself.
    fn choose_delivery(&self, now: SimTime, from: u64, to: u64, options: u32) -> u32;
}

// ---------------------------------------------------------------------------
// Events and buffered effects
// ---------------------------------------------------------------------------

enum EventKind {
    /// Hand the baton to a parked simulated thread. The slot pointer is a
    /// cache: a thread scheduling its *own* wake-up embeds its slot so the
    /// hot path (one wake per simulated step) skips the global thread-map
    /// lock. Cross-thread wakes pass `None` and resolve through the map.
    Wake(ThreadId, Option<Arc<ThreadSlot>>),
    /// Execute a closure on the scheduler (used for delayed message delivery).
    Call(Box<dyn FnOnce(&EngineCtl) + Send>),
}

struct Event {
    time: u64,
    seq: u64,
    /// Shard key the event was scheduled with (inherited by key-less pushes
    /// made while it executes).
    shard: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One side effect buffered during a parallel instant, applied at the merge
/// barrier in canonical `(parent seq, emission order)` order.
enum Effect {
    /// An event push (wake, call, spawn wake).
    Push {
        time: u64,
        shard: u64,
        kind: EventKind,
    },
    /// An arbitrary engine-state mutation that must run in canonical order
    /// (channel enqueues: their per-channel sequence numbers break delivery
    /// ties, so they must be assigned in canonical order, not wall-clock
    /// order).
    Action(Box<dyn FnOnce(&EngineCtl) + Send>),
}

struct ThreadEntry {
    slot: Arc<ThreadSlot>,
    join: Option<JoinHandle<()>>,
    /// Daemon threads (network dispatchers, protocol service loops) do not
    /// keep the simulation alive and are not reported as deadlocked.
    daemon: bool,
}

// ---------------------------------------------------------------------------
// Worker control
// ---------------------------------------------------------------------------

const W_IDLE: u32 = 0;
const W_REQUESTED: u32 = 1;
const W_RUNNING: u32 = 2;
const W_DONE: u32 = 3;
const W_QUIT: u32 = 4;

/// Coordinator → worker command mailbox (one per worker OS thread).
struct WorkerCtrl {
    state: AtomicU32,
    /// Virtual instant the requested round must drain.
    round_time: AtomicU64,
    /// The worker's OS thread, for coordinator-side unparks.
    os: std::sync::OnceLock<std::thread::Thread>,
}

impl WorkerCtrl {
    fn new() -> Self {
        WorkerCtrl {
            state: AtomicU32::new(W_IDLE),
            round_time: AtomicU64::new(0),
            os: std::sync::OnceLock::new(),
        }
    }
}

/// One event-queue shard and the state of the worker that owns it.
struct Shard {
    queue: Mutex<BinaryHeap<Reverse<Event>>>,
    /// The owning worker's scheduler handle: simulated threads granted by
    /// this worker unpark it through their slot's granter pointer.
    sched: Arc<SchedHandle>,
    /// Effects buffered during a parallel instant, tagged with the producing
    /// event's global sequence number (ascending within the vector).
    effects: Mutex<Vec<(u64, Effect)>>,
    ctrl: WorkerCtrl,
    /// Thread-id allocation lane for spawns executed on this worker during
    /// parallel instants (keeps ids deterministic without cross-worker
    /// coordination).
    next_tid: AtomicU64,
}

/// Base of the per-worker thread-id lanes: ids allocated during parallel
/// instants are `(worker + 1) << 32 | local`, disjoint from the sequential
/// lane used by setup code and single-shard instants (bounded by the event
/// budget, far below 2^32).
const TID_LANE_BASE: u64 = 1 << 32;

pub(crate) struct Shared {
    now: AtomicU64,
    seq: AtomicU64,
    shards: Vec<Shard>,
    /// The coordinator's (run()-calling thread's) handle; also the default
    /// granter of freshly created slots.
    coord: Arc<SchedHandle>,
    threads: Mutex<HashMap<u64, ThreadEntry>>,
    next_tid: AtomicU64,
    panic_info: Mutex<Option<(String, String)>>,
    /// Raised when `panic_info` holds something: lets the scheduler loop
    /// poll a plain atomic per event instead of taking the mutex.
    panic_flag: AtomicBool,
    context_switches: AtomicU64,
    events_processed: AtomicU64,
    threads_spawned: AtomicU64,
    parallel_rounds: AtomicU64,
    /// Set by a worker that exhausted the event budget mid-round.
    limit_hit: AtomicBool,
    worker_joins: Mutex<Vec<JoinHandle<()>>>,
    /// Per-worker spin budgets, re-tuned as OS-backed threads come, go and
    /// migrate (see [`SpinMap`]).
    spin_map: Arc<SpinMap>,
    /// Recycled private stacks of finished continuations.
    stack_pool: Mutex<Vec<Vec<u8>>>,
    /// Count of parks per [`BlockReason`] (indexed by discriminant) — the
    /// data behind [`Engine::block_profile`].
    block_counts: [AtomicU64; BLOCK_REASONS.len()],
    /// The installed [`ScheduleController`], if any (dsm-verify exploration).
    controller: Mutex<Option<Arc<dyn ScheduleController>>>,
    /// Raised when `controller` holds something, so the per-event scheduler
    /// loop and the transport hot paths poll one atomic instead of a mutex.
    controlled: AtomicBool,
    config: EngineConfig,
}

impl Shared {
    fn token(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn num_workers(&self) -> usize {
        self.shards.len()
    }

    fn worker_of(&self, shard_key: u64) -> usize {
        (shard_key % self.shards.len() as u64) as usize
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now.load(Ordering::SeqCst))
    }

    /// Append an event directly to its shard's queue with a fresh global
    /// sequence number. Only called from contexts that are serialized with
    /// respect to each other (setup code, inline execution, the merge
    /// barrier), so sequence assignment order is deterministic.
    fn push_direct(&self, time: u64, kind: EventKind, shard_key: u64) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.shards[self.worker_of(shard_key)]
            .queue
            .lock()
            .push(Reverse(Event {
                time,
                seq,
                shard: shard_key,
                kind,
            }));
    }

    /// Push an event, buffering it into the executing worker's outbox when a
    /// parallel instant is in progress on this engine.
    fn submit(self: &Arc<Self>, time: SimTime, kind: EventKind, shard_key: u64) {
        if let Some(ctx) = instant_ctx() {
            if ctx.defer && ctx.engine == self.token() {
                self.shards[ctx.worker].effects.lock().push((
                    ctx.parent_seq,
                    Effect::Push {
                        time: time.as_nanos(),
                        shard: shard_key,
                        kind,
                    },
                ));
                return;
            }
        }
        self.push_direct(time.as_nanos(), kind, shard_key);
    }

    /// Run `f` immediately, or — during a parallel instant — buffer it to
    /// run at the merge barrier in canonical order. Used for engine-adjacent
    /// state whose mutation order must follow the canonical event order
    /// (channel enqueues).
    pub(crate) fn defer_or_run(self: &Arc<Self>, f: Box<dyn FnOnce(&EngineCtl) + Send + 'static>) {
        if let Some(ctx) = instant_ctx() {
            if ctx.defer && ctx.engine == self.token() {
                self.shards[ctx.worker]
                    .effects
                    .lock()
                    .push((ctx.parent_seq, Effect::Action(f)));
                return;
            }
        }
        let ctl = EngineCtl {
            shared: Arc::clone(self),
        };
        f(&ctl);
    }

    /// Shard key of `tid`: its slot's current key, falling back to the raw
    /// thread id for threads already reaped (stale wakes are no-ops anyway).
    fn shard_key_of(&self, tid: ThreadId) -> u64 {
        self.threads
            .lock()
            .get(&tid.0)
            .map(|e| e.slot.shard_key())
            .unwrap_or(tid.0)
    }

    pub(crate) fn schedule_wake(self: &Arc<Self>, tid: ThreadId, at: SimTime) {
        let key = self.shard_key_of(tid);
        self.submit(at, EventKind::Wake(tid, None), key);
    }

    /// Wake with a known shard key (a thread scheduling its own wake-up).
    pub(crate) fn schedule_wake_keyed(self: &Arc<Self>, tid: ThreadId, at: SimTime, key: u64) {
        self.submit(at, EventKind::Wake(tid, None), key);
    }

    /// Self-wake with the slot embedded in the event: the scheduler grants
    /// straight off the cached `Arc` instead of taking the thread-map lock.
    /// This is the per-step hot path (`sleep`/`yield_now`/`flush`).
    pub(crate) fn schedule_wake_cached(self: &Arc<Self>, slot: &Arc<ThreadSlot>, at: SimTime) {
        self.submit(
            at,
            EventKind::Wake(slot.id, Some(Arc::clone(slot))),
            slot.shard_key(),
        );
    }

    pub(crate) fn schedule_call(
        self: &Arc<Self>,
        at: SimTime,
        key: Option<u64>,
        f: Box<dyn FnOnce(&EngineCtl) + Send>,
    ) {
        // Key-less calls inherit the executing event's shard so their state
        // stays on the same worker; outside any event they default to shard 0.
        let key = key.or_else(|| instant_ctx().map(|c| c.shard)).unwrap_or(0);
        self.submit(at, EventKind::Call(f), key);
    }

    pub(crate) fn record_panic(&self, thread: String, message: String) {
        let mut info = self.panic_info.lock();
        if info.is_none() {
            *info = Some((thread, message));
        }
        self.panic_flag.store(true, Ordering::SeqCst);
    }

    /// Allocate a thread id. Spawns executed during a parallel instant draw
    /// from the executing worker's lane (deterministic: each worker runs its
    /// events in sequence order); everything else draws from the sequential
    /// lane, exactly as the historical engine did.
    fn alloc_tid(self: &Arc<Self>) -> ThreadId {
        match instant_ctx() {
            Some(ctx) if ctx.defer && ctx.engine == self.token() => {
                let local = self.shards[ctx.worker]
                    .next_tid
                    .fetch_add(1, Ordering::SeqCst);
                ThreadId(TID_LANE_BASE * (ctx.worker as u64 + 1) + local)
            }
            _ => ThreadId(self.next_tid.fetch_add(1, Ordering::SeqCst)),
        }
    }

    pub(crate) fn spawn_thread<F>(
        self: &Arc<Self>,
        name: String,
        start_at: SimTime,
        daemon: bool,
        shard_key: Option<u64>,
        opts: SpawnOptions,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let tid = self.alloc_tid();
        // Key preference: explicit > inherited from the spawning event >
        // the thread's own id.
        let key = shard_key
            .or_else(|| {
                instant_ctx()
                    .filter(|c| c.engine == self.token())
                    .map(|c| c.shard)
            })
            .unwrap_or(tid.0);
        let mode = opts
            .handoff
            .unwrap_or(self.config.tuning.handoff)
            .effective();
        let backing = match mode {
            HandoffMode::Continuation => Backing::Continuation,
            HandoffMode::Baton => Backing::Baton,
            HandoffMode::LegacyCondvar => Backing::LegacyCondvar,
        };
        let slot = Arc::new(ThreadSlot::new(
            tid,
            name.clone(),
            backing,
            Arc::clone(&self.spin_map),
            Arc::clone(&self.coord),
            self.token(),
            key,
        ));
        let shared = Arc::clone(self);
        let slot_for_thread = Arc::clone(&slot);
        let join = match backing {
            Backing::Continuation => {
                // The thread is a coroutine: the body runs on whichever
                // scheduler participant grants its slices, switching onto a
                // private stack. No OS thread is created.
                let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                    // The first resume IS the first grant: the granter has
                    // already published the grant context.
                    if !slot_for_thread.continuation_first_grant() {
                        return;
                    }
                    let mut handle =
                        SimHandle::new(Arc::clone(&shared), tid, Arc::clone(&slot_for_thread));
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        f(&mut handle);
                        // Fold any compute charged after the last yield into
                        // the global clock, so completion times are accurate.
                        handle.flush();
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ShutdownUnwind>().is_none() {
                            shared.record_panic(
                                slot_for_thread.name.clone(),
                                panic_message(&*payload),
                            );
                        }
                    }
                    set_instant_ctx(None);
                });
                let stack_bytes = opts.stack_bytes.unwrap_or(DEFAULT_STACK_BYTES);
                let recycled = self.stack_pool.lock().pop();
                slot.init_continuation(Coro::new(body, stack_bytes, recycled));
                None
            }
            Backing::Baton | Backing::LegacyCondvar => {
                let mut builder = std::thread::Builder::new().name(format!("sim-{name}"));
                if let Some(bytes) = opts.stack_bytes {
                    builder = builder.stack_size(bytes);
                }
                let join = builder
                    .spawn(move || {
                        // Wait for the first grant before touching user code.
                        if !slot_for_thread.park_and_wait() {
                            slot_for_thread.mark_finished();
                            return;
                        }
                        let mut handle =
                            SimHandle::new(Arc::clone(&shared), tid, Arc::clone(&slot_for_thread));
                        let result = panic::catch_unwind(AssertUnwindSafe(|| {
                            f(&mut handle);
                            handle.flush();
                        }));
                        if let Err(payload) = result {
                            if payload.downcast_ref::<ShutdownUnwind>().is_none() {
                                shared.record_panic(
                                    slot_for_thread.name.clone(),
                                    panic_message(&*payload),
                                );
                            }
                        }
                        slot_for_thread.mark_finished();
                    })
                    .expect("failed to spawn backing OS thread for simulated thread");
                Some(join)
            }
        };

        self.threads
            .lock()
            .insert(tid.0, ThreadEntry { slot, join, daemon });
        self.threads_spawned.fetch_add(1, Ordering::SeqCst);
        self.schedule_wake_keyed(tid, start_at, key);
        tid
    }

    /// Bump the engine-wide profile counter for `reason`.
    pub(crate) fn record_block(&self, reason: BlockReason) {
        // Relaxed: pure statistics counter, read only after `run()` returned
        // (the thread join inside `run` is the happens-before edge to the
        // reader); no other memory is published under it.
        self.block_counts[reason as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// The installed schedule controller, if any. One atomic flag guards the
    /// mutex so uncontrolled runs (the default) pay a single relaxed-ish
    /// load per query.
    pub(crate) fn controller(&self) -> Option<Arc<dyn ScheduleController>> {
        if !self.controlled.load(Ordering::SeqCst) {
            return None;
        }
        self.controller.lock().clone()
    }

    /// Pop the next event under schedule control: drain every pending event
    /// of the current minimum instant, present the per-shard-key heads to the
    /// controller (ascending sequence order, so index 0 is the canonical
    /// pick), execute the chosen head and reinsert the rest. Per-key
    /// sequence order — per-node program order and per-link FIFO — is
    /// preserved by construction; only the cross-key interleaving varies.
    /// Single-worker engines only.
    fn pop_controlled(&self, controller: &Arc<dyn ScheduleController>) -> Option<Event> {
        let mut queue = self.shards[0].queue.lock();
        let head_time = queue.peek()?.0.time;
        // Heap pops yield ascending (time, seq): `batch` ends up sorted by
        // sequence number.
        let mut batch: Vec<Event> = Vec::new();
        while queue.peek().is_some_and(|r| r.0.time == head_time) {
            batch.push(queue.pop().expect("peeked event").0);
        }
        drop(queue);
        // Index (into `batch`) of the lowest-sequence event of each distinct
        // shard key, in ascending sequence order. Choice points are tiny
        // (2–4 nodes), so the quadratic scan beats a hash map.
        let mut heads: Vec<usize> = Vec::new();
        for (i, e) in batch.iter().enumerate() {
            if !heads.iter().any(|&h| batch[h].shard == e.shard) {
                heads.push(i);
            }
        }
        let pick = if heads.len() > 1 {
            let choices: Vec<EventChoice> = heads
                .iter()
                .map(|&h| EventChoice {
                    shard_key: batch[h].shard,
                    seq: batch[h].seq,
                    wakes: match &batch[h].kind {
                        EventKind::Wake(tid, _) => Some(*tid),
                        EventKind::Call(_) => None,
                    },
                })
                .collect();
            let idx = controller.choose_event(SimTime::from_nanos(head_time), &choices);
            heads[idx.min(heads.len() - 1)]
        } else {
            heads[0]
        };
        let chosen = batch.swap_remove(pick);
        let mut queue = self.shards[0].queue.lock();
        for e in batch {
            queue.push(Reverse(e));
        }
        Some(chosen)
    }

    /// Join and drop the backing OS threads of simulated threads that have
    /// finished. Message-driven workloads spawn one short-lived handler
    /// thread per request; without eager reaping a long run accumulates tens
    /// of thousands of exited-but-unjoined OS threads and eventually exhausts
    /// the process's thread quota.
    fn reap_finished(&self) {
        let mut handles = Vec::new();
        let mut stacks = Vec::new();
        {
            let mut threads = self.threads.lock();
            let finished: Vec<u64> = threads
                .iter()
                .filter(|(_, e)| e.slot.is_finished())
                .map(|(&tid, _)| tid)
                .collect();
            for tid in finished {
                if let Some(entry) = threads.remove(&tid) {
                    // Recycle the private stack of a finished continuation
                    // (also breaks the body's Arc cycle back to this Shared).
                    if entry.slot.backing() == Backing::Continuation {
                        if let Some(stack) = entry.slot.reclaim_stack() {
                            stacks.push(stack);
                        }
                    }
                    handles.push(entry.join);
                }
            }
        }
        if !stacks.is_empty() {
            let mut pool = self.stack_pool.lock();
            for stack in stacks {
                if pool.len() < STACK_POOL_CAP {
                    pool.push(stack);
                }
            }
        }
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
    }
}

/// A lightweight, cloneable controller over the engine. It is handed to
/// scheduler callbacks and embedded in simulation-aware data structures
/// (channels, wait queues) so they can schedule wake-ups.
#[derive(Clone)]
pub struct EngineCtl {
    pub(crate) shared: Arc<Shared>,
}

impl EngineCtl {
    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Schedule a wake-up for `tid` at absolute virtual time `at`. Stale
    /// wake-ups (the thread finished, or is running when the event fires) are
    /// ignored, so spurious wakes are harmless; all blocking primitives
    /// re-check their condition in a loop.
    pub fn wake_at(&self, tid: ThreadId, at: SimTime) {
        self.shared.schedule_wake(tid, at);
    }

    /// Schedule a wake-up for `tid` after `delay` from the current global time.
    pub fn wake_after(&self, tid: ThreadId, delay: SimDuration) {
        let at = self.now() + delay;
        self.shared.schedule_wake(tid, at);
    }

    /// Schedule a closure to run on the scheduler at absolute time `at`. The
    /// event inherits the shard of the context scheduling it (shard 0 when
    /// scheduled from outside the simulation).
    pub fn call_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared.schedule_call(at, None, Box::new(f));
    }

    /// Schedule a closure on an explicit shard: the closure will execute on
    /// the worker owning `shard_key`, serialized with every other event of
    /// that shard. Layers use this to pin callbacks that touch a node's
    /// state to the node's shard (e.g. transport delivery at the receiver).
    pub fn call_at_on<F>(&self, shard_key: u64, at: SimTime, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared.schedule_call(at, Some(shard_key), Box::new(f));
    }

    /// Spawn a simulated thread that becomes runnable at the current global
    /// time. Mirrors [`Engine::spawn`] for code that only holds a controller.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared
            .spawn_thread(name.into(), now, false, None, SpawnOptions::default(), f)
    }

    /// Spawn a simulated thread bound to shard `shard_key` (see
    /// [`Engine::spawn_on`]).
    pub fn spawn_on<F>(&self, shard_key: u64, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        self.spawn_on_with(shard_key, name, SpawnOptions::default(), f)
    }

    /// Spawn a simulated thread bound to shard `shard_key` with per-thread
    /// [`SpawnOptions`] (hand-off override, continuation stack size). Upper
    /// layers use this to keep deep-recursion workloads on the OS-thread
    /// baton while the rest of the simulation runs on continuations.
    pub fn spawn_on_with<F>(
        &self,
        shard_key: u64,
        name: impl Into<String>,
        opts: SpawnOptions,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared
            .spawn_thread(name.into(), now, false, Some(shard_key), opts, f)
    }

    /// Spawn a daemon thread (see [`Engine::spawn_daemon`]) from a controller.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared
            .spawn_thread(name.into(), now, true, None, SpawnOptions::default(), f)
    }

    /// Spawn a daemon thread bound to shard `shard_key`.
    pub fn spawn_daemon_on<F>(&self, shard_key: u64, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.now();
        self.shared.spawn_thread(
            name.into(),
            now,
            true,
            Some(shard_key),
            SpawnOptions::default(),
            f,
        )
    }

    /// The engine's installed [`ScheduleController`], if any. Transport
    /// backends with controllable delivery order (`Permuted`) query this on
    /// every submit; the common uncontrolled case is one atomic load.
    pub fn controller(&self) -> Option<Arc<dyn ScheduleController>> {
        self.shared.controller()
    }

    /// Run `f` now, or at the end of the current parallel instant in
    /// canonical order (see [`Shared::defer_or_run`]).
    pub(crate) fn defer_or_run<F>(&self, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared.defer_or_run(Box::new(f));
    }
}

impl std::fmt::Debug for EngineCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EngineCtl(now={})", self.now())
    }
}

// ---------------------------------------------------------------------------
// The engine proper
// ---------------------------------------------------------------------------

/// The discrete-event simulation engine.
pub struct Engine {
    shared: Arc<Shared>,
    ran: bool,
}

impl Engine {
    /// Create a new engine with the default configuration.
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// Create a new engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let workers = config.tuning.workers.clamp(1, MAX_WORKERS);
        let shards = (0..workers)
            .map(|_| Shard {
                queue: Mutex::new(BinaryHeap::new()),
                sched: Arc::new(SchedHandle::new()),
                effects: Mutex::new(Vec::new()),
                ctrl: WorkerCtrl::new(),
                next_tid: AtomicU64::new(0),
            })
            .collect();
        Engine {
            shared: Arc::new(Shared {
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                shards,
                coord: Arc::new(SchedHandle::new()),
                threads: Mutex::new(HashMap::new()),
                next_tid: AtomicU64::new(0),
                panic_info: Mutex::new(None),
                panic_flag: AtomicBool::new(false),
                context_switches: AtomicU64::new(0),
                events_processed: AtomicU64::new(0),
                threads_spawned: AtomicU64::new(0),
                parallel_rounds: AtomicU64::new(0),
                limit_hit: AtomicBool::new(false),
                worker_joins: Mutex::new(Vec::new()),
                spin_map: Arc::new(SpinMap::new(
                    config.tuning.handoff_spin,
                    workers,
                    host_cores(),
                )),
                stack_pool: Mutex::new(Vec::new()),
                block_counts: std::array::from_fn(|_| AtomicU64::new(0)),
                controller: Mutex::new(None),
                controlled: AtomicBool::new(false),
                config,
            }),
            ran: false,
        }
    }

    /// A controller that can be stored in simulation-aware data structures.
    pub fn ctl(&self) -> EngineCtl {
        EngineCtl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Spawn a simulated thread that becomes runnable at virtual time zero
    /// (or at the current time if the engine is already running).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        self.spawn_with(name, SpawnOptions::default(), f)
    }

    /// Spawn a simulated thread with per-thread [`SpawnOptions`]: force a
    /// hand-off mode (the baton escape hatch for deep recursion) or size the
    /// continuation's private stack.
    pub fn spawn_with<F>(&self, name: impl Into<String>, opts: SpawnOptions, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared
            .spawn_thread(name.into(), now, false, None, opts, f)
    }

    /// Spawn a simulated thread bound to shard `shard_key`: all its wake-ups
    /// execute on the worker owning that shard, serialized with every other
    /// event of the shard. Upper layers pass the cluster node id so that all
    /// activity of one node stays on one worker.
    pub fn spawn_on<F>(&self, shard_key: u64, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared.spawn_thread(
            name.into(),
            now,
            false,
            Some(shard_key),
            SpawnOptions::default(),
            f,
        )
    }

    /// Spawn a daemon thread: it behaves like a normal simulated thread but
    /// does not keep the simulation alive. Used for service loops such as RPC
    /// dispatchers, which block on their incoming queue forever.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared
            .spawn_thread(name.into(), now, true, None, SpawnOptions::default(), f)
    }

    /// Spawn a daemon thread bound to shard `shard_key`.
    pub fn spawn_daemon_on<F>(&self, shard_key: u64, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let now = self.shared.now();
        self.shared.spawn_thread(
            name.into(),
            now,
            true,
            Some(shard_key),
            SpawnOptions::default(),
            f,
        )
    }

    /// Install a [`ScheduleController`]: every same-instant event-order tie
    /// (and every delivery on a `Permuted` transport) is resolved by the
    /// controller instead of canonically. Exploration requires the
    /// single-worker scheduler — the parallel-instant path has no meaningful
    /// sequential choice points — so this panics when the engine was
    /// configured with more than one worker.
    pub fn set_controller(&self, controller: Arc<dyn ScheduleController>) {
        assert_eq!(
            self.shared.num_workers(),
            1,
            "schedule controllers require a single-worker engine \
             (SimTuning::with_workers(1))"
        );
        *self.shared.controller.lock() = Some(controller);
        self.shared.controlled.store(true, Ordering::SeqCst);
    }

    /// Engine-wide count of parks per [`BlockReason`] so far: what the
    /// simulation spends its blocking on (page faults, acks, RPC replies,
    /// barriers, channels...). Purely observational — deliberately *not*
    /// part of [`RunReport`], whose cross-mode equality the conformance
    /// matrix asserts.
    pub fn block_profile(&self) -> Vec<(BlockReason, u64)> {
        BLOCK_REASONS
            .iter()
            .map(|&r| {
                (
                    r,
                    self.shared.block_counts[r as usize].load(Ordering::SeqCst),
                )
            })
            .collect()
    }

    /// Run the simulation to completion.
    ///
    /// Returns a [`RunReport`] on success, or a [`SimError`] if the simulated
    /// program deadlocked, a thread panicked, or the event budget was hit.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        if self.ran {
            return Err(SimError::AlreadyRan);
        }
        self.ran = true;
        // The scheduler loop itself must never skip teardown: a panic that
        // escaped run_inner (e.g. out of a scheduler callback, or a bug in
        // the engine) would otherwise leave simulated threads parked forever
        // with no one holding the baton. Shut the worker pool down and tear
        // every slot down first, then re-raise.
        let result = panic::catch_unwind(AssertUnwindSafe(|| self.run_inner()));
        self.shutdown_workers();
        self.teardown();
        match result {
            Ok(result) => result,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Verdict once every event queue is empty: clean completion (`Ok`) or
    /// a deadlock report naming each parked non-daemon thread and, when the
    /// slot recorded one, the [`BlockReason`] it is stuck on.
    fn drained_verdict(&self) -> Result<(), SimError> {
        let shared = &self.shared;
        let mut parked: Vec<String> = shared
            .threads
            .lock()
            .values()
            .filter(|e| !e.daemon && e.slot.is_parked() && !e.slot.is_finished())
            .map(|e| match e.slot.blocked_on() {
                Some(reason) => {
                    format!("{} ({}) blocked on {:?}", e.slot.name, e.slot.id, reason)
                }
                None => format!("{} ({})", e.slot.name, e.slot.id),
            })
            .collect();
        if parked.is_empty() {
            return Ok(());
        }
        parked.sort();
        Err(SimError::Deadlock {
            at: shared.now(),
            parked_threads: parked,
        })
    }

    fn run_inner(&self) -> Result<RunReport, SimError> {
        let shared = &self.shared;
        // Publish the coordinator's OS-thread handle before the first grant
        // so simulated threads can wake us from their futex batons.
        shared.coord.register_current();
        if shared.num_workers() > 1 {
            self.spawn_workers();
        }
        let spin = shared.spin_map.scheduler_spin();
        let single_shard = shared.shards.len() == 1;
        // Events processed since the last reap of finished OS threads.
        let mut since_reap = 0u64;
        let mut last_processed = 0u64;
        // Reused across iterations: the per-event allocation would otherwise
        // dominate the continuation hot path.
        let mut active: Vec<usize> = Vec::new();
        loop {
            // The mutex is only taken once the flag says there is something
            // to read — the loop head runs once per event.
            if shared.panic_flag.load(Ordering::SeqCst) {
                if let Some((thread, message)) = shared.panic_info.lock().take() {
                    return Err(SimError::ThreadPanic { thread, message });
                }
            }
            if shared.limit_hit.load(Ordering::SeqCst) {
                return Err(SimError::EventLimitExceeded {
                    limit: shared.config.max_events,
                });
            }

            // Periodically reclaim the OS threads of finished simulated
            // threads so message-heavy runs do not exhaust the thread quota.
            let processed = shared.events_processed.load(Ordering::SeqCst);
            since_reap += processed - last_processed;
            last_processed = processed;
            if since_reap >= 512 {
                since_reap = 0;
                shared.reap_finished();
            }

            // Single shard (workers = 1, the historical engine): pop the
            // globally smallest event under one lock acquisition instead of
            // the peek-scan-pop dance below. Under an installed controller
            // (dsm-verify exploration) the pop consults the controller at
            // every same-instant choice point instead.
            if single_shard {
                let popped = match shared.controller() {
                    Some(controller) => shared.pop_controlled(&controller),
                    None => shared.shards[0].queue.lock().pop().map(|Reverse(e)| e),
                };
                let event = match popped {
                    Some(e) => e,
                    None => match self.drained_verdict() {
                        Ok(()) => return Ok(self.report()),
                        Err(e) => return Err(e),
                    },
                };
                if event.time > shared.now.load(Ordering::SeqCst) {
                    shared.now.store(event.time, Ordering::SeqCst);
                }
                let processed = shared.events_processed.fetch_add(1, Ordering::SeqCst) + 1;
                if processed > shared.config.max_events {
                    return Err(SimError::EventLimitExceeded {
                        limit: shared.config.max_events,
                    });
                }
                // Coordinator-only granting (no worker is ever running in
                // single-shard mode), so the whole instant is one solo
                // burst: continuation grants skip the arbitration protocol.
                let source = GrantSource::solo(&shared.coord, shared.spin_map.for_worker(0));
                execute_event(shared, event, 0, false, &source);
                continue;
            }

            // Find the minimum event time across the shards and the set of
            // shards holding events at it.
            let mut min_time = u64::MAX;
            active.clear();
            for (i, shard) in shared.shards.iter().enumerate() {
                let queue = shard.queue.lock();
                if let Some(Reverse(head)) = queue.peek() {
                    match head.time.cmp(&min_time) {
                        std::cmp::Ordering::Less => {
                            min_time = head.time;
                            active.clear();
                            active.push(i);
                        }
                        std::cmp::Ordering::Equal => active.push(i),
                        std::cmp::Ordering::Greater => {}
                    }
                }
            }

            if active.is_empty() {
                match self.drained_verdict() {
                    Ok(()) => return Ok(self.report()),
                    Err(e) => return Err(e),
                }
            }

            // The clock never moves backwards: events scheduled "in the
            // past" (e.g. zero-delay wake-ups racing with compute charges)
            // are processed at the current time.
            if min_time > shared.now.load(Ordering::SeqCst) {
                shared.now.store(min_time, Ordering::SeqCst);
            }

            if active.len() == 1 {
                // Single active shard: execute the globally smallest event
                // inline on the coordinator — the historical engine, and the
                // only path ever taken with workers = 1.
                let worker = active[0];
                let event = match shared.shards[worker].queue.lock().pop() {
                    Some(Reverse(e)) => e,
                    None => continue,
                };
                let processed = shared.events_processed.fetch_add(1, Ordering::SeqCst) + 1;
                if processed > shared.config.max_events {
                    return Err(SimError::EventLimitExceeded {
                        limit: shared.config.max_events,
                    });
                }
                // Per-worker spin budget: zero when the event's shard homes
                // only continuations (nothing to spin for). Every worker is
                // parked between parallel rounds, so the coordinator is the
                // sole granter here too — a solo burst.
                let source = GrantSource::solo(&shared.coord, shared.spin_map.for_worker(worker));
                execute_event(shared, event, worker, false, &source);
            } else {
                // Parallel instant: every active shard drains its events at
                // `min_time` on its own worker; effects buffer into the
                // per-worker outboxes and merge canonically afterwards.
                shared.parallel_rounds.fetch_add(1, Ordering::SeqCst);
                for &w in &active {
                    let ctrl = &shared.shards[w].ctrl;
                    ctrl.round_time.store(min_time, Ordering::SeqCst);
                    ctrl.state.store(W_REQUESTED, Ordering::SeqCst);
                    if let Some(t) = ctrl.os.get() {
                        t.unpark();
                    }
                }
                let mut spins = 0u32;
                loop {
                    let all_done = active
                        .iter()
                        .all(|&w| shared.shards[w].ctrl.state.load(Ordering::SeqCst) == W_DONE);
                    if all_done {
                        break;
                    }
                    if spins < spin {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::park();
                    }
                }
                for &w in &active {
                    let _ = shared.shards[w].ctrl.state.compare_exchange(
                        W_DONE,
                        W_IDLE,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
                self.merge_effects();
            }
        }
    }

    /// Apply every buffered effect in ascending parent-sequence order,
    /// assigning fresh global sequence numbers in that order. Each worker's
    /// vector is already sorted (it executed its events in sequence order),
    /// so this is a k-way merge.
    fn merge_effects(&self) {
        let shared = &self.shared;
        let mut lists: Vec<std::vec::IntoIter<(u64, Effect)>> = shared
            .shards
            .iter()
            .map(|s| std::mem::take(&mut *s.effects.lock()).into_iter())
            .collect();
        let mut heads: Vec<Option<(u64, Effect)>> = lists.iter_mut().map(|l| l.next()).collect();
        let ctl = EngineCtl {
            shared: Arc::clone(shared),
        };
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some((seq, _)) = head {
                    if best.is_none_or(|b| *seq < heads[b].as_ref().expect("head").0) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (_, effect) = heads[i].take().expect("selected head");
            heads[i] = lists[i].next();
            match effect {
                Effect::Push { time, shard, kind } => shared.push_direct(time, kind, shard),
                Effect::Action(f) => {
                    // Runs with no instant context: its pushes go directly
                    // into the shards, in canonical order.
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&ctl))) {
                        shared.record_panic("merge-action".to_string(), panic_message(&*payload));
                    }
                }
            }
        }
    }

    fn spawn_workers(&self) {
        let mut joins = self.shared.worker_joins.lock();
        for w in 0..self.shared.num_workers() {
            let shared = Arc::clone(&self.shared);
            let join = std::thread::Builder::new()
                .name(format!("sim-worker-{w}"))
                .spawn(move || worker_main(shared, w))
                .expect("failed to spawn scheduler worker");
            joins.push(join);
        }
    }

    /// Signal every worker to quit and join them. A worker that is still
    /// draining a round observes the quit when it tries to publish its
    /// completion and exits instead.
    fn shutdown_workers(&self) {
        let joins: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.worker_joins.lock());
        if joins.is_empty() {
            return;
        }
        for shard in &self.shared.shards {
            shard.ctrl.state.swap(W_QUIT, Ordering::SeqCst);
            if let Some(t) = shard.ctrl.os.get() {
                t.unpark();
            }
        }
        for join in joins {
            let _ = join.join();
        }
    }

    fn report(&self) -> RunReport {
        RunReport {
            final_time: self.shared.now(),
            events: self.shared.events_processed.load(Ordering::SeqCst),
            context_switches: self.shared.context_switches.load(Ordering::SeqCst),
            threads_spawned: self.shared.threads_spawned.load(Ordering::SeqCst),
            parallel_rounds: self.shared.parallel_rounds.load(Ordering::SeqCst),
        }
    }

    fn teardown(&self) {
        // Release every thread still waiting for the baton so its OS thread
        // can exit, then join them all. Runs after the scheduler loop ended
        // and the worker pool quit, so this thread owns every slot.
        let mut entries: Vec<(Arc<ThreadSlot>, Option<JoinHandle<()>>)> = Vec::new();
        {
            let mut threads = self.shared.threads.lock();
            for entry in threads.values_mut() {
                entries.push((Arc::clone(&entry.slot), entry.join.take()));
            }
        }
        for (slot, _) in &entries {
            slot.request_shutdown();
        }
        for (slot, _) in &entries {
            // Unwind suspended continuations (destructors of the frames
            // parked on their private stacks must run) and drop never-started
            // bodies — both hold an Arc cycle back to `Shared`.
            slot.teardown_continuation();
            let _ = slot.reclaim_stack();
        }
        for (_, join) in entries {
            if let Some(handle) = join {
                let _ = handle.join();
            }
        }
    }
}

/// Execute one event. For `Wake` events the baton goes to the slot through
/// `source` (the executing worker's — or the coordinator's — handle); for
/// `Call` events the closure runs right here with the instant context
/// installed, so its pushes route correctly.
fn execute_event(
    shared: &Arc<Shared>,
    event: Event,
    worker: usize,
    defer: bool,
    source: &GrantSource<'_>,
) {
    match event.kind {
        EventKind::Wake(tid, cached) => {
            let slot = match cached {
                Some(slot) => Some(slot),
                None => shared
                    .threads
                    .lock()
                    .get(&tid.0)
                    .map(|e| Arc::clone(&e.slot)),
            };
            if let Some(slot) = slot {
                if !slot.is_finished()
                    && slot.grant_and_wait(source, worker, event.time, event.seq, defer)
                {
                    shared.context_switches.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        EventKind::Call(f) => {
            let ctl = EngineCtl {
                shared: Arc::clone(shared),
            };
            set_instant_ctx(Some(InstantCtx {
                engine: shared.token(),
                worker,
                parent_time: event.time,
                parent_seq: event.seq,
                shard: event.shard,
                defer,
                sub: 0,
            }));
            // A panicking scheduler callback must not take down the
            // scheduler loop (teardown would never release the other
            // threads' batons); record it like a thread panic and let the
            // loop head convert it into the run's error.
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&ctl))) {
                shared.record_panic("scheduler-call".to_string(), panic_message(&*payload));
            }
            set_instant_ctx(None);
        }
    }
}

/// Body of one scheduler worker OS thread: wait for a round request, drain
/// this shard's events at the requested instant, publish completion.
fn worker_main(shared: Arc<Shared>, w: usize) {
    let shard = &shared.shards[w];
    shard
        .ctrl
        .os
        .set(std::thread::current())
        .expect("worker registers its handle once");
    shard.sched.register_current();
    let spin = shared.spin_map.scheduler_spin();
    loop {
        // Wait for a command.
        let mut spins = 0u32;
        loop {
            match shard.ctrl.state.load(Ordering::SeqCst) {
                W_REQUESTED => break,
                W_QUIT => return,
                _ => {
                    if spins < spin {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::park();
                    }
                }
            }
        }
        shard.ctrl.state.store(W_RUNNING, Ordering::SeqCst);
        let t = shard.ctrl.round_time.load(Ordering::SeqCst);
        let result = panic::catch_unwind(AssertUnwindSafe(|| drain_instant(&shared, w, t)));
        if let Err(payload) = result {
            set_instant_ctx(None);
            shared.record_panic(format!("sim-worker-{w}"), panic_message(&*payload));
        }
        // Publish completion — unless the engine is tearing down, in which
        // case quit without clobbering the signal.
        if shard
            .ctrl
            .state
            .compare_exchange(W_RUNNING, W_DONE, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        shared.coord.unpark();
    }
}

/// Drain every event of shard `w` at virtual times `<= t`, in sequence
/// order, buffering all effects.
fn drain_instant(shared: &Arc<Shared>, w: usize, t: u64) {
    // One arbitrated burst per drained instant: other active shards grant
    // concurrently and a migrating thread's same-instant wakes can race, so
    // the full protocol stays — but the worker's handle registration is
    // still amortized over the whole burst by the shared source.
    let source = GrantSource::new(&shared.shards[w].sched, shared.spin_map.for_worker(w));
    loop {
        let event = {
            let mut queue = shared.shards[w].queue.lock();
            match queue.peek() {
                Some(Reverse(head)) if head.time <= t => queue.pop().map(|Reverse(e)| e),
                _ => None,
            }
        };
        let Some(event) = event else { break };
        let processed = shared.events_processed.fetch_add(1, Ordering::SeqCst) + 1;
        if processed > shared.config.max_events {
            shared.limit_hit.store(true, Ordering::SeqCst);
            break;
        }
        execute_event(shared, event, w, true, &source);
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.ran {
            self.shutdown_workers();
            self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_engine_runs_to_completion() {
        let mut engine = Engine::new();
        let report = engine.run().unwrap();
        assert_eq!(report.final_time, SimTime::ZERO);
        assert_eq!(report.threads_spawned, 0);
    }

    #[test]
    fn single_thread_advances_virtual_time() {
        let mut engine = Engine::new();
        let observed = Arc::new(AtomicU64::new(0));
        let obs = observed.clone();
        engine.spawn("worker", move |h| {
            h.sleep(SimDuration::from_micros(100));
            obs.store(h.now().as_nanos(), Ordering::SeqCst);
        });
        let report = engine.run().unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 100_000);
        assert_eq!(report.final_time, SimTime::from_micros(100));
        assert_eq!(report.threads_spawned, 1);
    }

    #[test]
    fn threads_interleave_deterministically_by_time() {
        let mut engine = Engine::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, delay) in [("late", 30u64), ("early", 10), ("mid", 20)] {
            let order = order.clone();
            engine.spawn(name, move |h| {
                h.sleep(SimDuration::from_micros(delay));
                order.lock().push(name.to_string());
            });
        }
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn spawn_inside_thread_starts_child() {
        let mut engine = Engine::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        engine.spawn("parent", move |h| {
            let c2 = c.clone();
            h.spawn("child", move |h| {
                h.sleep(SimDuration::from_micros(5));
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
        });
        let report = engine.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(report.threads_spawned, 2);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut engine = Engine::new();
        engine.spawn("stuck", |h| {
            // Park with no one to ever wake us.
            h.park();
        });
        match engine.run() {
            Err(SimError::Deadlock { parked_threads, .. }) => {
                assert_eq!(parked_threads.len(), 1);
                assert!(parked_threads[0].starts_with("stuck"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn thread_panic_is_reported() {
        let mut engine = Engine::new();
        engine.spawn("bad", |_h| panic!("intentional test panic"));
        match engine.run() {
            Err(SimError::ThreadPanic { thread, message }) => {
                assert_eq!(thread, "bad");
                assert!(message.contains("intentional"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guard_triggers() {
        let mut engine = Engine::with_config(EngineConfig {
            max_events: 10,
            name: "tiny".into(),
            ..EngineConfig::default()
        });
        engine.spawn("spinner", |h| loop {
            h.sleep(SimDuration::from_micros(1));
        });
        match engine.run() {
            Err(SimError::EventLimitExceeded { limit }) => assert_eq!(limit, 10),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn run_twice_is_an_error() {
        let mut engine = Engine::new();
        engine.run().unwrap();
        assert!(matches!(engine.run(), Err(SimError::AlreadyRan)));
    }

    #[test]
    fn wake_between_threads() {
        let mut engine = Engine::new();
        let ctl = engine.ctl();
        let woken_at = Arc::new(AtomicU64::new(0));
        let w = woken_at.clone();
        let sleeper = engine.spawn("sleeper", move |h| {
            h.park();
            w.store(h.now().as_nanos(), Ordering::SeqCst);
        });
        engine.spawn("waker", move |h| {
            h.sleep(SimDuration::from_micros(50));
            ctl.wake_at(sleeper, h.now());
        });
        engine.run().unwrap();
        assert_eq!(woken_at.load(Ordering::SeqCst), 50_000);
    }

    #[test]
    fn scheduled_call_runs_at_requested_time() {
        let mut engine = Engine::new();
        let ctl = engine.ctl();
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        ctl.call_at(SimTime::from_micros(25), move |c| {
            s.store(c.now().as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 25_000);
    }

    #[test]
    fn charge_accumulates_until_yield() {
        let mut engine = Engine::new();
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        engine.spawn("computer", move |h| {
            h.charge(SimDuration::from_micros(3));
            h.charge(SimDuration::from_micros(4));
            // Local view includes pending compute.
            assert_eq!(h.now().as_nanos(), 7_000);
            h.flush();
            t2.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(t.load(Ordering::SeqCst), 7_000);
    }

    // ----- multi-worker engine ----------------------------------------------

    fn multi(workers: usize) -> Engine {
        Engine::with_config(EngineConfig {
            tuning: SimTuning::default().with_workers(workers),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn worker_pool_runs_an_empty_engine() {
        for workers in [2, 4] {
            let mut engine = multi(workers);
            let report = engine.run().unwrap();
            assert_eq!(report.final_time, SimTime::ZERO);
            assert_eq!(report.parallel_rounds, 0);
        }
    }

    #[test]
    fn same_instant_events_on_distinct_shards_run_in_parallel_rounds() {
        for workers in [2, 4] {
            let mut engine = multi(workers);
            let hits = Arc::new(AtomicUsize::new(0));
            for shard in 0..4u64 {
                let hits = hits.clone();
                engine.spawn_on(shard, format!("t{shard}"), move |h| {
                    // Everyone wakes at the same instants.
                    for _ in 0..3 {
                        h.sleep(SimDuration::from_micros(10));
                    }
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            let report = engine.run().unwrap();
            assert_eq!(hits.load(Ordering::SeqCst), 4);
            assert!(
                report.parallel_rounds > 0,
                "{workers} workers: same-instant events of distinct shards \
                 must be dispatched in parallel"
            );
            assert_eq!(report.final_time, SimTime::from_micros(30));
        }
    }

    #[test]
    fn virtual_time_and_order_match_across_worker_counts() {
        // A small cross-shard program: per-shard threads sleep, wake each
        // other and spawn children. Per-shard observation logs (appended
        // only by that shard's threads) and the final virtual time must be
        // identical across worker counts.
        fn run(workers: usize) -> (Vec<Vec<u64>>, SimTime) {
            let mut engine = multi(workers);
            let logs: Vec<Arc<Mutex<Vec<u64>>>> =
                (0..4).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
            for shard in 0..4u64 {
                let log = logs[shard as usize].clone();
                engine.spawn_on(shard, format!("t{shard}"), move |h| {
                    for i in 0..5u64 {
                        h.sleep(SimDuration::from_micros(7 + (shard + i) % 3));
                        log.lock().push(h.now().as_nanos());
                        if i == 2 {
                            let log2 = log.clone();
                            h.spawn_on(shard, format!("child{shard}"), move |h| {
                                h.sleep(SimDuration::from_micros(1));
                                log2.lock().push(h.now().as_nanos());
                            });
                        }
                    }
                });
            }
            let report = engine.run().unwrap();
            let logs = logs.iter().map(|l| l.lock().clone()).collect();
            (logs, report.final_time)
        }
        let (logs1, t1) = run(1);
        for workers in [2, 4] {
            let (logs, t) = run(workers);
            assert_eq!(logs, logs1, "{workers} workers diverged");
            assert_eq!(t, t1, "{workers} workers: virtual time diverged");
        }
    }

    #[test]
    fn worker_thread_panic_is_reported_and_torn_down() {
        for workers in [1, 4] {
            let mut engine = multi(workers);
            for shard in 0..4u64 {
                engine.spawn_on(shard, format!("t{shard}"), move |h| {
                    h.sleep(SimDuration::from_micros(10));
                    if shard == 2 {
                        panic!("intentional worker-pool panic");
                    }
                    h.sleep(SimDuration::from_micros(10));
                });
            }
            match engine.run() {
                Err(SimError::ThreadPanic { thread, message }) => {
                    assert_eq!(thread, "t2", "{workers} workers");
                    assert!(message.contains("intentional worker-pool panic"));
                }
                other => panic!("{workers} workers: expected panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn event_limit_stops_a_parallel_run() {
        let mut engine = Engine::with_config(EngineConfig {
            max_events: 40,
            name: "tiny".into(),
            tuning: SimTuning::default().with_workers(4),
        });
        for shard in 0..4u64 {
            engine.spawn_on(shard, format!("spin{shard}"), move |h| loop {
                h.sleep(SimDuration::from_micros(1));
            });
        }
        match engine.run() {
            Err(SimError::EventLimitExceeded { limit }) => assert_eq!(limit, 40),
            other => panic!("expected event limit, got {other:?}"),
        }
    }

    #[test]
    fn cross_shard_wakes_merge_canonically() {
        // Shard-0 and shard-1 threads wake a shard-2 sleeper at the same
        // instant; the sleeper observes exactly one wake time regardless of
        // the worker count.
        fn run(workers: usize) -> u64 {
            let mut engine = multi(workers);
            let ctl = engine.ctl();
            let woken = Arc::new(AtomicU64::new(0));
            let w = woken.clone();
            let sleeper = engine.spawn_on(2, "sleeper", move |h| {
                h.park();
                w.store(h.now().as_nanos(), Ordering::SeqCst);
            });
            for shard in 0..2u64 {
                let ctl = ctl.clone();
                engine.spawn_on(shard, format!("waker{shard}"), move |h| {
                    h.sleep(SimDuration::from_micros(50));
                    ctl.wake_at(sleeper, h.now());
                });
            }
            engine.run().unwrap();
            woken.load(Ordering::SeqCst)
        }
        let t1 = run(1);
        assert_eq!(t1, 50_000);
        assert_eq!(run(2), t1);
        assert_eq!(run(4), t1);
    }

    #[test]
    fn effective_spin_collapses_when_oversubscribed() {
        // Single core: the peer can never run concurrently, spinning only
        // steals its quantum.
        assert_eq!(effective_spin(1000, 1, 1), 0);
        // 2 * workers > cores: at least one worker/thread pair shares a core.
        assert_eq!(effective_spin(1000, 4, 4), 0);
        assert_eq!(effective_spin(1000, 3, 5), 0);
        // Enough cores for every pair: the configured ceiling applies.
        assert_eq!(effective_spin(1000, 2, 4), 1000);
        assert_eq!(effective_spin(1000, 1, 2), 1000);
        // A zero ceiling stays zero regardless of topology.
        assert_eq!(effective_spin(0, 2, 16), 0);
    }

    #[test]
    fn spin_budgets_retune_as_os_threads_home_and_migrate() {
        let map = SpinMap::new(500, 2, 16);
        // No OS-backed threads homed anywhere: continuation-only shards
        // never wait on another OS thread, so nobody spins.
        assert_eq!(map.for_worker(0), 0);
        assert_eq!(map.for_worker(1), 0);
        map.home_os_thread(0);
        assert_eq!(map.for_worker(0), 500);
        assert_eq!(map.for_worker(1), 0);
        assert_eq!(map.for_key(2), 500); // key 2 -> worker 0 with 2 workers
                                         // A migration re-shards the thread: the budget follows it, and the
                                         // vacated worker drops back to zero.
        map.rehome_os_thread(0, 1);
        assert_eq!(map.for_worker(0), 0);
        assert_eq!(map.for_worker(1), 500);
        // Same-worker migration is a no-op.
        map.rehome_os_thread(1, 3);
        assert_eq!(map.for_worker(1), 500);
        // The thread finished: its worker stops spinning.
        map.unhome_os_thread(3);
        assert_eq!(map.for_worker(1), 0);
    }

    #[test]
    fn set_shard_retunes_spin_budgets_after_migration() {
        // End-to-end flavour of the unit test above: an OS-thread-backed
        // (baton) simulated thread migrating via SimHandle::set_shard must
        // re-tune the per-worker budgets while the engine runs.
        let mut engine = multi(2);
        let observed = Arc::new(Mutex::new(Vec::new()));
        let obs = Arc::clone(&observed);
        let shared = Arc::clone(&engine.shared);
        let ctl = engine.ctl();
        ctl.spawn_on_with(0, "migrant", SpawnOptions::baton(), move |h| {
            obs.lock().push((
                shared.spin_map.os_backed_count(0),
                shared.spin_map.os_backed_count(1),
            ));
            h.set_shard(1);
            h.yield_now();
            obs.lock().push((
                shared.spin_map.os_backed_count(0),
                shared.spin_map.os_backed_count(1),
            ));
        });
        engine.run().unwrap();
        let seen = observed.lock().clone();
        // Spawned on shard 0 (worker 0), migrated to shard 1 (worker 1).
        assert_eq!(seen, vec![(1, 0), (0, 1)]);
    }
}
