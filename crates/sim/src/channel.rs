//! Virtual-time message channels.
//!
//! A [`SimChannel`] is an unbounded MPMC queue living in virtual time:
//! senders may attach a delivery delay (used by the Madeleine transport to
//! model network latency), and receivers block in virtual time until a
//! message is available. Delivery order is deterministic: messages become
//! visible in (delivery time, send sequence) order.
//!
//! The module also provides [`TickOutbox`], the per-tick accumulator behind
//! message batching: items addressed to the same key within one virtual-time
//! tick are collected and handed back as one unit when the tick ends.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::EngineCtl;
use crate::handle::SimHandle;
use crate::time::{SimDuration, SimTime};
use crate::wait::WaitSet;

struct Pending<T> {
    deliver_at: u64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: the BinaryHeap becomes a min-heap on (time, seq).
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct Inner<T> {
    /// Messages whose delivery time has not been reached yet.
    in_flight: Mutex<BinaryHeap<Pending<T>>>,
    /// Messages ready to be received, in delivery order.
    ready: Mutex<VecDeque<T>>,
    waiters: WaitSet,
    seq: AtomicU64,
    /// Shard the promotion callbacks run on — the receivers' shard, so that
    /// delivery events serialize with the receiving node's other events.
    shard: u64,
    ctl: EngineCtl,
}

impl<T> Inner<T> {
    /// Move every in-flight message whose delivery time has passed into the
    /// ready queue.
    fn promote(&self, now: SimTime) {
        let mut in_flight = self.in_flight.lock();
        let mut ready = self.ready.lock();
        while let Some(top) = in_flight.peek() {
            if top.deliver_at <= now.as_nanos() {
                let msg = in_flight.pop().expect("peeked");
                ready.push_back(msg.value);
            } else {
                break;
            }
        }
    }
}

/// Sending half of a simulation channel. Cheap to clone.
pub struct SimSender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of a simulation channel. Cheap to clone (multiple consumers
/// are allowed; each message is delivered to exactly one receiver).
pub struct SimReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SimSender<T> {
    fn clone(&self) -> Self {
        SimSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for SimReceiver<T> {
    fn clone(&self) -> Self {
        SimReceiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new channel bound to the engine behind `ctl`, on shard 0.
/// Receivers should live on the channel's shard; multi-node layers use
/// [`channel_on`] with the receiving node's shard key.
pub fn channel<T: Send + 'static>(ctl: EngineCtl) -> (SimSender<T>, SimReceiver<T>) {
    channel_on(ctl, 0)
}

/// Create a new channel whose delivery callbacks run on shard `shard_key`
/// (the shard of the receiving side).
pub fn channel_on<T: Send + 'static>(
    ctl: EngineCtl,
    shard_key: u64,
) -> (SimSender<T>, SimReceiver<T>) {
    let inner = Arc::new(Inner {
        in_flight: Mutex::new(BinaryHeap::new()),
        ready: Mutex::new(VecDeque::new()),
        waiters: WaitSet::new(),
        seq: AtomicU64::new(0),
        shard: shard_key,
        ctl,
    });
    (
        SimSender {
            inner: Arc::clone(&inner),
        },
        SimReceiver { inner },
    )
}

impl<T: Send + 'static> SimSender<T> {
    /// Send a message that becomes visible immediately (at the sender's
    /// current local time).
    pub fn send(&self, handle: &SimHandle, value: T) {
        self.send_delayed(handle, value, SimDuration::ZERO);
    }

    /// Send a message that becomes visible `delay` after the sender's current
    /// local time. Used to model network transfer times.
    pub fn send_delayed(&self, handle: &SimHandle, value: T, delay: SimDuration) {
        let deliver_at = handle.now() + delay;
        self.enqueue_at(deliver_at, value);
    }

    /// Send from outside any simulated thread (scheduler callbacks, setup
    /// code): the message becomes visible `delay` after the global clock.
    pub fn send_from_ctl(&self, ctl: &EngineCtl, value: T, delay: SimDuration) {
        let deliver_at = ctl.now() + delay;
        self.enqueue_at(deliver_at, value);
    }

    /// Send a message that becomes visible at the absolute virtual time
    /// `deliver_at`. Used by transport backends whose delivery times come
    /// from their own link state (NIC reservations, retransmission timers)
    /// rather than from a caller-relative delay. A `deliver_at` in the past
    /// delivers at the current instant.
    pub fn send_at(&self, deliver_at: SimTime, value: T) {
        self.enqueue_at(deliver_at, value);
    }

    fn enqueue_at(&self, deliver_at: SimTime, value: T) {
        // The whole enqueue is deferred to the canonical merge point when a
        // parallel instant is executing (and runs immediately otherwise):
        // the per-channel sequence number breaks ties between messages with
        // equal delivery times, so it must be assigned in canonical event
        // order, not in the wall-clock order two workers happened to race.
        let inner = Arc::clone(&self.inner);
        self.inner.ctl.defer_or_run(move |ctl| {
            let seq = inner.seq.fetch_add(1, Ordering::SeqCst);
            inner.in_flight.lock().push(Pending {
                deliver_at: deliver_at.as_nanos(),
                seq,
                value,
            });
            // At delivery time, promote the message and wake one waiting
            // receiver — on the receivers' shard.
            let inner2 = Arc::clone(&inner);
            ctl.call_at_on(inner.shard, deliver_at, move |ctl| {
                inner2.promote(ctl.now());
                inner2.waiters.notify_one(ctl, SimDuration::ZERO);
            });
        });
    }

    /// Number of messages not yet consumed (in flight + ready).
    pub fn queued(&self) -> usize {
        self.inner.in_flight.lock().len() + self.inner.ready.lock().len()
    }
}

impl<T: Send + 'static> SimReceiver<T> {
    /// Receive the next message, blocking in virtual time until one is
    /// available. Blocks forever (deadlock, detected by the engine) if no
    /// message ever arrives.
    pub fn recv(&self, handle: &mut SimHandle) -> T {
        loop {
            self.inner.promote(handle.now());
            if let Some(v) = self.inner.ready.lock().pop_front() {
                return v;
            }
            self.inner.waiters.register(handle);
            handle.park_with(crate::engine::BlockReason::Channel);
            self.inner.waiters.deregister(handle);
        }
    }

    /// Receive a message if one is ready at the current virtual time.
    pub fn try_recv(&self, handle: &SimHandle) -> Option<T> {
        self.inner.promote(handle.now());
        self.inner.ready.lock().pop_front()
    }

    /// Number of messages ready to be received right now.
    pub fn ready_len(&self, handle: &SimHandle) -> usize {
        self.inner.promote(handle.now());
        self.inner.ready.lock().len()
    }
}

/// Per-tick accumulator used to batch messages.
///
/// Items pushed for the same `key` at the same virtual-time `tick` land in
/// one bucket. [`TickOutbox::push`] tells the caller when it opened a new
/// bucket — that is the moment to schedule exactly one flush for it (with
/// [`crate::EngineCtl::call_at`] at `tick`); the flush then drains the bucket
/// with [`TickOutbox::take`] and forwards the whole batch as a single unit.
/// Items pushed for the same (key, tick) *after* its flush ran simply open a
/// fresh bucket, so no item is ever lost — a tick may occasionally produce
/// two batches, never zero.
///
/// Within a bucket, items are ordered by the canonical event order of their
/// pushes (like [`crate::WaitSet`] waiters), not by wall-clock push order,
/// so batches assembled from same-instant pushes racing across scheduler
/// workers still drain deterministically. With one worker the two orders
/// coincide.
pub struct TickOutbox<K, T> {
    pending: Mutex<HashMap<(K, u64), Bucket<T>>>,
}

/// One bucket's items, each tagged with its canonical order key.
type Bucket<T> = Vec<((u64, u64, u64), T)>;

impl<K: Eq + Hash + Copy, T> TickOutbox<K, T> {
    /// An empty outbox.
    pub fn new() -> Self {
        TickOutbox {
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Append `item` to the bucket for (`key`, `tick`). Returns `true` when
    /// this opened the bucket: the caller must schedule a flush at `tick`.
    pub fn push(&self, key: K, tick: SimTime, item: T) -> bool {
        let order = crate::engine::next_order_key();
        let mut pending = self.pending.lock();
        let bucket = pending.entry((key, tick.as_nanos())).or_default();
        let at = bucket.partition_point(|(k, _)| *k < order);
        bucket.insert(at, (order, item));
        bucket.len() == 1
    }

    /// Drain and return the bucket for (`key`, `tick`); empty if the bucket
    /// was already flushed.
    pub fn take(&self, key: K, tick: SimTime) -> Vec<T> {
        self.pending
            .lock()
            .remove(&(key, tick.as_nanos()))
            .map(|items| items.into_iter().map(|(_, item)| item).collect())
            .unwrap_or_default()
    }

    /// Drain every unflushed bucket for `key`, oldest tick first. Used to
    /// flush a link eagerly when a later message must not overtake the
    /// parked items (the scheduled per-bucket flush then finds an empty
    /// bucket and does nothing).
    pub fn take_all(&self, key: K) -> Vec<(SimTime, Vec<T>)> {
        let mut pending = self.pending.lock();
        let ticks: Vec<u64> = pending
            .keys()
            .filter(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .collect();
        let mut buckets: Vec<(SimTime, Vec<T>)> = ticks
            .into_iter()
            .filter_map(|t| {
                pending.remove(&(key, t)).map(|items| {
                    (
                        SimTime::from_nanos(t),
                        items.into_iter().map(|(_, item)| item).collect(),
                    )
                })
            })
            .collect();
        buckets.sort_by_key(|(t, _)| *t);
        buckets
    }

    /// Total number of items currently waiting in unflushed buckets.
    pub fn pending(&self) -> usize {
        self.pending.lock().values().map(Vec::len).sum()
    }
}

impl<K: Eq + Hash + Copy, T> Default for TickOutbox<K, T> {
    fn default() -> Self {
        TickOutbox::new()
    }
}

impl<K, T> std::fmt::Debug for TickOutbox<K, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TickOutbox({} buckets)", self.pending.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn send_recv_roundtrip() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let got = Arc::new(StdAtomicU64::new(0));
        let g = got.clone();
        engine.spawn("receiver", move |h| {
            let v = rx.recv(h);
            g.store(v as u64, Ordering::SeqCst);
        });
        engine.spawn("sender", move |h| {
            h.sleep(SimDuration::from_micros(3));
            tx.send(h, 17);
        });
        engine.run().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn delayed_send_delivers_at_the_right_time() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<&'static str>(engine.ctl());
        let when = Arc::new(StdAtomicU64::new(0));
        let w = when.clone();
        engine.spawn("receiver", move |h| {
            let _ = rx.recv(h);
            w.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        engine.spawn("sender", move |h| {
            tx.send_delayed(h, "page", SimDuration::from_micros(138));
        });
        engine.run().unwrap();
        assert_eq!(when.load(Ordering::SeqCst), 138_000);
    }

    #[test]
    fn messages_arrive_in_delivery_time_order() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..3 {
                o.lock().push(rx.recv(h));
            }
        });
        engine.spawn("sender", move |h| {
            // Sent in one order, delivered in delay order.
            tx.send_delayed(h, 3, SimDuration::from_micros(30));
            tx.send_delayed(h, 1, SimDuration::from_micros(10));
            tx.send_delayed(h, 2, SimDuration::from_micros(20));
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec![1, 2, 3]);
    }

    #[test]
    fn equal_delivery_times_preserve_send_order() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..4 {
                o.lock().push(rx.recv(h));
            }
        });
        engine.spawn("sender", move |h| {
            for i in 0..4 {
                tx.send_delayed(h, i, SimDuration::from_micros(5));
            }
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let results = Arc::new(Mutex::new(Vec::new()));
        let r = results.clone();
        engine.spawn("poller", move |h| {
            r.lock().push(rx.try_recv(h).is_none());
            h.sleep(SimDuration::from_micros(10));
            r.lock().push(rx.try_recv(h) == Some(9));
        });
        engine.spawn("sender", move |h| {
            h.sleep(SimDuration::from_micros(5));
            tx.send(h, 9);
        });
        engine.run().unwrap();
        assert_eq!(results.lock().clone(), vec![true, true]);
    }

    #[test]
    fn multiple_receivers_each_get_one_message() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let total = Arc::new(StdAtomicU64::new(0));
        for i in 0..3 {
            let rx = rx.clone();
            let total = total.clone();
            engine.spawn(format!("recv{i}"), move |h| {
                let v = rx.recv(h);
                total.fetch_add(v as u64, Ordering::SeqCst);
            });
        }
        engine.spawn("sender", move |h| {
            for v in [1, 10, 100] {
                tx.send(h, v);
            }
        });
        engine.run().unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 111);
    }

    #[test]
    fn tick_outbox_groups_by_key_and_tick() {
        let outbox: TickOutbox<u32, &'static str> = TickOutbox::new();
        let t0 = SimTime::from_micros(10);
        let t1 = SimTime::from_micros(20);
        assert!(outbox.push(1, t0, "a"), "first item opens the bucket");
        assert!(!outbox.push(1, t0, "b"), "second item joins it");
        assert!(outbox.push(2, t0, "c"), "different key, own bucket");
        assert!(outbox.push(1, t1, "d"), "different tick, own bucket");
        assert_eq!(outbox.pending(), 4);
        assert_eq!(outbox.take(1, t0), vec!["a", "b"]);
        assert_eq!(outbox.take(1, t0), Vec::<&str>::new(), "drained");
        assert_eq!(outbox.pending(), 2);
        // A push after the flush opens a fresh bucket for the same slot.
        assert!(outbox.push(1, t0, "late"));
        assert_eq!(outbox.take(1, t0), vec!["late"]);
    }

    #[test]
    fn tick_outbox_take_all_drains_a_key_in_tick_order() {
        let outbox: TickOutbox<u32, u32> = TickOutbox::new();
        let (t0, t1) = (SimTime::from_micros(30), SimTime::from_micros(10));
        outbox.push(1, t0, 100);
        outbox.push(1, t1, 200);
        outbox.push(2, t0, 300);
        let drained = outbox.take_all(1);
        assert_eq!(drained, vec![(t1, vec![200]), (t0, vec![100])]);
        assert_eq!(outbox.pending(), 1, "other keys untouched");
        assert!(outbox.take_all(1).is_empty());
    }

    #[test]
    fn tick_outbox_flush_via_call_at_sees_all_same_tick_items() {
        // Two threads push for the same destination at the same virtual time;
        // the flush scheduled by the bucket opener collects both items.
        let mut engine = Engine::new();
        let outbox: Arc<TickOutbox<u8, u32>> = Arc::new(TickOutbox::new());
        let flushed = Arc::new(Mutex::new(Vec::new()));
        for v in [1u32, 2] {
            let outbox = outbox.clone();
            let flushed = flushed.clone();
            engine.spawn(format!("pusher{v}"), move |h| {
                h.sleep(SimDuration::from_micros(5));
                let tick = h.now();
                if outbox.push(7, tick, v) {
                    let outbox = outbox.clone();
                    let flushed = flushed.clone();
                    h.ctl().call_at(tick, move |_ctl| {
                        flushed.lock().push(outbox.take(7, tick));
                    });
                }
            });
        }
        engine.run().unwrap();
        assert_eq!(flushed.lock().clone(), vec![vec![1, 2]]);
    }

    #[test]
    fn queued_counts_unconsumed_messages() {
        let mut engine = Engine::new();
        let (tx, _rx) = channel::<u32>(engine.ctl());
        let tx2 = tx.clone();
        engine.spawn("sender", move |h| {
            tx2.send_delayed(h, 1, SimDuration::from_micros(1000));
            assert_eq!(tx2.queued(), 1);
        });
        // The undelivered message keeps no thread alive, so the run finishes.
        engine.run().unwrap();
    }
}
