//! Virtual-time message channels.
//!
//! A [`SimChannel`] is an unbounded MPMC queue living in virtual time:
//! senders may attach a delivery delay (used by the Madeleine transport to
//! model network latency), and receivers block in virtual time until a
//! message is available. Delivery order is deterministic: messages become
//! visible in (delivery time, send sequence) order.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::EngineCtl;
use crate::handle::SimHandle;
use crate::time::{SimDuration, SimTime};
use crate::wait::WaitSet;

struct Pending<T> {
    deliver_at: u64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: the BinaryHeap becomes a min-heap on (time, seq).
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct Inner<T> {
    /// Messages whose delivery time has not been reached yet.
    in_flight: Mutex<BinaryHeap<Pending<T>>>,
    /// Messages ready to be received, in delivery order.
    ready: Mutex<VecDeque<T>>,
    waiters: WaitSet,
    seq: AtomicU64,
    ctl: EngineCtl,
}

impl<T> Inner<T> {
    /// Move every in-flight message whose delivery time has passed into the
    /// ready queue.
    fn promote(&self, now: SimTime) {
        let mut in_flight = self.in_flight.lock();
        let mut ready = self.ready.lock();
        while let Some(top) = in_flight.peek() {
            if top.deliver_at <= now.as_nanos() {
                let msg = in_flight.pop().expect("peeked");
                ready.push_back(msg.value);
            } else {
                break;
            }
        }
    }
}

/// Sending half of a simulation channel. Cheap to clone.
pub struct SimSender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of a simulation channel. Cheap to clone (multiple consumers
/// are allowed; each message is delivered to exactly one receiver).
pub struct SimReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SimSender<T> {
    fn clone(&self) -> Self {
        SimSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for SimReceiver<T> {
    fn clone(&self) -> Self {
        SimReceiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new channel bound to the engine behind `ctl`.
pub fn channel<T: Send + 'static>(ctl: EngineCtl) -> (SimSender<T>, SimReceiver<T>) {
    let inner = Arc::new(Inner {
        in_flight: Mutex::new(BinaryHeap::new()),
        ready: Mutex::new(VecDeque::new()),
        waiters: WaitSet::new(),
        seq: AtomicU64::new(0),
        ctl,
    });
    (
        SimSender {
            inner: Arc::clone(&inner),
        },
        SimReceiver { inner },
    )
}

impl<T: Send + 'static> SimSender<T> {
    /// Send a message that becomes visible immediately (at the sender's
    /// current local time).
    pub fn send(&self, handle: &SimHandle, value: T) {
        self.send_delayed(handle, value, SimDuration::ZERO);
    }

    /// Send a message that becomes visible `delay` after the sender's current
    /// local time. Used to model network transfer times.
    pub fn send_delayed(&self, handle: &SimHandle, value: T, delay: SimDuration) {
        let deliver_at = handle.now() + delay;
        self.enqueue_at(deliver_at, value);
    }

    /// Send from outside any simulated thread (scheduler callbacks, setup
    /// code): the message becomes visible `delay` after the global clock.
    pub fn send_from_ctl(&self, ctl: &EngineCtl, value: T, delay: SimDuration) {
        let deliver_at = ctl.now() + delay;
        self.enqueue_at(deliver_at, value);
    }

    fn enqueue_at(&self, deliver_at: SimTime, value: T) {
        let seq = self.inner.seq.fetch_add(1, Ordering::SeqCst);
        self.inner.in_flight.lock().push(Pending {
            deliver_at: deliver_at.as_nanos(),
            seq,
            value,
        });
        // At delivery time, promote the message and wake one waiting receiver.
        let inner = Arc::clone(&self.inner);
        self.inner.ctl.call_at(deliver_at, move |ctl| {
            inner.promote(ctl.now());
            inner.waiters.notify_one(ctl, SimDuration::ZERO);
        });
    }

    /// Number of messages not yet consumed (in flight + ready).
    pub fn queued(&self) -> usize {
        self.inner.in_flight.lock().len() + self.inner.ready.lock().len()
    }
}

impl<T: Send + 'static> SimReceiver<T> {
    /// Receive the next message, blocking in virtual time until one is
    /// available. Blocks forever (deadlock, detected by the engine) if no
    /// message ever arrives.
    pub fn recv(&self, handle: &mut SimHandle) -> T {
        loop {
            self.inner.promote(handle.now());
            if let Some(v) = self.inner.ready.lock().pop_front() {
                return v;
            }
            self.inner.waiters.register(handle);
            handle.park();
            self.inner.waiters.deregister(handle);
        }
    }

    /// Receive a message if one is ready at the current virtual time.
    pub fn try_recv(&self, handle: &SimHandle) -> Option<T> {
        self.inner.promote(handle.now());
        self.inner.ready.lock().pop_front()
    }

    /// Number of messages ready to be received right now.
    pub fn ready_len(&self, handle: &SimHandle) -> usize {
        self.inner.promote(handle.now());
        self.inner.ready.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn send_recv_roundtrip() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let got = Arc::new(StdAtomicU64::new(0));
        let g = got.clone();
        engine.spawn("receiver", move |h| {
            let v = rx.recv(h);
            g.store(v as u64, Ordering::SeqCst);
        });
        engine.spawn("sender", move |h| {
            h.sleep(SimDuration::from_micros(3));
            tx.send(h, 17);
        });
        engine.run().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn delayed_send_delivers_at_the_right_time() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<&'static str>(engine.ctl());
        let when = Arc::new(StdAtomicU64::new(0));
        let w = when.clone();
        engine.spawn("receiver", move |h| {
            let _ = rx.recv(h);
            w.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        engine.spawn("sender", move |h| {
            tx.send_delayed(h, "page", SimDuration::from_micros(138));
        });
        engine.run().unwrap();
        assert_eq!(when.load(Ordering::SeqCst), 138_000);
    }

    #[test]
    fn messages_arrive_in_delivery_time_order() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..3 {
                o.lock().push(rx.recv(h));
            }
        });
        engine.spawn("sender", move |h| {
            // Sent in one order, delivered in delay order.
            tx.send_delayed(h, 3, SimDuration::from_micros(30));
            tx.send_delayed(h, 1, SimDuration::from_micros(10));
            tx.send_delayed(h, 2, SimDuration::from_micros(20));
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec![1, 2, 3]);
    }

    #[test]
    fn equal_delivery_times_preserve_send_order() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..4 {
                o.lock().push(rx.recv(h));
            }
        });
        engine.spawn("sender", move |h| {
            for i in 0..4 {
                tx.send_delayed(h, i, SimDuration::from_micros(5));
            }
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let results = Arc::new(Mutex::new(Vec::new()));
        let r = results.clone();
        engine.spawn("poller", move |h| {
            r.lock().push(rx.try_recv(h).is_none());
            h.sleep(SimDuration::from_micros(10));
            r.lock().push(rx.try_recv(h) == Some(9));
        });
        engine.spawn("sender", move |h| {
            h.sleep(SimDuration::from_micros(5));
            tx.send(h, 9);
        });
        engine.run().unwrap();
        assert_eq!(results.lock().clone(), vec![true, true]);
    }

    #[test]
    fn multiple_receivers_each_get_one_message() {
        let mut engine = Engine::new();
        let (tx, rx) = channel::<u32>(engine.ctl());
        let total = Arc::new(StdAtomicU64::new(0));
        for i in 0..3 {
            let rx = rx.clone();
            let total = total.clone();
            engine.spawn(format!("recv{i}"), move |h| {
                let v = rx.recv(h);
                total.fetch_add(v as u64, Ordering::SeqCst);
            });
        }
        engine.spawn("sender", move |h| {
            for v in [1, 10, 100] {
                tx.send(h, v);
            }
        });
        engine.run().unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 111);
    }

    #[test]
    fn queued_counts_unconsumed_messages() {
        let mut engine = Engine::new();
        let (tx, _rx) = channel::<u32>(engine.ctl());
        let tx2 = tx.clone();
        engine.spawn("sender", move |h| {
            tx2.send_delayed(h, 1, SimDuration::from_micros(1000));
            assert_eq!(tx2.queued(), 1);
        });
        // The undelivered message keeps no thread alive, so the run finishes.
        engine.run().unwrap();
    }
}
