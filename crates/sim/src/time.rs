//! Virtual time primitives.
//!
//! The simulation clock is a single global monotonic counter measured in
//! nanoseconds. All costs charged by the PM2/DSM layers (page faults, RPC
//! latencies, page transfers, protocol overheads) are expressed as
//! [`SimDuration`] values and accumulate into [`SimTime`].
//!
//! Nanosecond resolution is used (rather than the microseconds the paper
//! reports) so that sub-microsecond costs such as per-access charges or
//! inline locality checks do not round to zero.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((us * 1_000.0).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_nanos(), 15_000);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
    }

    #[test]
    fn duration_from_fractional_micros() {
        let d = SimDuration::from_micros_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
        assert!((SimDuration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_micros(4));
    }

    #[test]
    fn duration_sum_and_scaling() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&x| SimDuration::from_micros(x))
            .sum();
        assert_eq!(total, SimDuration::from_micros(6));
        assert_eq!(total * 2, SimDuration::from_micros(12));
        assert_eq!(total / 3, SimDuration::from_micros(2));
    }

    #[test]
    fn display_is_in_microseconds() {
        assert_eq!(format!("{}", SimDuration::from_nanos(1234)), "1.234us");
        assert_eq!(format!("{}", SimTime::from_micros(7)), "7.000us");
    }
}
