//! Wait sets: the building block for blocking simulation primitives.
//!
//! A [`WaitSet`] records the identities of simulated threads that are blocked
//! waiting for some condition. Because at most one simulated thread executes
//! at a time, "register then park" is atomic with respect to all other
//! simulated threads, so the classic lost-wake-up race cannot occur as long
//! as waiters re-check their condition in a loop (spurious wake-ups are
//! allowed and harmless).
//!
//! The park itself goes through the scheduler baton
//! ([`SimHandle::park`] → `ThreadSlot`), so wait sets automatically inherit
//! whichever hand-off implementation the engine was configured with
//! ([`crate::SimTuning`]); nothing here depends on the baton's mechanics.
//!
//! Waiters are ordered by a *canonical key* — the global sequence number of
//! the event whose execution registered them (plus an emission index within
//! that event) — rather than by wall-clock registration order. With one
//! scheduler worker the two orders coincide (events execute in sequence
//! order), so this is exactly the historical FIFO; with several workers the
//! canonical key keeps the pop order a pure function of the event order even
//! when same-instant registrations race across workers.

use parking_lot::Mutex;

use crate::engine::{next_order_key, BlockReason, EngineCtl};
use crate::handle::SimHandle;
use crate::thread::ThreadId;
use crate::time::SimDuration;

/// A set of blocked simulated threads, FIFO in canonical event order.
#[derive(Default)]
pub struct WaitSet {
    /// Waiters keyed by `(parent event time, parent event seq, emission
    /// index)` — the engine's execution order — kept sorted ascending (keys
    /// are unique). The waiter's shard key is captured at registration so
    /// wake-ups skip the engine's thread-table lookup (a parked thread
    /// cannot migrate, so the key cannot go stale while registered).
    waiters: Mutex<Vec<(OrderKey, ThreadId, u64)>>,
}

type OrderKey = (u64, u64, u64);

impl WaitSet {
    /// Creates an empty wait set.
    pub fn new() -> Self {
        WaitSet {
            waiters: Mutex::new(Vec::new()),
        }
    }

    /// Number of registered waiters.
    pub fn len(&self) -> usize {
        self.waiters.lock().len()
    }

    /// True if no thread is registered.
    pub fn is_empty(&self) -> bool {
        self.waiters.lock().is_empty()
    }

    /// Register the calling thread as a waiter. Must be followed by
    /// [`SimHandle::park`] inside a condition re-check loop.
    pub fn register(&self, handle: &SimHandle) {
        let key = next_order_key();
        let mut waiters = self.waiters.lock();
        let at = waiters.partition_point(|(k, _, _)| *k < key);
        waiters.insert(at, (key, handle.id(), handle.shard()));
    }

    /// Remove the calling thread from the set (used when a waiter gives up,
    /// e.g. after its condition became true through another path).
    pub fn deregister(&self, handle: &SimHandle) {
        self.waiters.lock().retain(|&(_, t, _)| t != handle.id());
    }

    /// Wake the canonically oldest waiter (if any) after `delay`, removing
    /// it from the set. Returns the thread that was woken.
    pub fn notify_one(&self, ctl: &EngineCtl, delay: SimDuration) -> Option<ThreadId> {
        let woken = {
            let mut waiters = self.waiters.lock();
            if waiters.is_empty() {
                None
            } else {
                let (_, tid, shard) = waiters.remove(0);
                Some((tid, shard))
            }
        };
        if let Some((tid, shard)) = woken {
            let at = ctl.now() + delay;
            ctl.shared.schedule_wake_keyed(tid, at, shard);
        }
        woken.map(|(tid, _)| tid)
    }

    /// Wake every registered waiter after `delay`, clearing the set.
    /// Returns the number of threads woken.
    pub fn notify_all(&self, ctl: &EngineCtl, delay: SimDuration) -> usize {
        let drained: Vec<(OrderKey, ThreadId, u64)> = std::mem::take(&mut *self.waiters.lock());
        let at = ctl.now() + delay;
        for &(_, tid, shard) in &drained {
            ctl.shared.schedule_wake_keyed(tid, at, shard);
        }
        drained.len()
    }

    /// Block the calling thread on this wait set until `condition` returns
    /// true. The condition is re-evaluated after every wake-up.
    pub fn wait_until<F: FnMut() -> bool>(&self, handle: &mut SimHandle, condition: F) {
        self.wait_until_why(handle, BlockReason::WaitSet, condition);
    }

    /// [`WaitSet::wait_until`] with a reified blocking reason: callers
    /// annotate *what* the wait models (a DSM page fault, an ack round, a
    /// barrier...) so the engine's block profile attributes the park to the
    /// right cause instead of a generic wait-set entry.
    pub fn wait_until_why<F: FnMut() -> bool>(
        &self,
        handle: &mut SimHandle,
        reason: BlockReason,
        mut condition: F,
    ) {
        loop {
            if condition() {
                return;
            }
            self.register(handle);
            handle.park_with(reason);
            // The park may return spuriously (or after a flush); deregister so
            // we never leave a stale entry if the condition is now true.
            self.deregister(handle);
        }
    }
}

impl std::fmt::Debug for WaitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WaitSet({} waiters)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn wait_until_blocks_until_condition() {
        let mut engine = Engine::new();
        let ws = Arc::new(WaitSet::new());
        let flag = Arc::new(AtomicBool::new(false));
        let done_at = Arc::new(AtomicUsize::new(0));

        let ws2 = ws.clone();
        let flag2 = flag.clone();
        let done2 = done_at.clone();
        engine.spawn("waiter", move |h| {
            ws2.wait_until(h, || flag2.load(Ordering::SeqCst));
            done2.store(h.global_now().as_nanos() as usize, Ordering::SeqCst);
        });

        let ws3 = ws.clone();
        engine.spawn("setter", move |h| {
            h.sleep(SimDuration::from_micros(40));
            flag.store(true, Ordering::SeqCst);
            ws3.notify_one(&h.ctl(), SimDuration::ZERO);
        });

        engine.run().unwrap();
        assert_eq!(done_at.load(Ordering::SeqCst), 40_000);
        assert!(ws.is_empty());
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let mut engine = Engine::new();
        let ws = Arc::new(WaitSet::new());
        let flag = Arc::new(AtomicBool::new(false));
        let woken = Arc::new(AtomicUsize::new(0));

        for i in 0..5 {
            let ws = ws.clone();
            let flag = flag.clone();
            let woken = woken.clone();
            engine.spawn(format!("waiter{i}"), move |h| {
                ws.wait_until(h, || flag.load(Ordering::SeqCst));
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ws2 = ws.clone();
        engine.spawn("broadcaster", move |h| {
            h.sleep(SimDuration::from_micros(10));
            flag.store(true, Ordering::SeqCst);
            ws2.notify_all(&h.ctl(), SimDuration::ZERO);
        });
        engine.run().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn spurious_wakeup_is_harmless() {
        let mut engine = Engine::new();
        let ws = Arc::new(WaitSet::new());
        let flag = Arc::new(AtomicBool::new(false));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));

        let ws2 = ws.clone();
        let flag2 = flag.clone();
        let order2 = order.clone();
        let waiter = engine.spawn("waiter", move |h| {
            ws2.wait_until(h, || flag2.load(Ordering::SeqCst));
            order2.lock().push("woken-for-real");
        });

        let ws3 = ws.clone();
        engine.spawn("noisy", move |h| {
            // Wake the waiter directly without making the condition true.
            h.sleep(SimDuration::from_micros(5));
            h.wake(waiter, SimDuration::ZERO);
            h.sleep(SimDuration::from_micros(5));
            flag.store(true, Ordering::SeqCst);
            ws3.notify_one(&h.ctl(), SimDuration::ZERO);
        });

        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec!["woken-for-real"]);
    }

    #[test]
    fn registration_order_follows_execution_order_across_instants() {
        // "late" is spawned first (its wake event gets the lower sequence
        // number) but sleeps longer, so "early" registers first in execution
        // order. notify_one must wake "early" — the historical wall-clock
        // FIFO — not the thread with the smaller event sequence number.
        let mut engine = Engine::new();
        let ws = Arc::new(WaitSet::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (name, sleep_us) in [("late", 100u64), ("early", 50)] {
            let ws = ws.clone();
            let order = order.clone();
            engine.spawn(name, move |h| {
                h.sleep(SimDuration::from_micros(sleep_us));
                ws.register(h);
                h.park();
                ws.deregister(h);
                order.lock().push(name);
            });
        }
        let ws2 = ws.clone();
        engine.spawn("notifier", move |h| {
            h.sleep(SimDuration::from_micros(200));
            ws2.notify_one(&h.ctl(), SimDuration::ZERO);
            h.sleep(SimDuration::from_micros(10));
            ws2.notify_one(&h.ctl(), SimDuration::ZERO);
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), vec!["early", "late"]);
    }

    #[test]
    fn deregister_removes_specific_thread() {
        let mut engine = Engine::new();
        let ws = Arc::new(WaitSet::new());
        let ws2 = ws.clone();
        engine.spawn("t", move |h| {
            ws2.register(h);
            assert_eq!(ws2.len(), 1);
            ws2.deregister(h);
            assert!(ws2.is_empty());
        });
        engine.run().unwrap();
    }
}
