//! Simulated thread identity and the scheduler/thread hand-off slot.
//!
//! At most one simulated thread *per scheduler worker* executes at any
//! wall-clock instant: the granting side (a worker, or the coordinator
//! itself on single-shard instants) hands control to the thread chosen by
//! the event queue and regains it when the thread parks again. With the
//! default single worker this makes every run fully deterministic while
//! letting user code be written as ordinary imperative Rust (the PM2
//! programming model); with several workers, determinism is preserved by
//! the engine's canonical effect merge (see [`crate::Engine`]).
//!
//! Three hand-off implementations ([`crate::HandoffMode`]) share one slot
//! type and one atomic [`Phase`] machine:
//!
//! * **Continuation** (default): the thread's slices run as a stackful
//!   coroutine *on the granting side's own OS thread* — a grant is a
//!   ~dozen-instruction stack switch into [`crate::continuation::Coro`],
//!   a park is the switch back. No OS thread wakes up on the hot path;
//!   the phase word only arbitrates racing same-instant granters.
//! * **Baton** (PR 3 futex-style): the thread is backed by a dedicated OS
//!   thread; each side publishes its transition with one atomic store and
//!   wakes the other with one `std::thread::unpark`, spinning briefly
//!   before parking. Kept as the per-thread fallback for bodies a
//!   fixed-size private stack cannot carry (deep recursion).
//! * **Legacy Condvar**: the original Mutex+Condvar protocol on
//!   `std::sync` (the pre-PR 3 substrate), kept selectable so the
//!   conformance matrix can assert all hand-offs produce bit-identical
//!   runs and so `sched_handoff` measures the true historical baseline.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::{fmt, ptr, sync};

use crate::continuation::Coro;
use crate::engine::{
    set_instant_ctx, BlockReason, InstantCtx, SliceOutcome, SpinMap, BLOCK_REASONS,
};
use crate::time::SimTime;

/// Identifier of a simulated thread, unique within one [`crate::Engine`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild a thread id from the raw value of [`ThreadId::as_u64`].
    ///
    /// The verify layer uses this to key recorded schedules and access logs
    /// by thread across replays; an id that never came from `as_u64` simply
    /// won't match any live thread.
    pub fn from_u64(raw: u64) -> ThreadId {
        ThreadId(raw)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Which execution substrate backs one simulated thread. Derived from the
/// effective [`crate::HandoffMode`] at spawn time (engine tuning, or a
/// per-thread [`crate::SpawnOptions`] override).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Backing {
    /// Stackful coroutine resumed on the granting side's OS thread.
    Continuation,
    /// Dedicated OS thread, futex-style atomic baton.
    Baton,
    /// Dedicated OS thread, Mutex+Condvar baton.
    LegacyCondvar,
}

impl Backing {
    /// True when a dedicated OS thread backs the simulated thread (the
    /// granting side then waits for *another OS thread* at each hand-off,
    /// which is what makes spinning worthwhile — see [`SpinMap`]).
    pub fn is_os_backed(self) -> bool {
        !matches!(self, Backing::Continuation)
    }
}

/// Life-cycle of a simulated thread with respect to the scheduler grant.
/// Stored as a plain enum in the legacy path and as a `u32` in the atomic
/// word of the futex/continuation paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// OS thread spawned but has not yet reached its first park
    /// (continuation slots skip this: they are born `Parked`).
    Created = 0,
    /// Waiting for the scheduler to grant a slice.
    Parked = 1,
    /// The scheduler has granted the baton; the thread has not resumed yet
    /// (OS-backed paths only).
    Granted = 2,
    /// Currently executing user code.
    Running = 3,
    /// The thread body returned (or panicked); it will never run again.
    Finished = 4,
    /// A granter won the `Parked -> Granting` CAS and is publishing the
    /// grant context; other granters keep waiting. This makes the context
    /// stores (and the coroutine resume) exclusive even if two same-instant
    /// wakes for one thread race from different workers.
    Granting = 5,
}

impl Phase {
    fn from_u32(v: u32) -> Phase {
        match v {
            0 => Phase::Created,
            1 => Phase::Parked,
            2 => Phase::Granted,
            3 => Phase::Running,
            4 => Phase::Finished,
            5 => Phase::Granting,
            other => unreachable!("invalid phase word {other}"),
        }
    }
}

pub(crate) struct SlotState {
    pub phase: Phase,
    /// Set when the engine is tearing down; a granted thread must unwind
    /// instead of resuming user code.
    pub shutdown: bool,
}

/// A granting side's OS-thread handle, published (once per worker) through
/// an `AtomicPtr` so simulated threads can wake their granter with SeqCst
/// Dekker-style visibility: a thread that stores its phase and then fails to
/// see the handle is guaranteed the granter has not yet read the phase, so
/// the granter will observe the store before parking.
pub(crate) struct SchedHandle {
    ptr: AtomicPtr<Thread>,
}

impl SchedHandle {
    pub fn new() -> Self {
        SchedHandle {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Publish the calling thread as this handle's owner. Idempotent; only
    /// ever called from the owning (coordinator or worker) thread.
    pub fn register_current(&self) {
        if self.ptr.load(Ordering::SeqCst).is_null() {
            let boxed = Box::into_raw(Box::new(std::thread::current()));
            if self
                .ptr
                .compare_exchange(ptr::null_mut(), boxed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // Somebody (us, earlier) already registered.
                // SAFETY: the CAS failed, so `boxed` was never published;
                // we still hold its only pointer, fresh from Box::into_raw.
                drop(unsafe { Box::from_raw(boxed) });
            }
        }
    }

    pub(crate) fn unpark(&self) {
        let p = self.ptr.load(Ordering::SeqCst);
        if !p.is_null() {
            // SAFETY: a non-null pointer was published by `register_current`
            // from Box::into_raw and is only freed in Drop, which cannot run
            // concurrently with this call (the engine's Shared owns us).
            unsafe { &*p }.unpark();
        }
    }
}

impl Drop for SchedHandle {
    fn drop(&mut self) {
        let p = self.ptr.swap(ptr::null_mut(), Ordering::SeqCst);
        if !p.is_null() {
            // SAFETY: we own the handle exclusively in Drop; the pointer
            // came from Box::into_raw in `register_current` and the swap
            // above makes this the only reclamation.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// The granting side of a hand-off: its wake-up handle and how long it
/// spins before parking while waiting for the thread.
///
/// A source lives for a whole *burst* of grants (the coordinator's event
/// loop iteration, or one `drain_instant` on a worker), not a single grant,
/// so per-granter bookkeeping — handle registration, the sole-granter
/// claim — is paid once per burst instead of once per grant. Same-shard
/// wake bursts (a barrier release draining dozens of wakes in one instant)
/// are exactly the runs this batching targets.
pub(crate) struct GrantSource<'a> {
    /// The granter's [`SchedHandle`] — must be owned by the engine's
    /// `Shared` so the raw granter pointer stored in the slot stays valid
    /// for the lifetime of every simulated thread.
    pub handle: &'a SchedHandle,
    /// Spin iterations before parking.
    pub spin: u32,
    /// True when the caller is provably the *only* thread that can grant
    /// for the duration of this source's burst (the coordinator's inline
    /// paths: single-shard mode, and single-active-shard rounds while every
    /// worker is idle). Continuation grants then skip the whole arbitration
    /// protocol — no `Granting` CAS, no granter-pointer publication, no
    /// serializing phase stores.
    pub solo: bool,
    /// Whether `handle` is already published as the current OS thread's
    /// wake-up handle. Set once by the first registration of the burst;
    /// later grants skip the atomic probe entirely.
    pub registered: Cell<bool>,
}

impl<'a> GrantSource<'a> {
    /// A source for a burst of arbitrated grants (racing granters possible).
    pub fn new(handle: &'a SchedHandle, spin: u32) -> Self {
        GrantSource {
            handle,
            spin,
            solo: false,
            registered: Cell::new(false),
        }
    }

    /// A source for a sole-granter burst: the caller guarantees no other
    /// thread can grant any slot until this source is dropped, and that
    /// `handle` is already registered to the calling OS thread.
    pub fn solo(handle: &'a SchedHandle, spin: u32) -> Self {
        GrantSource {
            handle,
            spin,
            solo: true,
            registered: Cell::new(true),
        }
    }

    /// Publish the calling OS thread as the wake-up target of `handle`,
    /// at most once per burst.
    fn register(&self) {
        if !self.registered.get() {
            self.handle.register_current();
            self.registered.set(true);
        }
    }
}

/// Sentinel for "granted inline by the coordinator" in the worker index slot.
pub(crate) const NO_WORKER: usize = usize::MAX;

/// Sentinel for "no slice outcome recorded yet".
const OUTCOME_NONE: u32 = u32::MAX;

/// Hand-off slot shared between the scheduler and one simulated thread.
pub(crate) struct ThreadSlot {
    pub id: ThreadId,
    pub name: String,
    /// Execution substrate backing this thread.
    backing: Backing,
    /// Per-worker spin budgets (owned by the engine's `Shared`); read on
    /// every OS-backed park, so migrations and finished threads re-tune
    /// the budget without touching existing slots.
    spin_map: Arc<SpinMap>,
    /// Identity of the owning engine (for the instant context).
    engine_token: usize,
    /// Current shard key of the thread (updated on migration).
    shard: AtomicU64,
    // ----- futex/continuation path ------------------------------------------
    /// The atomic phase word ([`Phase`] as u32).
    phase: AtomicU32,
    /// Teardown flag; checked by the thread before resuming user code.
    shutdown: AtomicBool,
    /// Handle of the backing OS thread, set by that thread before its first
    /// `Parked` store (the release/acquire hand-off on `phase` publishes it
    /// to the scheduler). Never set for continuation slots.
    os_thread: OnceLock<Thread>,
    /// Handle used to wake the granting side before any grant happened (the
    /// coordinator's engine-wide handle).
    default_sched: Arc<SchedHandle>,
    /// The most recent granter's handle; null means "use `default_sched`".
    /// Points into the engine's `Shared` (worker handles), which outlives
    /// every simulated thread: the spawn closure holds an `Arc<Shared>`.
    granter: AtomicPtr<SchedHandle>,
    // ----- continuation path ------------------------------------------------
    /// The coroutine carrying this thread's slices. Exclusivity is enforced
    /// by the phase machine: only the granter that won the `Parked ->
    /// Granting` CAS (or teardown, after the scheduler stopped) touches it.
    coro: UnsafeCell<Option<Coro>>,
    // ----- grant context (published exclusively by the CAS-winning granter
    // between the `Granting` and `Granted`/`Running` phase stores) -----------
    grant_worker: AtomicUsize,
    grant_time: AtomicU64,
    grant_seq: AtomicU64,
    grant_defer: AtomicBool,
    // ----- slice outcome (reified yield site, written by the thread itself
    // right before it parks — single writer, racing readers see a torn pair
    // at worst, which profiling tolerates) -----------------------------------
    outcome_kind: AtomicU32,
    outcome_arg: AtomicU64,
    // ----- legacy Condvar path (std::sync, the pre-PR 3 substrate) ----------
    state: sync::Mutex<SlotState>,
    cond: sync::Condvar,
}

// SAFETY: every field but `coro` is Sync by construction. The `UnsafeCell`
// around the coroutine is only dereferenced by (a) the spawn path before the
// slot is shared, (b) the single granter admitted by the `Parked ->
// Granting` CAS, (c) the coroutine body itself while that granter is
// blocked in `Coro::resume`, and (d) engine teardown/reaping after the
// scheduler loop stopped — all mutually exclusive by the phase machine.
unsafe impl Send for ThreadSlot {}
// SAFETY: see the Send justification above — the phase machine serializes
// every access to the one non-Sync field (`coro`).
unsafe impl Sync for ThreadSlot {}

impl ThreadSlot {
    pub fn new(
        id: ThreadId,
        name: String,
        backing: Backing,
        spin_map: Arc<SpinMap>,
        default_sched: Arc<SchedHandle>,
        engine_token: usize,
        shard: u64,
    ) -> Self {
        if backing.is_os_backed() {
            // Tell the spin auto-tuner an OS thread is now homed on this
            // shard's worker (undone in `mark_finished`).
            spin_map.home_os_thread(shard);
        }
        ThreadSlot {
            id,
            name,
            backing,
            spin_map,
            engine_token,
            shard: AtomicU64::new(shard),
            phase: AtomicU32::new(Phase::Created as u32),
            shutdown: AtomicBool::new(false),
            os_thread: OnceLock::new(),
            default_sched,
            granter: AtomicPtr::new(ptr::null_mut()),
            coro: UnsafeCell::new(None),
            grant_worker: AtomicUsize::new(NO_WORKER),
            grant_time: AtomicU64::new(0),
            grant_seq: AtomicU64::new(0),
            grant_defer: AtomicBool::new(false),
            outcome_kind: AtomicU32::new(OUTCOME_NONE),
            outcome_arg: AtomicU64::new(0),
            state: sync::Mutex::new(SlotState {
                phase: Phase::Created,
                shutdown: false,
            }),
            cond: sync::Condvar::new(),
        }
    }

    /// This thread's execution substrate.
    pub fn backing(&self) -> Backing {
        self.backing
    }

    /// The thread's current shard key.
    pub fn shard_key(&self) -> u64 {
        self.shard.load(Ordering::SeqCst)
    }

    /// Re-home the thread onto another shard (thread migration). Takes
    /// effect for wake-ups scheduled after this call; OS-backed threads
    /// also re-tune the spin budgets of the two affected workers.
    pub fn set_shard_key(&self, key: u64) {
        let old = self.shard.swap(key, Ordering::SeqCst);
        if self.backing.is_os_backed() && old != key {
            self.spin_map.rehome_os_thread(old, key);
        }
    }

    /// Record the reified outcome of the current slice (the thread is about
    /// to yield). Relaxed: single writer (the thread itself), and readers
    /// only profile.
    pub fn record_outcome(&self, outcome: SliceOutcome) {
        let (kind, arg) = match outcome {
            SliceOutcome::Yielded(t) => (0, t.as_nanos()),
            SliceOutcome::Blocked(r) => (1, r as u64),
            SliceOutcome::Done => (2, 0),
        };
        self.outcome_arg.store(arg, Ordering::Relaxed);
        self.outcome_kind.store(kind, Ordering::Relaxed);
    }

    /// The most recently recorded slice outcome, if any.
    pub fn last_outcome(&self) -> Option<SliceOutcome> {
        let arg = self.outcome_arg.load(Ordering::Relaxed);
        match self.outcome_kind.load(Ordering::Relaxed) {
            0 => Some(SliceOutcome::Yielded(SimTime::from_nanos(arg))),
            1 => Some(SliceOutcome::Blocked(
                BLOCK_REASONS[(arg as usize).min(BLOCK_REASONS.len() - 1)],
            )),
            2 => Some(SliceOutcome::Done),
            _ => None,
        }
    }

    /// Wake whoever granted us last (or the coordinator before any grant).
    fn wake_granter(&self) {
        let p = self.granter.load(Ordering::SeqCst);
        if p.is_null() {
            self.default_sched.unpark();
        } else {
            // SAFETY: non-null granter pointers reference the per-worker
            // `SchedHandle`s inside the engine's `Shared`, which the spawn
            // closure keeps alive (Arc) for this slot's whole lifetime.
            unsafe { &*p }.unpark();
        }
    }

    /// Lock the legacy slot state, transparently recovering from poisoning
    /// (a simulated thread that panicked mid-hand-off must not wedge the
    /// scheduler).
    fn legacy_state(&self) -> sync::MutexGuard<'_, SlotState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn legacy_wait<'a>(
        &self,
        guard: sync::MutexGuard<'a, SlotState>,
    ) -> sync::MutexGuard<'a, SlotState> {
        match self.cond.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    // ----- continuation backing ---------------------------------------------

    /// Install the coroutine carrying this thread's slices. Called by the
    /// spawn path before the slot is shared with the scheduler, so the
    /// plain store is exclusive; the `Parked` store makes the slot
    /// immediately grantable (continuations have no Created window).
    pub fn init_continuation(&self, coro: Coro) {
        debug_assert_eq!(self.backing, Backing::Continuation);
        // SAFETY: called before the slot is shared (spawn path), so this
        // plain store through the UnsafeCell is exclusive.
        unsafe { *self.coro.get() = Some(coro) };
        self.phase.store(Phase::Parked as u32, Ordering::SeqCst);
    }

    /// Switch from the coroutine's private stack back to the resumer.
    ///
    /// # Safety
    /// Must be called from *inside* this slot's coroutine.
    unsafe fn coro_yield(&self) {
        // SAFETY: we are the running coroutine (caller contract), i.e. the
        // phase machine's single admitted accessor of the cell right now.
        let coro = unsafe { (*self.coro.get()).as_mut().expect("continuation present") };
        // SAFETY: on this coroutine's private stack — the precondition of
        // yield_to_scheduler — per this function's own contract.
        unsafe { coro.yield_to_scheduler() };
    }

    /// First entry of a continuation body: the granter has already published
    /// the grant context and switched onto our stack. Returns `false` when
    /// the engine is tearing down (the body must return without running
    /// user code).
    pub fn continuation_first_grant(&self) -> bool {
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.install_grant_ctx();
        true
    }

    fn park_and_wait_continuation(&self) -> bool {
        // SAFETY: running inside this slot's coroutine (this is its park
        // path). All phase bookkeeping is on the granting side: it stores
        // `Parked` only after our stack is quiescent (i.e. after this
        // switch-out completes inside `Coro::resume`), so a racing granter
        // can never resume a half-saved continuation.
        unsafe { self.coro_yield() };
        // Somebody granted us a new slice — or teardown is unwinding us.
        !self.shutdown.load(Ordering::SeqCst)
    }

    /// Drive a suspended continuation through its shutdown unwind and drop
    /// it. Called by engine teardown *after* the scheduler loop (and worker
    /// pool) stopped, so the access is exclusive. Dropping the coroutine
    /// also releases a never-started body's captured state — which includes
    /// an `Arc` back to the engine's `Shared` (the cycle must be broken
    /// here or the engine leaks).
    pub fn teardown_continuation(&self) {
        if self.backing != Backing::Continuation {
            return;
        }
        // SAFETY: teardown runs after the scheduler loop and worker pool
        // stopped, so no granter or coroutine can touch the cell anymore.
        let cell = unsafe { &mut *self.coro.get() };
        if let Some(coro) = cell.as_mut() {
            if coro.is_started() && !coro.is_done() {
                // The shutdown flag is set: the resumed park observes it,
                // returns false, and the body unwinds via ShutdownUnwind,
                // running the destructors of every frame parked on the
                // private stack.
                // SAFETY: exclusive access (see above); the coroutine is
                // suspended, started, and not done — exactly resumable.
                let _ = unsafe { coro.resume() };
            }
        }
        *cell = None;
        self.phase.store(Phase::Finished as u32, Ordering::SeqCst);
    }

    /// Reclaim the stack buffer of a finished (or never-started)
    /// continuation for reuse by a future spawn; drops the coroutine.
    /// Returns `None` for OS-backed slots and continuations still live.
    /// Only called with exclusive access (reaping between events, or
    /// teardown).
    pub fn reclaim_stack(&self) -> Option<Vec<u8>> {
        if self.backing != Backing::Continuation {
            return None;
        }
        // SAFETY: per this function's contract, callers hold exclusive
        // access (reaping between events on the scheduler, or teardown).
        let cell = unsafe { &mut *self.coro.get() };
        let reclaimable = cell
            .as_ref()
            .is_some_and(|c| c.is_done() || !c.is_started());
        if !reclaimable {
            return None;
        }
        Some(cell.take().expect("checked above").take_stack())
    }

    // ----- shared entry points ----------------------------------------------

    /// Install the instant context of the granting event, so pushes made by
    /// user code route to the right worker outbox.
    fn install_grant_ctx(&self) {
        set_instant_ctx(Some(InstantCtx {
            engine: self.engine_token,
            worker: match self.grant_worker.load(Ordering::SeqCst) {
                NO_WORKER => 0,
                w => w,
            },
            parent_time: self.grant_time.load(Ordering::SeqCst),
            parent_seq: self.grant_seq.load(Ordering::SeqCst),
            shard: self.shard.load(Ordering::SeqCst),
            defer: self.grant_defer.load(Ordering::SeqCst),
            sub: 0,
        }));
    }

    /// Called by the simulated thread: announce that we are parked and wait
    /// until the scheduler grants the next slice. Returns `false` if the
    /// engine is shutting down and the thread must unwind without running
    /// user code. On `true`, the instant context of the granting event has
    /// been installed in the executing OS thread's thread-local slot.
    pub fn park_and_wait(&self) -> bool {
        // We are about to stop executing the current event.
        set_instant_ctx(None);
        let granted = match self.backing {
            Backing::Continuation => self.park_and_wait_continuation(),
            Backing::Baton => self.park_and_wait_futex(),
            Backing::LegacyCondvar => self.park_and_wait_legacy(),
        };
        if !granted {
            return false;
        }
        // Resuming on behalf of the granting event.
        self.install_grant_ctx();
        true
    }

    fn park_and_wait_futex(&self) -> bool {
        // Publish our handle before the Parked store so the scheduler can
        // unpark us as soon as it observes the phase.
        let _ = self.os_thread.set(std::thread::current());
        self.phase.store(Phase::Parked as u32, Ordering::SeqCst);
        self.wake_granter();
        let spin = self.spin_map.for_key(self.shard.load(Ordering::SeqCst));
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Granted as u32 {
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if spins < spin {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.phase.store(Phase::Running as u32, Ordering::SeqCst);
        true
    }

    fn park_and_wait_legacy(&self) -> bool {
        let mut st = self.legacy_state();
        st.phase = Phase::Parked;
        self.cond.notify_all();
        while st.phase != Phase::Granted {
            if st.shutdown {
                return false;
            }
            st = self.legacy_wait(st);
        }
        if st.shutdown {
            return false;
        }
        st.phase = Phase::Running;
        true
    }

    /// Spin-then-park (on the granting thread) until the slot's phase is
    /// `Parked` or `Finished`, returning the phase observed.
    ///
    /// Parks are unbounded only while the slot's granter pointer is *ours*:
    /// the party that publishes `Parked`/`Finished` (the thread's OS thread
    /// on the baton paths, the winning granter on the continuation path)
    /// notifies exactly the granter recorded in that pointer, so a granter
    /// that is not (or no longer) the recorded one — because a concurrent
    /// same-instant wake from another shard raced it — is off the wake-up
    /// path and must poll with bounded parks instead.
    fn await_parked_or_finished(&self, source: &GrantSource<'_>) -> Phase {
        // Make sure the simulated thread can wake us before we decide to
        // sleep (SeqCst pairing with the thread's phase store). Registered
        // once per grant burst, not per grant.
        source.register();
        let me = source.handle as *const SchedHandle as *mut SchedHandle;
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Parked as u32 || phase == Phase::Finished as u32 {
                return Phase::from_u32(phase);
            }
            if spins < source.spin {
                spins += 1;
                std::hint::spin_loop();
            } else if self.granter.load(Ordering::SeqCst) == me {
                std::thread::park();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Called by the granting side: wait until the thread has reached its
    /// first park (right after spawn, an OS-backed thread may not have
    /// started yet).
    #[cfg(test)]
    pub fn wait_until_parked_or_finished(&self, source: &GrantSource<'_>) {
        if self.backing == Backing::LegacyCondvar {
            let mut st = self.legacy_state();
            while st.phase != Phase::Parked && st.phase != Phase::Finished {
                st = self.legacy_wait(st);
            }
            return;
        }
        self.await_parked_or_finished(source);
    }

    /// Called by the granting side: grant a slice to the (eventually)
    /// parked thread and block until it parks again or finishes. `worker`,
    /// `parent_time`/`parent_seq` and `defer` describe the granting event;
    /// the resumed thread installs them as its instant context. Returns
    /// `false` if the thread was already finished (stale wake event).
    ///
    /// On the continuation path "block until it parks" is literal but
    /// OS-free: the slice executes right here, on the caller's stack frame,
    /// via a coroutine switch.
    pub fn grant_and_wait(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        match self.backing {
            Backing::Continuation => {
                self.grant_and_wait_continuation(source, worker, parent_time, parent_seq, defer)
            }
            Backing::Baton => {
                self.grant_and_wait_futex(source, worker, parent_time, parent_seq, defer)
            }
            Backing::LegacyCondvar => {
                self.grant_and_wait_legacy(source, worker, parent_time, parent_seq, defer)
            }
        }
    }

    fn grant_and_wait_futex(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        let me = source.handle as *const SchedHandle as *mut SchedHandle;
        // Publish ourselves as the granter *before* waiting for the park, so
        // a freshly spawned thread's first `Parked` store wakes us and not
        // the engine-wide default handle. A concurrent granter may overwrite
        // this; await_parked_or_finished then degrades to bounded parks.
        self.granter.store(me, Ordering::SeqCst);
        loop {
            if self.await_parked_or_finished(source) == Phase::Finished {
                return false;
            }
            // Win the grant first; publish the context only as the winner.
            if self
                .phase
                .compare_exchange(
                    Phase::Parked as u32,
                    Phase::Granting as u32,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
        // Exclusive between the Granting and Granted stores: the thread only
        // reads these after observing Granted, so the payload stores can be
        // Relaxed — the SeqCst `Granted` store orders them (and SeqCst
        // stores are serializing on x86, each one a full fence). Re-store
        // the granter pointer in case a racing granter's early store
        // overwrote it.
        self.granter.store(me, Ordering::SeqCst);
        self.grant_worker.store(worker, Ordering::Relaxed);
        self.grant_time.store(parent_time, Ordering::Relaxed);
        self.grant_seq.store(parent_seq, Ordering::Relaxed);
        self.grant_defer.store(defer, Ordering::Relaxed);
        self.phase.store(Phase::Granted as u32, Ordering::SeqCst);
        self.os_thread
            .get()
            .expect("parked thread published its handle")
            .unpark();
        self.await_parked_or_finished(source);
        true
    }

    fn grant_and_wait_continuation(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        // Sole-granter fast path: on the coordinator's inline rounds no
        // racing granter can exist, so the phase word is a record rather
        // than an arbiter — the `Granting` CAS handshake, the
        // granter-pointer publication and the serializing phase stores of
        // the arbitrated path below all collapse into relaxed transitions.
        // A same-shard wake burst (a barrier release draining N wakes in
        // one instant) pays two relaxed stores per grant instead of five
        // full-fence operations.
        if source.solo {
            match Phase::from_u32(self.phase.load(Ordering::Relaxed)) {
                Phase::Finished => return false,
                Phase::Parked => {
                    self.grant_worker.store(worker, Ordering::Relaxed);
                    self.grant_time.store(parent_time, Ordering::Relaxed);
                    self.grant_seq.store(parent_seq, Ordering::Relaxed);
                    self.grant_defer.store(defer, Ordering::Relaxed);
                    self.phase.store(Phase::Running as u32, Ordering::Relaxed);
                    let done = {
                        // SAFETY: the caller vouches (`source.solo`) that no
                        // other thread can grant until its burst ends, so
                        // this access is exclusive until the phase store
                        // below — the same guarantee the Granting CAS gives
                        // the arbitrated path.
                        let coro =
                            unsafe { (*self.coro.get()).as_mut().expect("continuation present") };
                        // SAFETY: same exclusivity; the slot was Parked, so
                        // the coroutine is suspended and resumable.
                        unsafe { coro.resume() }
                    };
                    if done {
                        self.record_outcome(SliceOutcome::Done);
                    }
                    self.phase.store(
                        if done { Phase::Finished } else { Phase::Parked } as u32,
                        Ordering::Relaxed,
                    );
                    return true;
                }
                // Any other phase means the solo claim cannot actually hold
                // for this slot (e.g. a mid-migration race): fall through to
                // the arbitrated path, which copes with every interleaving.
                _ => {}
            }
        }
        let me = source.handle as *const SchedHandle as *mut SchedHandle;
        // As in the futex path: publish ourselves so the winning granter's
        // post-slice `Parked` store wakes us if we lose the race.
        self.granter.store(me, Ordering::SeqCst);
        loop {
            if self.await_parked_or_finished(source) == Phase::Finished {
                return false;
            }
            // Winning this CAS grants exclusive ownership of the coroutine
            // until we store `Parked`/`Finished` below.
            if self
                .phase
                .compare_exchange(
                    Phase::Parked as u32,
                    Phase::Granting as u32,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
        // The coroutine reads the grant context on *this same OS thread*
        // after the resume below — program order alone suffices, so the
        // payload stores are Relaxed. Only the phase store (observed by
        // racing granters on other workers) stays SeqCst.
        //
        // The granter pointer is usually already `me` (stored above, before
        // the CAS); skip the serializing re-store then. Missing a racing
        // granter's concurrent overwrite is benign either way: the
        // post-slice wake below reloads the pointer and unparks whoever it
        // names.
        if self.granter.load(Ordering::SeqCst) != me {
            self.granter.store(me, Ordering::SeqCst);
        }
        self.grant_worker.store(worker, Ordering::Relaxed);
        self.grant_time.store(parent_time, Ordering::Relaxed);
        self.grant_seq.store(parent_seq, Ordering::Relaxed);
        self.grant_defer.store(defer, Ordering::Relaxed);
        self.phase.store(Phase::Running as u32, Ordering::SeqCst);
        // Run the slice right here: switch onto the coroutine's stack. It
        // reads the grant context itself (continuation_first_grant /
        // park_and_wait) and clears the thread-local instant context before
        // switching back.
        let done = {
            // SAFETY: we won the Granting CAS; nobody else touches the coro
            // until the phase store below.
            let coro = unsafe { (*self.coro.get()).as_mut().expect("continuation present") };
            // SAFETY: same exclusivity (Granting CAS won); the coroutine is
            // suspended and not done, so it is resumable.
            unsafe { coro.resume() }
        };
        if done {
            self.record_outcome(SliceOutcome::Done);
        }
        // Publish the slice's end only now, when the coroutine stack is
        // quiescent — a racing granter CAS-ing `Parked` any earlier could
        // resume a continuation whose switch-out had not completed.
        self.phase.store(
            if done { Phase::Finished } else { Phase::Parked } as u32,
            Ordering::SeqCst,
        );
        // Wake a raced granter that overwrote our pointer while the slice
        // ran: it is parked (bounded) waiting for exactly this store.
        let g = self.granter.load(Ordering::SeqCst);
        if g != me && !g.is_null() {
            // SAFETY: granter pointers reference per-worker SchedHandles in
            // the engine's Shared, alive for this slot's whole lifetime.
            unsafe { &*g }.unpark();
        }
        true
    }

    fn grant_and_wait_legacy(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        let _ = source;
        let mut st = self.legacy_state();
        // Wait for the thread to park (it may not have started yet, or a
        // concurrent granter may be mid-hand-off — the condvar broadcast on
        // every transition keeps all waiting granters live).
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            st = self.legacy_wait(st);
        }
        if st.phase == Phase::Finished {
            return false;
        }
        // Publish the grant context under the slot lock, exclusive with any
        // concurrent granter by construction.
        self.granter.store(
            source.handle as *const SchedHandle as *mut SchedHandle,
            Ordering::SeqCst,
        );
        self.grant_worker.store(worker, Ordering::SeqCst);
        self.grant_time.store(parent_time, Ordering::SeqCst);
        self.grant_seq.store(parent_seq, Ordering::SeqCst);
        self.grant_defer.store(defer, Ordering::SeqCst);
        st.phase = Phase::Granted;
        self.cond.notify_all();
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            st = self.legacy_wait(st);
        }
        true
    }

    /// Called by the backing OS thread when its body has returned or
    /// panicked (OS-backed paths only; the continuation path's completion
    /// is published by the granter that drove the final slice).
    pub fn mark_finished(&self) {
        set_instant_ctx(None);
        self.record_outcome(SliceOutcome::Done);
        if self.backing.is_os_backed() {
            // Undo this thread's contribution to the spin auto-tuning.
            self.spin_map
                .unhome_os_thread(self.shard.load(Ordering::SeqCst));
        }
        if self.backing == Backing::LegacyCondvar {
            let mut st = self.legacy_state();
            st.phase = Phase::Finished;
            self.cond.notify_all();
            return;
        }
        self.phase.store(Phase::Finished as u32, Ordering::SeqCst);
        self.wake_granter();
    }

    /// Called during teardown: release any thread that is still waiting for
    /// the baton so its OS thread can exit. (Continuation slots only take
    /// the flag here; their unwind is driven by `teardown_continuation`.)
    pub fn request_shutdown(&self) {
        if self.backing == Backing::LegacyCondvar {
            let mut st = self.legacy_state();
            st.shutdown = true;
            self.cond.notify_all();
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.os_thread.get() {
            thread.unpark();
        }
        // A thread that has not yet published its handle has not parked
        // either: it will observe the shutdown flag before its first park.
    }

    /// True if the thread is currently parked (used for deadlock reporting).
    pub fn is_parked(&self) -> bool {
        if self.backing == Backing::LegacyCondvar {
            return matches!(self.legacy_state().phase, Phase::Parked | Phase::Created);
        }
        matches!(
            Phase::from_u32(self.phase.load(Ordering::SeqCst)),
            Phase::Parked | Phase::Created
        )
    }

    /// True if the thread has finished.
    pub fn is_finished(&self) -> bool {
        if self.backing == Backing::LegacyCondvar {
            return self.legacy_state().phase == Phase::Finished;
        }
        self.phase.load(Ordering::SeqCst) == Phase::Finished as u32
    }

    /// A blocked-on label for diagnostics (deadlock reports).
    pub fn blocked_on(&self) -> Option<BlockReason> {
        match self.last_outcome() {
            Some(SliceOutcome::Blocked(r)) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimTuning;

    fn spin_map() -> Arc<SpinMap> {
        let tuning = SimTuning::default();
        Arc::new(SpinMap::new(
            tuning.handoff_spin,
            1,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ))
    }

    fn slot(id: u64, backing: Backing, sched: &Arc<SchedHandle>) -> Arc<ThreadSlot> {
        Arc::new(ThreadSlot::new(
            ThreadId(id),
            "t".into(),
            backing,
            spin_map(),
            Arc::clone(sched),
            0,
            id,
        ))
    }

    /// The two OS-backed substrates (the continuation path cannot be driven
    /// by a bare OS thread calling `park_and_wait` — it is exercised through
    /// the engine tests instead).
    fn os_backings() -> [Backing; 2] {
        [Backing::Baton, Backing::LegacyCondvar]
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
        assert_eq!(ThreadId(9).as_u64(), 9);
    }

    #[test]
    fn slot_handoff_roundtrip() {
        for backing in os_backings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource::new(&sched, 0);
            let slot = slot(1, backing, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                // First park, then run once, then finish.
                assert!(s2.park_and_wait());
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished(&source);
            assert!(slot.is_parked() || slot.is_finished());
            assert!(slot.grant_and_wait(&source, NO_WORKER, 0, 0, false));
            assert!(slot.is_finished());
            // A second grant on a finished thread reports staleness.
            assert!(!slot.grant_and_wait(&source, NO_WORKER, 0, 0, false));
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_releases_parked_thread() {
        for backing in os_backings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource::new(&sched, 0);
            let slot = slot(2, backing, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                let resumed = s2.park_and_wait();
                assert!(!resumed);
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished(&source);
            slot.request_shutdown();
            h.join().unwrap();
            assert!(slot.is_finished());
        }
    }

    #[test]
    fn many_handoffs_roundtrip_quickly() {
        for backing in os_backings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource::new(&sched, 0);
            let slot = slot(3, backing, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                for _ in 0..10_000 {
                    if !s2.park_and_wait() {
                        break;
                    }
                }
                s2.mark_finished();
            });
            for seq in 0..10_000 {
                assert!(slot.grant_and_wait(&source, NO_WORKER, 0, seq, false));
            }
            slot.request_shutdown();
            let _ = slot.grant_and_wait(&source, NO_WORKER, 0, 10_000, false);
            h.join().unwrap();
        }
    }

    #[test]
    fn shard_key_is_updatable() {
        let sched = Arc::new(SchedHandle::new());
        let slot = slot(7, Backing::Baton, &sched);
        assert_eq!(slot.shard_key(), 7);
        slot.set_shard_key(2);
        assert_eq!(slot.shard_key(), 2);
    }

    #[test]
    fn outcome_roundtrips_through_the_slot() {
        let sched = Arc::new(SchedHandle::new());
        let slot = slot(9, Backing::Baton, &sched);
        assert_eq!(slot.last_outcome(), None);
        slot.record_outcome(SliceOutcome::Yielded(SimTime::from_nanos(42)));
        assert_eq!(
            slot.last_outcome(),
            Some(SliceOutcome::Yielded(SimTime::from_nanos(42)))
        );
        slot.record_outcome(SliceOutcome::Blocked(BlockReason::PageFault));
        assert_eq!(slot.blocked_on(), Some(BlockReason::PageFault));
        slot.record_outcome(SliceOutcome::Done);
        assert_eq!(slot.last_outcome(), Some(SliceOutcome::Done));
    }
}
