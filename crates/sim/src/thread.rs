//! Simulated thread identity and the scheduler/thread hand-off slot.
//!
//! Each simulated thread is backed by one OS thread, but at most one
//! simulated thread executes at any wall-clock instant: the scheduler hands a
//! "baton" to the thread chosen by the event queue and waits until the thread
//! parks again. This makes every run fully deterministic while letting user
//! code be written as ordinary imperative Rust (the PM2 programming model).

use parking_lot::{Condvar, Mutex};
use std::fmt;

/// Identifier of a simulated thread, unique within one [`crate::Engine`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Life-cycle of a simulated thread with respect to the scheduler baton.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// OS thread spawned but has not yet reached its first park.
    Created,
    /// Waiting for the scheduler to grant the baton.
    Parked,
    /// The scheduler has granted the baton; the thread has not resumed yet.
    Granted,
    /// Currently executing user code.
    Running,
    /// The thread body returned (or panicked); it will never run again.
    Finished,
}

pub(crate) struct SlotState {
    pub phase: Phase,
    /// Set when the engine is tearing down; a granted thread must unwind
    /// instead of resuming user code.
    pub shutdown: bool,
}

/// Hand-off slot shared between the scheduler and one simulated thread.
pub(crate) struct ThreadSlot {
    pub id: ThreadId,
    pub name: String,
    pub state: Mutex<SlotState>,
    pub cond: Condvar,
}

impl ThreadSlot {
    pub fn new(id: ThreadId, name: String) -> Self {
        ThreadSlot {
            id,
            name,
            state: Mutex::new(SlotState {
                phase: Phase::Created,
                shutdown: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Called by the backing OS thread: announce that we are parked and wait
    /// until the scheduler grants the baton. Returns `false` if the engine is
    /// shutting down and the thread must unwind without running user code.
    pub fn park_and_wait(&self) -> bool {
        let mut st = self.state.lock();
        st.phase = Phase::Parked;
        self.cond.notify_all();
        while st.phase != Phase::Granted {
            if st.shutdown {
                return false;
            }
            self.cond.wait(&mut st);
        }
        if st.shutdown {
            return false;
        }
        st.phase = Phase::Running;
        true
    }

    /// Called by the scheduler: wait until the OS thread has reached its
    /// first park (right after spawn, the thread may not have started yet).
    pub fn wait_until_parked_or_finished(&self) {
        let mut st = self.state.lock();
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            self.cond.wait(&mut st);
        }
    }

    /// Called by the scheduler: grant the baton to a parked thread and block
    /// until it parks again or finishes. Returns `false` if the thread was
    /// already finished (stale wake event).
    pub fn grant_and_wait(&self) -> bool {
        let mut st = self.state.lock();
        while st.phase == Phase::Created {
            self.cond.wait(&mut st);
        }
        if st.phase == Phase::Finished {
            return false;
        }
        debug_assert_eq!(st.phase, Phase::Parked, "thread {} not parked", self.name);
        st.phase = Phase::Granted;
        self.cond.notify_all();
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            self.cond.wait(&mut st);
        }
        true
    }

    /// Called by the backing OS thread when its body has returned or panicked.
    pub fn mark_finished(&self) {
        let mut st = self.state.lock();
        st.phase = Phase::Finished;
        self.cond.notify_all();
    }

    /// Called by the scheduler during teardown: release any thread that is
    /// still waiting for the baton so its OS thread can exit.
    pub fn request_shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cond.notify_all();
    }

    /// True if the thread is currently parked (used for deadlock reporting).
    pub fn is_parked(&self) -> bool {
        matches!(self.state.lock().phase, Phase::Parked | Phase::Created)
    }

    /// True if the thread has finished.
    pub fn is_finished(&self) -> bool {
        self.state.lock().phase == Phase::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn thread_id_display() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
        assert_eq!(ThreadId(9).as_u64(), 9);
    }

    #[test]
    fn slot_handoff_roundtrip() {
        let slot = Arc::new(ThreadSlot::new(ThreadId(1), "t".into()));
        let s2 = slot.clone();
        let h = std::thread::spawn(move || {
            // First park, then run once, then finish.
            assert!(s2.park_and_wait());
            s2.mark_finished();
        });
        slot.wait_until_parked_or_finished();
        assert!(slot.is_parked());
        assert!(slot.grant_and_wait());
        assert!(slot.is_finished());
        // A second grant on a finished thread reports staleness.
        assert!(!slot.grant_and_wait());
        h.join().unwrap();
    }

    #[test]
    fn shutdown_releases_parked_thread() {
        let slot = Arc::new(ThreadSlot::new(ThreadId(2), "t".into()));
        let s2 = slot.clone();
        let h = std::thread::spawn(move || {
            let resumed = s2.park_and_wait();
            assert!(!resumed);
            s2.mark_finished();
        });
        slot.wait_until_parked_or_finished();
        slot.request_shutdown();
        h.join().unwrap();
        assert!(slot.is_finished());
    }
}
