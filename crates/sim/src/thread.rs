//! Simulated thread identity and the scheduler/thread hand-off slot.
//!
//! Each simulated thread is backed by one OS thread, but at most one
//! simulated thread executes at any wall-clock instant: the scheduler hands a
//! "baton" to the thread chosen by the event queue and waits until the thread
//! parks again. This makes every run fully deterministic while letting user
//! code be written as ordinary imperative Rust (the PM2 programming model).
//!
//! Two baton implementations exist:
//!
//! * **Futex-style** (default): the slot is a single atomic [`Phase`] word;
//!   each side publishes its transition with one atomic store and wakes the
//!   other with one `std::thread::unpark`, spinning briefly before parking.
//!   No lock is held across any wait, so a hand-off between two running
//!   cores is a store + an unpark — the scheduler grants and reclaims the
//!   baton with at most one atomic RMW-equivalent and one unpark per step.
//! * **Legacy Condvar** ([`crate::SimTuning::legacy_condvar_handoff`]): the
//!   original Mutex+Condvar protocol on `std::sync` (what the pre-PR 3
//!   `parking_lot` shim wrapped), kept selectable so the conformance matrix
//!   can assert both hand-offs produce bit-identical runs and so the
//!   `sched_handoff` microbenchmark measures the true historical baseline.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::thread::Thread;
use std::{fmt, ptr, sync};

use crate::engine::SimTuning;

/// Identifier of a simulated thread, unique within one [`crate::Engine`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Life-cycle of a simulated thread with respect to the scheduler baton.
/// Stored as a plain enum in the legacy path and as a `u32` in the atomic
/// word of the futex path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// OS thread spawned but has not yet reached its first park.
    Created = 0,
    /// Waiting for the scheduler to grant the baton.
    Parked = 1,
    /// The scheduler has granted the baton; the thread has not resumed yet.
    Granted = 2,
    /// Currently executing user code.
    Running = 3,
    /// The thread body returned (or panicked); it will never run again.
    Finished = 4,
}

impl Phase {
    fn from_u32(v: u32) -> Phase {
        match v {
            0 => Phase::Created,
            1 => Phase::Parked,
            2 => Phase::Granted,
            3 => Phase::Running,
            4 => Phase::Finished,
            other => unreachable!("invalid phase word {other}"),
        }
    }
}

pub(crate) struct SlotState {
    pub phase: Phase,
    /// Set when the engine is tearing down; a granted thread must unwind
    /// instead of resuming user code.
    pub shutdown: bool,
}

/// The scheduler's OS-thread handle, published (once per engine run) through
/// an `AtomicPtr` so simulated threads can wake the scheduler with SeqCst
/// Dekker-style visibility: a thread that stores its phase and then fails to
/// see the handle is guaranteed the scheduler has not yet read the phase, so
/// the scheduler will observe the store before parking.
pub(crate) struct SchedHandle {
    ptr: AtomicPtr<Thread>,
}

impl SchedHandle {
    pub fn new() -> Self {
        SchedHandle {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Publish the calling thread as the scheduler. Idempotent; only ever
    /// called from the (single) scheduler thread.
    pub fn register_current(&self) {
        if self.ptr.load(Ordering::SeqCst).is_null() {
            let boxed = Box::into_raw(Box::new(std::thread::current()));
            if self
                .ptr
                .compare_exchange(ptr::null_mut(), boxed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // Somebody (us, earlier) already registered.
                drop(unsafe { Box::from_raw(boxed) });
            }
        }
    }

    fn unpark(&self) {
        let p = self.ptr.load(Ordering::SeqCst);
        if !p.is_null() {
            unsafe { &*p }.unpark();
        }
    }
}

impl Drop for SchedHandle {
    fn drop(&mut self) {
        let p = self.ptr.swap(ptr::null_mut(), Ordering::SeqCst);
        if !p.is_null() {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Hand-off slot shared between the scheduler and one simulated thread.
pub(crate) struct ThreadSlot {
    pub id: ThreadId,
    pub name: String,
    /// True when this slot uses the legacy Condvar protocol.
    legacy: bool,
    /// Spin iterations before parking (futex path).
    spin: u32,
    // ----- futex path -------------------------------------------------------
    /// The atomic phase word ([`Phase`] as u32).
    phase: AtomicU32,
    /// Teardown flag; checked by the thread before resuming user code.
    shutdown: AtomicBool,
    /// Handle of the backing OS thread, set by that thread before its first
    /// `Parked` store (the release/acquire hand-off on `phase` publishes it
    /// to the scheduler).
    os_thread: OnceLock<Thread>,
    /// Handle of the scheduler thread, shared engine-wide.
    sched: std::sync::Arc<SchedHandle>,
    // ----- legacy Condvar path (std::sync, the pre-PR 3 substrate) ----------
    state: sync::Mutex<SlotState>,
    cond: sync::Condvar,
}

impl ThreadSlot {
    pub fn new(
        id: ThreadId,
        name: String,
        tuning: &SimTuning,
        sched: std::sync::Arc<SchedHandle>,
    ) -> Self {
        ThreadSlot {
            id,
            name,
            legacy: tuning.legacy_condvar_handoff,
            spin: tuning.handoff_spin,
            phase: AtomicU32::new(Phase::Created as u32),
            shutdown: AtomicBool::new(false),
            os_thread: OnceLock::new(),
            sched,
            state: sync::Mutex::new(SlotState {
                phase: Phase::Created,
                shutdown: false,
            }),
            cond: sync::Condvar::new(),
        }
    }

    /// Lock the legacy slot state, transparently recovering from poisoning
    /// (a simulated thread that panicked mid-hand-off must not wedge the
    /// scheduler).
    fn legacy_state(&self) -> sync::MutexGuard<'_, SlotState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn legacy_wait<'a>(
        &self,
        guard: sync::MutexGuard<'a, SlotState>,
    ) -> sync::MutexGuard<'a, SlotState> {
        match self.cond.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Called by the backing OS thread: announce that we are parked and wait
    /// until the scheduler grants the baton. Returns `false` if the engine is
    /// shutting down and the thread must unwind without running user code.
    pub fn park_and_wait(&self) -> bool {
        if self.legacy {
            return self.park_and_wait_legacy();
        }
        // Publish our handle before the Parked store so the scheduler can
        // unpark us as soon as it observes the phase.
        let _ = self.os_thread.set(std::thread::current());
        self.phase.store(Phase::Parked as u32, Ordering::SeqCst);
        self.sched.unpark();
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Granted as u32 {
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if spins < self.spin {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.phase.store(Phase::Running as u32, Ordering::SeqCst);
        true
    }

    fn park_and_wait_legacy(&self) -> bool {
        let mut st = self.legacy_state();
        st.phase = Phase::Parked;
        self.cond.notify_all();
        while st.phase != Phase::Granted {
            if st.shutdown {
                return false;
            }
            st = self.legacy_wait(st);
        }
        if st.shutdown {
            return false;
        }
        st.phase = Phase::Running;
        true
    }

    /// Spin-then-park (on the scheduler thread) until the slot's phase is
    /// `Parked` or `Finished`, returning the phase observed.
    fn sched_await_parked_or_finished(&self) -> Phase {
        // Make sure the simulated thread can wake us before we decide to
        // sleep (SeqCst pairing with the thread's phase store).
        self.sched.register_current();
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Parked as u32 || phase == Phase::Finished as u32 {
                return Phase::from_u32(phase);
            }
            if spins < self.spin {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
    }

    /// Called by the scheduler: wait until the OS thread has reached its
    /// first park (right after spawn, the thread may not have started yet).
    pub fn wait_until_parked_or_finished(&self) {
        if self.legacy {
            let mut st = self.legacy_state();
            while st.phase != Phase::Parked && st.phase != Phase::Finished {
                st = self.legacy_wait(st);
            }
            return;
        }
        self.sched_await_parked_or_finished();
    }

    /// Called by the scheduler: grant the baton to a parked thread and block
    /// until it parks again or finishes. Returns `false` if the thread was
    /// already finished (stale wake event).
    pub fn grant_and_wait(&self) -> bool {
        if self.legacy {
            return self.grant_and_wait_legacy();
        }
        if self.sched_await_parked_or_finished() == Phase::Finished {
            return false;
        }
        // The grant itself: one store + one unpark. The thread is parked, so
        // its handle is guaranteed to be published.
        self.phase.store(Phase::Granted as u32, Ordering::SeqCst);
        self.os_thread
            .get()
            .expect("parked thread published its handle")
            .unpark();
        self.sched_await_parked_or_finished();
        true
    }

    fn grant_and_wait_legacy(&self) -> bool {
        let mut st = self.legacy_state();
        while st.phase == Phase::Created {
            st = self.legacy_wait(st);
        }
        if st.phase == Phase::Finished {
            return false;
        }
        debug_assert_eq!(st.phase, Phase::Parked, "thread {} not parked", self.name);
        st.phase = Phase::Granted;
        self.cond.notify_all();
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            st = self.legacy_wait(st);
        }
        true
    }

    /// Called by the backing OS thread when its body has returned or panicked.
    pub fn mark_finished(&self) {
        if self.legacy {
            let mut st = self.legacy_state();
            st.phase = Phase::Finished;
            self.cond.notify_all();
            return;
        }
        self.phase.store(Phase::Finished as u32, Ordering::SeqCst);
        self.sched.unpark();
    }

    /// Called by the scheduler during teardown: release any thread that is
    /// still waiting for the baton so its OS thread can exit.
    pub fn request_shutdown(&self) {
        if self.legacy {
            let mut st = self.legacy_state();
            st.shutdown = true;
            self.cond.notify_all();
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.os_thread.get() {
            thread.unpark();
        }
        // A thread that has not yet published its handle has not parked
        // either: it will observe the shutdown flag before its first park.
    }

    /// True if the thread is currently parked (used for deadlock reporting).
    pub fn is_parked(&self) -> bool {
        if self.legacy {
            return matches!(self.legacy_state().phase, Phase::Parked | Phase::Created);
        }
        matches!(
            Phase::from_u32(self.phase.load(Ordering::SeqCst)),
            Phase::Parked | Phase::Created
        )
    }

    /// True if the thread has finished.
    pub fn is_finished(&self) -> bool {
        if self.legacy {
            return self.legacy_state().phase == Phase::Finished;
        }
        self.phase.load(Ordering::SeqCst) == Phase::Finished as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn slot(id: u64, tuning: &SimTuning) -> Arc<ThreadSlot> {
        Arc::new(ThreadSlot::new(
            ThreadId(id),
            "t".into(),
            tuning,
            Arc::new(SchedHandle::new()),
        ))
    }

    fn both_tunings() -> [SimTuning; 2] {
        [
            SimTuning::default(),
            SimTuning {
                legacy_condvar_handoff: true,
                ..SimTuning::default()
            },
        ]
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
        assert_eq!(ThreadId(9).as_u64(), 9);
    }

    #[test]
    fn slot_handoff_roundtrip() {
        for tuning in both_tunings() {
            let slot = slot(1, &tuning);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                // First park, then run once, then finish.
                assert!(s2.park_and_wait());
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished();
            assert!(slot.is_parked() || slot.is_finished());
            assert!(slot.grant_and_wait());
            assert!(slot.is_finished());
            // A second grant on a finished thread reports staleness.
            assert!(!slot.grant_and_wait());
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_releases_parked_thread() {
        for tuning in both_tunings() {
            let slot = slot(2, &tuning);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                let resumed = s2.park_and_wait();
                assert!(!resumed);
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished();
            slot.request_shutdown();
            h.join().unwrap();
            assert!(slot.is_finished());
        }
    }

    #[test]
    fn many_handoffs_roundtrip_quickly() {
        for tuning in both_tunings() {
            let slot = slot(3, &tuning);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                for _ in 0..10_000 {
                    if !s2.park_and_wait() {
                        break;
                    }
                }
                s2.mark_finished();
            });
            for _ in 0..10_000 {
                slot.wait_until_parked_or_finished();
                assert!(slot.grant_and_wait());
            }
            slot.request_shutdown();
            let _ = slot.grant_and_wait();
            h.join().unwrap();
        }
    }
}
