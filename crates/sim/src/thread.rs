//! Simulated thread identity and the scheduler/thread hand-off slot.
//!
//! Each simulated thread is backed by one OS thread, but at most one
//! simulated thread *per scheduler worker* executes at any wall-clock
//! instant: the granting side (a worker, or the coordinator itself on
//! single-shard instants) hands a "baton" to the thread chosen by the event
//! queue and waits until the thread parks again. With the default single
//! worker this makes every run fully deterministic while letting user code
//! be written as ordinary imperative Rust (the PM2 programming model); with
//! several workers, determinism is preserved by the engine's canonical
//! effect merge (see [`crate::Engine`]).
//!
//! Two baton implementations exist:
//!
//! * **Futex-style** (default): the slot is a single atomic [`Phase`] word;
//!   each side publishes its transition with one atomic store and wakes the
//!   other with one `std::thread::unpark`, spinning briefly before parking.
//!   No lock is held across any wait, so a hand-off between two running
//!   cores is a store + an unpark — the granting side grants and reclaims
//!   the baton with at most one atomic RMW and one unpark per step.
//! * **Legacy Condvar** ([`crate::SimTuning::legacy_condvar_handoff`]): the
//!   original Mutex+Condvar protocol on `std::sync` (what the pre-PR 3
//!   `parking_lot` shim wrapped), kept selectable so the conformance matrix
//!   can assert both hand-offs produce bit-identical runs and so the
//!   `sched_handoff` microbenchmark measures the true historical baseline.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread::Thread;
use std::{fmt, ptr, sync};

use crate::engine::{set_instant_ctx, InstantCtx, SimTuning};

/// Identifier of a simulated thread, unique within one [`crate::Engine`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Life-cycle of a simulated thread with respect to the scheduler baton.
/// Stored as a plain enum in the legacy path and as a `u32` in the atomic
/// word of the futex path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// OS thread spawned but has not yet reached its first park.
    Created = 0,
    /// Waiting for the scheduler to grant the baton.
    Parked = 1,
    /// The scheduler has granted the baton; the thread has not resumed yet.
    Granted = 2,
    /// Currently executing user code.
    Running = 3,
    /// The thread body returned (or panicked); it will never run again.
    Finished = 4,
    /// A granter won the `Parked -> Granting` CAS and is publishing the
    /// grant context; the thread keeps waiting until `Granted`. This makes
    /// the context stores exclusive even if two same-instant wakes for one
    /// thread race from different workers.
    Granting = 5,
}

impl Phase {
    fn from_u32(v: u32) -> Phase {
        match v {
            0 => Phase::Created,
            1 => Phase::Parked,
            2 => Phase::Granted,
            3 => Phase::Running,
            4 => Phase::Finished,
            5 => Phase::Granting,
            other => unreachable!("invalid phase word {other}"),
        }
    }
}

pub(crate) struct SlotState {
    pub phase: Phase,
    /// Set when the engine is tearing down; a granted thread must unwind
    /// instead of resuming user code.
    pub shutdown: bool,
}

/// A granting side's OS-thread handle, published (once per worker) through
/// an `AtomicPtr` so simulated threads can wake their granter with SeqCst
/// Dekker-style visibility: a thread that stores its phase and then fails to
/// see the handle is guaranteed the granter has not yet read the phase, so
/// the granter will observe the store before parking.
pub(crate) struct SchedHandle {
    ptr: AtomicPtr<Thread>,
}

impl SchedHandle {
    pub fn new() -> Self {
        SchedHandle {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Publish the calling thread as this handle's owner. Idempotent; only
    /// ever called from the owning (coordinator or worker) thread.
    pub fn register_current(&self) {
        if self.ptr.load(Ordering::SeqCst).is_null() {
            let boxed = Box::into_raw(Box::new(std::thread::current()));
            if self
                .ptr
                .compare_exchange(ptr::null_mut(), boxed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // Somebody (us, earlier) already registered.
                drop(unsafe { Box::from_raw(boxed) });
            }
        }
    }

    pub(crate) fn unpark(&self) {
        let p = self.ptr.load(Ordering::SeqCst);
        if !p.is_null() {
            unsafe { &*p }.unpark();
        }
    }
}

impl Drop for SchedHandle {
    fn drop(&mut self) {
        let p = self.ptr.swap(ptr::null_mut(), Ordering::SeqCst);
        if !p.is_null() {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// The granting side of a baton hand-off: its wake-up handle and how long it
/// spins before parking while waiting for the thread.
pub(crate) struct GrantSource<'a> {
    /// The granter's [`SchedHandle`] — must be owned by the engine's
    /// `Shared` so the raw granter pointer stored in the slot stays valid
    /// for the lifetime of every simulated thread.
    pub handle: &'a SchedHandle,
    /// Spin iterations before parking.
    pub spin: u32,
}

/// Sentinel for "granted inline by the coordinator" in the worker index slot.
pub(crate) const NO_WORKER: usize = usize::MAX;

/// Hand-off slot shared between the scheduler and one simulated thread.
pub(crate) struct ThreadSlot {
    pub id: ThreadId,
    pub name: String,
    /// True when this slot uses the legacy Condvar protocol.
    legacy: bool,
    /// Spin iterations before parking (futex path).
    spin: u32,
    /// Identity of the owning engine (for the instant context).
    engine_token: usize,
    /// Current shard key of the thread (updated on migration).
    shard: AtomicU64,
    // ----- futex path -------------------------------------------------------
    /// The atomic phase word ([`Phase`] as u32).
    phase: AtomicU32,
    /// Teardown flag; checked by the thread before resuming user code.
    shutdown: AtomicBool,
    /// Handle of the backing OS thread, set by that thread before its first
    /// `Parked` store (the release/acquire hand-off on `phase` publishes it
    /// to the scheduler).
    os_thread: OnceLock<Thread>,
    /// Handle used to wake the granting side before any grant happened (the
    /// coordinator's engine-wide handle).
    default_sched: std::sync::Arc<SchedHandle>,
    /// The most recent granter's handle; null means "use `default_sched`".
    /// Points into the engine's `Shared` (worker handles), which outlives
    /// every simulated thread: the spawn closure holds an `Arc<Shared>`.
    granter: AtomicPtr<SchedHandle>,
    // ----- grant context (published exclusively by the CAS-winning granter
    // between the `Granting` and `Granted` phase stores) --------------------
    grant_worker: AtomicUsize,
    grant_time: AtomicU64,
    grant_seq: AtomicU64,
    grant_defer: AtomicBool,
    // ----- legacy Condvar path (std::sync, the pre-PR 3 substrate) ----------
    state: sync::Mutex<SlotState>,
    cond: sync::Condvar,
}

impl ThreadSlot {
    pub fn new(
        id: ThreadId,
        name: String,
        tuning: &SimTuning,
        default_sched: std::sync::Arc<SchedHandle>,
        engine_token: usize,
        shard: u64,
    ) -> Self {
        ThreadSlot {
            id,
            name,
            legacy: tuning.legacy_condvar_handoff,
            spin: tuning.handoff_spin,
            engine_token,
            shard: AtomicU64::new(shard),
            phase: AtomicU32::new(Phase::Created as u32),
            shutdown: AtomicBool::new(false),
            os_thread: OnceLock::new(),
            default_sched,
            granter: AtomicPtr::new(ptr::null_mut()),
            grant_worker: AtomicUsize::new(NO_WORKER),
            grant_time: AtomicU64::new(0),
            grant_seq: AtomicU64::new(0),
            grant_defer: AtomicBool::new(false),
            state: sync::Mutex::new(SlotState {
                phase: Phase::Created,
                shutdown: false,
            }),
            cond: sync::Condvar::new(),
        }
    }

    /// The thread's current shard key.
    pub fn shard_key(&self) -> u64 {
        self.shard.load(Ordering::SeqCst)
    }

    /// Re-home the thread onto another shard (thread migration). Takes
    /// effect for wake-ups scheduled after this call.
    pub fn set_shard_key(&self, key: u64) {
        self.shard.store(key, Ordering::SeqCst);
    }

    /// Wake whoever granted us last (or the coordinator before any grant).
    fn wake_granter(&self) {
        let p = self.granter.load(Ordering::SeqCst);
        if p.is_null() {
            self.default_sched.unpark();
        } else {
            unsafe { &*p }.unpark();
        }
    }

    /// Lock the legacy slot state, transparently recovering from poisoning
    /// (a simulated thread that panicked mid-hand-off must not wedge the
    /// scheduler).
    fn legacy_state(&self) -> sync::MutexGuard<'_, SlotState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn legacy_wait<'a>(
        &self,
        guard: sync::MutexGuard<'a, SlotState>,
    ) -> sync::MutexGuard<'a, SlotState> {
        match self.cond.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Called by the backing OS thread: announce that we are parked and wait
    /// until the scheduler grants the baton. Returns `false` if the engine is
    /// shutting down and the thread must unwind without running user code.
    /// On `true`, the instant context of the granting event has been
    /// installed in this OS thread's thread-local slot.
    pub fn park_and_wait(&self) -> bool {
        // We are about to stop executing the current event.
        set_instant_ctx(None);
        let granted = if self.legacy {
            self.park_and_wait_legacy()
        } else {
            self.park_and_wait_futex()
        };
        if !granted {
            return false;
        }
        // Resuming on behalf of the granting event: install its context so
        // pushes made by user code route to the right worker outbox.
        set_instant_ctx(Some(InstantCtx {
            engine: self.engine_token,
            worker: match self.grant_worker.load(Ordering::SeqCst) {
                NO_WORKER => 0,
                w => w,
            },
            parent_time: self.grant_time.load(Ordering::SeqCst),
            parent_seq: self.grant_seq.load(Ordering::SeqCst),
            shard: self.shard.load(Ordering::SeqCst),
            defer: self.grant_defer.load(Ordering::SeqCst),
            sub: 0,
        }));
        true
    }

    fn park_and_wait_futex(&self) -> bool {
        // Publish our handle before the Parked store so the scheduler can
        // unpark us as soon as it observes the phase.
        let _ = self.os_thread.set(std::thread::current());
        self.phase.store(Phase::Parked as u32, Ordering::SeqCst);
        self.wake_granter();
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Granted as u32 {
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if spins < self.spin {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.phase.store(Phase::Running as u32, Ordering::SeqCst);
        true
    }

    fn park_and_wait_legacy(&self) -> bool {
        let mut st = self.legacy_state();
        st.phase = Phase::Parked;
        self.cond.notify_all();
        while st.phase != Phase::Granted {
            if st.shutdown {
                return false;
            }
            st = self.legacy_wait(st);
        }
        if st.shutdown {
            return false;
        }
        st.phase = Phase::Running;
        true
    }

    /// Spin-then-park (on the granting thread) until the slot's phase is
    /// `Parked` or `Finished`, returning the phase observed.
    ///
    /// Parks are unbounded only while the slot's granter pointer is *ours*:
    /// the thread notifies exactly the granter recorded in that pointer when
    /// it parks or finishes, so a granter that is not (or no longer) the
    /// recorded one — because a concurrent same-instant wake from another
    /// shard raced it — is off the wake-up path and must poll with bounded
    /// parks instead.
    fn await_parked_or_finished(&self, source: &GrantSource<'_>) -> Phase {
        // Make sure the simulated thread can wake us before we decide to
        // sleep (SeqCst pairing with the thread's phase store).
        source.handle.register_current();
        let me = source.handle as *const SchedHandle as *mut SchedHandle;
        let mut spins = 0u32;
        loop {
            let phase = self.phase.load(Ordering::SeqCst);
            if phase == Phase::Parked as u32 || phase == Phase::Finished as u32 {
                return Phase::from_u32(phase);
            }
            if spins < source.spin {
                spins += 1;
                std::hint::spin_loop();
            } else if self.granter.load(Ordering::SeqCst) == me {
                std::thread::park();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Called by the granting side: wait until the OS thread has reached its
    /// first park (right after spawn, the thread may not have started yet).
    #[cfg(test)]
    pub fn wait_until_parked_or_finished(&self, source: &GrantSource<'_>) {
        if self.legacy {
            let mut st = self.legacy_state();
            while st.phase != Phase::Parked && st.phase != Phase::Finished {
                st = self.legacy_wait(st);
            }
            return;
        }
        self.await_parked_or_finished(source);
    }

    /// Called by the granting side: grant the baton to the (eventually)
    /// parked thread and block until it parks again or finishes. `worker`,
    /// `parent_time`/`parent_seq` and `defer` describe the granting event;
    /// the resumed thread installs them as its instant context. Returns
    /// `false` if the thread was already finished (stale wake event).
    pub fn grant_and_wait(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        if self.legacy {
            return self.grant_and_wait_legacy(source, worker, parent_time, parent_seq, defer);
        }
        let me = source.handle as *const SchedHandle as *mut SchedHandle;
        // Publish ourselves as the granter *before* waiting for the park, so
        // a freshly spawned thread's first `Parked` store wakes us and not
        // the engine-wide default handle. A concurrent granter may overwrite
        // this; await_parked_or_finished then degrades to bounded parks.
        self.granter.store(me, Ordering::SeqCst);
        loop {
            if self.await_parked_or_finished(source) == Phase::Finished {
                return false;
            }
            // Win the grant first; publish the context only as the winner.
            if self
                .phase
                .compare_exchange(
                    Phase::Parked as u32,
                    Phase::Granting as u32,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break;
            }
        }
        // Exclusive between the Granting and Granted stores: the thread only
        // reads these after observing Granted. Re-store the granter pointer
        // in case a racing granter's early store overwrote it.
        self.granter.store(me, Ordering::SeqCst);
        self.grant_worker.store(worker, Ordering::SeqCst);
        self.grant_time.store(parent_time, Ordering::SeqCst);
        self.grant_seq.store(parent_seq, Ordering::SeqCst);
        self.grant_defer.store(defer, Ordering::SeqCst);
        self.phase.store(Phase::Granted as u32, Ordering::SeqCst);
        self.os_thread
            .get()
            .expect("parked thread published its handle")
            .unpark();
        self.await_parked_or_finished(source);
        true
    }

    fn grant_and_wait_legacy(
        &self,
        source: &GrantSource<'_>,
        worker: usize,
        parent_time: u64,
        parent_seq: u64,
        defer: bool,
    ) -> bool {
        let _ = source;
        let mut st = self.legacy_state();
        // Wait for the thread to park (it may not have started yet, or a
        // concurrent granter may be mid-hand-off — the condvar broadcast on
        // every transition keeps all waiting granters live).
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            st = self.legacy_wait(st);
        }
        if st.phase == Phase::Finished {
            return false;
        }
        // Publish the grant context under the slot lock, exclusive with any
        // concurrent granter by construction.
        self.granter.store(
            source.handle as *const SchedHandle as *mut SchedHandle,
            Ordering::SeqCst,
        );
        self.grant_worker.store(worker, Ordering::SeqCst);
        self.grant_time.store(parent_time, Ordering::SeqCst);
        self.grant_seq.store(parent_seq, Ordering::SeqCst);
        self.grant_defer.store(defer, Ordering::SeqCst);
        st.phase = Phase::Granted;
        self.cond.notify_all();
        while st.phase != Phase::Parked && st.phase != Phase::Finished {
            st = self.legacy_wait(st);
        }
        true
    }

    /// Called by the backing OS thread when its body has returned or panicked.
    pub fn mark_finished(&self) {
        set_instant_ctx(None);
        if self.legacy {
            let mut st = self.legacy_state();
            st.phase = Phase::Finished;
            self.cond.notify_all();
            return;
        }
        self.phase.store(Phase::Finished as u32, Ordering::SeqCst);
        self.wake_granter();
    }

    /// Called during teardown: release any thread that is still waiting for
    /// the baton so its OS thread can exit.
    pub fn request_shutdown(&self) {
        if self.legacy {
            let mut st = self.legacy_state();
            st.shutdown = true;
            self.cond.notify_all();
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.os_thread.get() {
            thread.unpark();
        }
        // A thread that has not yet published its handle has not parked
        // either: it will observe the shutdown flag before its first park.
    }

    /// True if the thread is currently parked (used for deadlock reporting).
    pub fn is_parked(&self) -> bool {
        if self.legacy {
            return matches!(self.legacy_state().phase, Phase::Parked | Phase::Created);
        }
        matches!(
            Phase::from_u32(self.phase.load(Ordering::SeqCst)),
            Phase::Parked | Phase::Created
        )
    }

    /// True if the thread has finished.
    pub fn is_finished(&self) -> bool {
        if self.legacy {
            return self.legacy_state().phase == Phase::Finished;
        }
        self.phase.load(Ordering::SeqCst) == Phase::Finished as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn slot(id: u64, tuning: &SimTuning, sched: &Arc<SchedHandle>) -> Arc<ThreadSlot> {
        Arc::new(ThreadSlot::new(
            ThreadId(id),
            "t".into(),
            tuning,
            Arc::clone(sched),
            0,
            id,
        ))
    }

    fn both_tunings() -> [SimTuning; 2] {
        [
            SimTuning::default(),
            SimTuning {
                legacy_condvar_handoff: true,
                ..SimTuning::default()
            },
        ]
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ThreadId(3)), "T3");
        assert_eq!(ThreadId(9).as_u64(), 9);
    }

    #[test]
    fn slot_handoff_roundtrip() {
        for tuning in both_tunings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource {
                handle: &sched,
                spin: tuning.handoff_spin,
            };
            let slot = slot(1, &tuning, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                // First park, then run once, then finish.
                assert!(s2.park_and_wait());
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished(&source);
            assert!(slot.is_parked() || slot.is_finished());
            assert!(slot.grant_and_wait(&source, NO_WORKER, 0, 0, false));
            assert!(slot.is_finished());
            // A second grant on a finished thread reports staleness.
            assert!(!slot.grant_and_wait(&source, NO_WORKER, 0, 0, false));
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_releases_parked_thread() {
        for tuning in both_tunings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource {
                handle: &sched,
                spin: tuning.handoff_spin,
            };
            let slot = slot(2, &tuning, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                let resumed = s2.park_and_wait();
                assert!(!resumed);
                s2.mark_finished();
            });
            slot.wait_until_parked_or_finished(&source);
            slot.request_shutdown();
            h.join().unwrap();
            assert!(slot.is_finished());
        }
    }

    #[test]
    fn many_handoffs_roundtrip_quickly() {
        for tuning in both_tunings() {
            let sched = Arc::new(SchedHandle::new());
            let source = GrantSource {
                handle: &sched,
                spin: tuning.handoff_spin,
            };
            let slot = slot(3, &tuning, &sched);
            let s2 = slot.clone();
            let h = std::thread::spawn(move || {
                for _ in 0..10_000 {
                    if !s2.park_and_wait() {
                        break;
                    }
                }
                s2.mark_finished();
            });
            for seq in 0..10_000 {
                assert!(slot.grant_and_wait(&source, NO_WORKER, 0, seq, false));
            }
            slot.request_shutdown();
            let _ = slot.grant_and_wait(&source, NO_WORKER, 0, 10_000, false);
            h.join().unwrap();
        }
    }

    #[test]
    fn shard_key_is_updatable() {
        let tuning = SimTuning::default();
        let sched = Arc::new(SchedHandle::new());
        let slot = slot(7, &tuning, &sched);
        assert_eq!(slot.shard_key(), 7);
        slot.set_shard_key(2);
        assert_eq!(slot.shard_key(), 2);
    }
}
