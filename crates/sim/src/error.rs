//! Error types for the simulation engine.

use std::fmt;

use crate::time::SimTime;

/// Errors reported by [`crate::Engine::run`].
#[derive(Debug)]
pub enum SimError {
    /// All remaining simulated threads are parked and no events are pending:
    /// the simulated program can never make progress again.
    Deadlock {
        /// Virtual time at which the deadlock was detected.
        at: SimTime,
        /// Names of the threads that are still parked.
        parked_threads: Vec<String>,
    },
    /// A simulated thread panicked; the panic message is propagated here.
    ThreadPanic {
        /// Name of the thread that panicked.
        thread: String,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// The engine exceeded its configured event budget (runaway simulation guard).
    EventLimitExceeded {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// `run` was called more than once on the same engine.
    AlreadyRan,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, parked_threads } => {
                write!(
                    f,
                    "simulation deadlock at {at}: {} thread(s) parked forever: {}",
                    parked_threads.len(),
                    parked_threads.join(", ")
                )
            }
            SimError::ThreadPanic { thread, message } => {
                write!(f, "simulated thread '{thread}' panicked: {message}")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event limit of {limit} events")
            }
            SimError::AlreadyRan => write!(f, "Engine::run may only be called once"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::Deadlock {
            at: SimTime::from_micros(42),
            parked_threads: vec!["a".into(), "b".into()],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("a, b"));

        let e = SimError::ThreadPanic {
            thread: "worker".into(),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("worker"));
        assert!(e.to_string().contains("boom"));

        assert!(SimError::EventLimitExceeded { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(SimError::AlreadyRan.to_string().contains("once"));
    }
}
