//! Stackful continuations: run a simulated thread's slice on the
//! scheduler's own OS thread.
//!
//! The PR 3 baton pays two OS context switches per simulated step (grant =
//! unpark the thread's OS thread + park ours; park = the reverse). This
//! module removes the OS scheduler from that path entirely: each simulated
//! thread owns a private call stack, and the scheduler *switches onto it*
//! with a ~dozen-instruction register swap, runs the slice to its next yield
//! point, and switches back. Blocking points (`WaitSet`, channels, DSM
//! faults) become resumption points on the coroutine's saved stack — the
//! user-visible programming model (ordinary imperative Rust against
//! [`crate::SimHandle`]) is unchanged.
//!
//! ## The switch
//!
//! x86-64 SysV: a context is fully described by the callee-saved registers
//! (`rbx`, `rbp`, `r12`–`r15`) plus the stack pointer. [`raw_switch`] pushes
//! the six registers, stores `rsp` through its first argument, installs the
//! `rsp` passed as its second, pops six registers and returns — landing in
//! whatever `raw_switch` call (or bootstrap frame) last saved that stack.
//!
//! A fresh coroutine's stack is seeded with a hand-built frame: six register
//! slots (with `r12` = pointer to the [`Coro`]) below the address of a
//! naked trampoline that moves `r12` into the first-argument register and
//! calls [`coro_entry`]. `rbp` is seeded as zero so frame-pointer walkers
//! stop at the stack boundary.
//!
//! ## Safety rules (enforced by the caller, `ThreadSlot`'s phase machine)
//!
//! * At most one OS thread resumes a given coroutine at a time, and never
//!   while it is already running.
//! * A started coroutine must be driven to completion (normally, or by the
//!   shutdown unwind during teardown) before it is dropped, so the
//!   destructors of the frames parked on its stack run.
//! * Captured state crosses OS threads between slices (a thread may migrate
//!   between scheduler workers), which is why spawn closures are `Send`.
//!
//! Panics never cross the switch: the slice body runs under
//! `catch_unwind` *inside* the coroutine, and [`coro_entry`] adds a
//! belt-and-braces catch so no unwind can reach the bootstrap frame.

use std::panic::{self, AssertUnwindSafe};

/// Whether this target has a stack-switching implementation. When false the
/// engine silently downgrades `HandoffMode::Continuation` to the OS-thread
/// baton, so the programming model and determinism are preserved everywhere.
/// `--cfg dsm_force_no_coro` forces the fallback even where the asm path
/// exists, so CI can exercise the non-x86-64 downgrade on x86-64 hosts.
pub(crate) const SUPPORTED: bool = cfg!(all(target_arch = "x86_64", not(dsm_force_no_coro)));

/// Default private stack size of one continuation. Committed lazily by the
/// OS (the buffer is allocated but never written ahead of use), so the cost
/// of an oversized default is address space, not memory. Deeply recursive
/// workloads should either raise this via `SpawnOptions::stack_bytes` or
/// fall back to the OS-thread baton, which has a guard page.
pub(crate) const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Magic word written at the low end of the stack; checked after every
/// slice. Heap stacks have no guard page, so this is the (best-effort)
/// overflow tripwire.
const CANARY: u64 = 0xDEAD_57AC_C0DE_F00D;

#[cfg(target_arch = "x86_64")]
mod arch {
    /// Switch stacks: save the current continuation at `*save_sp`, resume
    /// the one saved at `new_sp`. Returns when somebody switches back to
    /// `*save_sp`.
    ///
    /// # Safety
    /// `new_sp` must be a stack pointer previously produced by this function
    /// (or by [`bootstrap`]), whose continuation is suspended and owned by
    /// the caller.
    #[unsafe(naked)]
    pub(super) unsafe extern "sysv64" fn raw_switch(save_sp: *mut usize, new_sp: usize) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First frame of a fresh coroutine: `raw_switch`'s `ret` lands here
    /// with `r12` = the `Coro` pointer seeded by [`bootstrap`]. Forward it
    /// as the first argument and enter Rust. `coro_entry` never returns (it
    /// switches away for good); trap if it somehow does.
    #[unsafe(naked)]
    unsafe extern "sysv64" fn trampoline() {
        core::arch::naked_asm!(
            "mov rdi, r12",
            "call {entry}",
            "ud2",
            entry = sym super::coro_entry,
        )
    }

    /// Seed a fresh stack so that switching to the returned `rsp` enters
    /// [`trampoline`] with `r12 = coro`. `top` must be 16-byte aligned.
    ///
    /// Layout (descending): trampoline return address at `top - 8`, then the
    /// six register slots popped by `raw_switch`. After the six pops and the
    /// `ret`, `rsp == top`, so the `call` inside the trampoline meets the
    /// SysV 16-byte alignment rule.
    pub(super) unsafe fn bootstrap(top: usize, coro: *mut super::Coro) -> usize {
        debug_assert_eq!(top % 16, 0);
        let sp = top - 7 * 8;
        let slots = sp as *mut u64;
        // SAFETY: the caller passes `top` inside a live stack buffer at
        // least 7 words deep, so `slots..slots+7` is in-bounds, writable
        // memory owned by the Coro; nothing else references it yet.
        unsafe {
            slots.add(0).write(0); // r15
            slots.add(1).write(0); // r14
            slots.add(2).write(0); // r13
            slots.add(3).write(coro as u64); // r12 -> first argument
            slots.add(4).write(0); // rbx
            slots.add(5).write(0); // rbp (stop frame walkers here)
            slots.add(6).write(trampoline as *const () as usize as u64); // ret target
        }
        sp
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod arch {
    //! Stub for targets without a switch implementation: never reached,
    //! because `SUPPORTED == false` downgrades every continuation spawn to
    //! the OS-thread baton before a `Coro` is created.
    pub(super) unsafe extern "C" fn raw_switch(_save_sp: *mut usize, _new_sp: usize) {
        unreachable!("continuation hand-off is not supported on this target");
    }
    pub(super) unsafe fn bootstrap(_top: usize, _coro: *mut super::Coro) -> usize {
        unreachable!("continuation hand-off is not supported on this target");
    }
}

/// A stackful coroutine: a private stack plus the saved stack pointers of
/// the two sides of the switch. Owned by a `ThreadSlot`; all access is
/// serialized by the slot's phase machine (exactly one resumer at a time,
/// never concurrent with the coroutine itself).
pub(crate) struct Coro {
    /// Backing memory of the private stack. Allocated with uninitialized
    /// content on purpose: pages are committed only as the coroutine
    /// actually grows into them.
    stack: Vec<u8>,
    /// 16-byte-aligned top-of-stack derived from `stack`.
    top: usize,
    /// Saved `rsp` of the suspended coroutine (valid while `started` and
    /// not `done`, or before the first resume as the bootstrap frame).
    coro_sp: usize,
    /// Saved `rsp` of whoever resumed the coroutine (valid while the
    /// coroutine runs; where `yield_to_scheduler` switches back to).
    sched_sp: usize,
    /// The slice body; taken by `coro_entry` on first resume.
    body: Option<Box<dyn FnOnce() + Send>>,
    /// The coroutine has been resumed at least once.
    started: bool,
    /// The body has returned (or been fully unwound); the stack holds no
    /// live frames and the coroutine must never be resumed again.
    done: bool,
}

// SAFETY: a Coro migrates between scheduler OS threads (whichever worker
// owns the thread's shard resumes it), but is only ever *accessed* by the
// single resumer the slot's phase machine admits, or by teardown after the
// worker pool has quit. The body is `Send`; the raw stack is private memory.
unsafe impl Send for Coro {}

impl Coro {
    /// Create a suspended coroutine that will run `body` on `stack` (a
    /// recycled buffer, or a fresh one of `stack_bytes`) when first resumed.
    pub fn new(body: Box<dyn FnOnce() + Send>, stack_bytes: usize, stack: Option<Vec<u8>>) -> Self {
        // Compile-time constant per target; the engine checks `SUPPORTED`
        // before choosing this backing, so reaching here unsupported is a
        // bug.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(
                SUPPORTED,
                "continuation hand-off unsupported on this target"
            );
        }
        let mut stack = match stack {
            Some(s) if s.capacity() >= stack_bytes => s,
            _ => Vec::with_capacity(stack_bytes.max(64 * 1024)),
        };
        let base = stack.as_mut_ptr() as usize;
        let top = (base + stack.capacity()) & !15;
        // Plant the overflow canary at the lowest word (aligned up).
        let canary_at = ((base + 7) & !7) as *mut u64;
        // SAFETY: `canary_at` is the 8-aligned low end of the freshly
        // allocated stack buffer (capacity >= 64 KiB), in-bounds and
        // exclusively owned here.
        unsafe { canary_at.write(CANARY) };
        // The bootstrap frame needs the Coro's *final* address (it captures
        // a self-pointer), so it is seeded on first resume, after the owner
        // has stored the Coro at its permanent location.
        Coro {
            stack,
            top,
            coro_sp: 0,
            sched_sp: 0,
            body: Some(body),
            started: false,
            done: false,
        }
    }

    /// The canary word's address (low end of the stack).
    fn canary_at(&self) -> *const u64 {
        ((self.stack.as_ptr() as usize + 7) & !7) as *const u64
    }

    /// Resume the coroutine until its next yield (or completion). Returns
    /// `true` when the body has completed and the coroutine must not be
    /// resumed again.
    ///
    /// # Safety
    /// The caller must hold exclusive execution rights (the slot phase
    /// machine's `Granting`/`Running` window, or teardown after the worker
    /// pool quit), and the coroutine must be suspended and not `done`.
    pub unsafe fn resume(&mut self) -> bool {
        debug_assert!(!self.done, "resumed a completed coroutine");
        // Seed the bootstrap frame lazily so it captures the Coro's settled
        // address; the Coro must not move between resumes (the slot stores
        // it in place for its whole life).
        if !self.started {
            self.started = true;
            // SAFETY: `self.top` is the aligned top of this Coro's own
            // stack buffer, and `self` sits at its permanent address (the
            // slot never moves it between resumes).
            self.coro_sp = unsafe { arch::bootstrap(self.top, self as *mut Coro) };
        }
        // SAFETY: `self.coro_sp` was produced by `bootstrap` (first resume)
        // or by the coroutine's own `raw_switch` save (later resumes); the
        // caller's exclusivity contract guarantees the continuation is
        // suspended and owned by us.
        unsafe { arch::raw_switch(&mut self.sched_sp, self.coro_sp) };
        // Back on the scheduler stack. The coroutine either parked (saved
        // its sp via yield_to_scheduler) or completed (set `done`).
        assert!(
            // SAFETY: `canary_at` points at the low word of the live stack
            // buffer, written once in `new`; reading it races with nothing
            // (the coroutine just suspended on this very OS thread).
            unsafe { self.canary_at().read() } == CANARY,
            "simulated-thread stack overflow: the continuation overran its private \
             stack (raise SpawnOptions::stack_bytes or use the baton fallback)"
        );
        self.done
    }

    /// Park the running coroutine: save its continuation and switch back to
    /// the scheduler side. Returns when somebody resumes it.
    ///
    /// # Safety
    /// Must be called *from inside* this coroutine (on its private stack).
    pub unsafe fn yield_to_scheduler(&mut self) {
        // SAFETY: we are running *on* this coroutine's stack (the caller's
        // contract), so `sched_sp` is the suspended resumer saved by the
        // `raw_switch` that entered us; switching back to it is the exact
        // inverse of that switch.
        unsafe { arch::raw_switch(&mut self.coro_sp, self.sched_sp) };
    }

    /// True once the body has run to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True if the coroutine was resumed at least once.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Reclaim the stack buffer of a completed (or never-started)
    /// coroutine for reuse by a future spawn.
    pub fn take_stack(mut self) -> Vec<u8> {
        assert!(self.done || !self.started, "cannot reclaim a live stack");
        std::mem::take(&mut self.stack)
    }
}

impl Drop for Coro {
    fn drop(&mut self) {
        // A started-but-unfinished coroutine still has live frames (and
        // their destructors) parked on its stack. Dropping it would leak
        // them silently; the engine's teardown path is responsible for
        // resuming it under the shutdown flag first. Make the violation
        // loud in tests without aborting production teardown.
        debug_assert!(
            !self.started || self.done,
            "dropped a suspended continuation without unwinding it"
        );
    }
}

/// Rust-side entry of a fresh coroutine (reached through the naked
/// trampoline). Runs the body, marks completion, and switches away for good.
pub(crate) extern "sysv64" fn coro_entry(coro: *mut Coro) -> ! {
    // SAFETY: `coro` is the pointer seeded by `bootstrap`; the resumer gave
    // us exclusive access by switching here.
    let coro = unsafe { &mut *coro };
    if let Some(body) = coro.body.take() {
        // The body performs its own panic handling (catch_unwind +
        // record_panic); this outer catch only guarantees no unwind ever
        // reaches the bootstrap frame, which has no landing pads.
        let _ = panic::catch_unwind(AssertUnwindSafe(body));
    }
    coro.done = true;
    // SAFETY: still on this coroutine's private stack — the precondition of
    // yield_to_scheduler; the final switch back to the resumer.
    unsafe { coro.yield_to_scheduler() };
    // A completed coroutine must never be resumed.
    std::process::abort();
}

#[cfg(all(test, target_arch = "x86_64", not(dsm_force_no_coro)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Drive a coroutine that yields through a shared cell, without any
    /// engine machinery: resume/yield alternation and completion flags.
    #[test]
    fn coroutine_roundtrip_counts() {
        let hits = Arc::new(AtomicUsize::new(0));
        // The body needs to call yield_to_scheduler on its own Coro; thread
        // the pointer through a cell the same way ThreadSlot does.
        let shared: Arc<std::sync::atomic::AtomicPtr<Coro>> =
            Arc::new(std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()));
        let h2 = hits.clone();
        let s2 = shared.clone();
        let body = Box::new(move || {
            for _ in 0..5 {
                h2.fetch_add(1, Ordering::SeqCst);
                let p = s2.load(Ordering::SeqCst);
                // SAFETY: `p` points at the pinned Boxed Coro this body runs
                // on; we are on its stack, exactly the yield precondition.
                unsafe { (*p).yield_to_scheduler() };
            }
        });
        let mut coro = Box::new(Coro::new(body, 256 * 1024, None));
        shared.store(&mut *coro, Ordering::SeqCst);
        let mut resumes = 0;
        // SAFETY: single-threaded test — this loop is the only resumer, and
        // the loop condition stops at completion.
        while !unsafe { coro.resume() } {
            resumes += 1;
            assert!(resumes <= 6, "coroutine failed to complete");
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(resumes, 5);
        assert!(coro.is_done());
        let _stack = coro.take_stack();
    }

    #[test]
    fn panic_inside_body_is_contained() {
        let body = Box::new(|| {
            let caught = panic::catch_unwind(|| panic!("inner"));
            assert!(caught.is_err());
        });
        let mut coro = Box::new(Coro::new(body, 256 * 1024, None));
        // SAFETY: sole resumer of a fresh suspended coroutine.
        assert!(unsafe { coro.resume() });
    }

    #[test]
    fn unstarted_coroutine_drops_body_without_running() {
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = Guard(drops.clone());
        let coro = Box::new(Coro::new(
            Box::new(move || {
                let _g = &guard;
                unreachable!("body must not run");
            }),
            128 * 1024,
            None,
        ));
        assert!(!coro.is_started());
        drop(coro);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "captured state must drop");
    }
}
