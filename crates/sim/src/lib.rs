//! # dsmpm2-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the execution substrate on which the DSM-PM2
//! reproduction runs. The original system executes on real clusters with the
//! PM2 user-level thread package; here, "cluster nodes" and "PM2 threads" are
//! simulated. By default a simulated thread is a *continuation* — a stackful
//! coroutine whose slices execute inline on the scheduler's own OS thread,
//! mirroring how Marcel multiplexes user-level threads onto a kernel thread —
//! and control passes to exactly one simulated thread at a time, in the order
//! dictated by a virtual-time event queue. Workloads that cannot run as
//! continuations (deep recursion, very large stacks) can opt individual
//! threads back onto a dedicated OS thread with a futex-style baton hand-off
//! ([`SpawnOptions::baton`]), and the whole engine can be switched between
//! the three hand-off substrates with [`SimTuning`] / `DSM_SIM_HANDOFF`.
//! Every mode produces the same fully deterministic execution in *virtual
//! time*, which is what the benchmark harness measures.
//!
//! ## Programming model
//!
//! ```
//! use dsmpm2_sim::{Engine, SimDuration};
//!
//! let mut engine = Engine::new();
//! engine.spawn("worker", |h| {
//!     h.charge(SimDuration::from_micros(10)); // local compute
//!     h.sleep(SimDuration::from_micros(5));   // yield + advance time
//!     assert_eq!(h.now().as_micros_f64(), 15.0);
//! });
//! engine.run().unwrap();
//! ```
//!
//! Key pieces:
//!
//! * [`Engine`] — owns the event queue and the scheduler loop.
//! * [`SimHandle`] — per-thread handle: virtual clock, compute charging,
//!   sleeping, parking, spawning.
//! * [`WaitSet`] — condition-variable-like wait queues for building blocking
//!   primitives (used by DSM page waits, locks, barriers).
//! * [`channel`] — virtual-time message channels with per-message delivery
//!   delays (used by the Madeleine transport model).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod channel;
mod continuation;
mod engine;
mod error;
mod handle;
mod thread;
mod time;
mod wait;

pub use channel::{channel, channel_on, SimReceiver, SimSender, TickOutbox};
pub use engine::{
    BlockReason, Engine, EngineConfig, EngineCtl, EventChoice, HandoffMode, RunReport,
    ScheduleController, SimTuning, SliceOutcome, SpawnOptions,
};
pub use error::SimError;
pub use handle::SimHandle;
pub use thread::ThreadId;
pub use time::{SimDuration, SimTime};
pub use wait::WaitSet;
