//! The per-thread handle through which simulated code interacts with the
//! virtual clock and the scheduler.
//!
//! A [`SimHandle`] is passed (by mutable reference) into every simulated
//! thread body. It is intentionally *not* `Clone` and not `Send`: it belongs
//! to exactly one simulated thread, mirroring how a PM2 thread owns its own
//! Marcel descriptor.

use std::panic;
use std::sync::Arc;

use crate::engine::{BlockReason, EngineCtl, Shared, ShutdownUnwind, SliceOutcome, SpawnOptions};
use crate::thread::{ThreadId, ThreadSlot};
use crate::time::{SimDuration, SimTime};

/// Handle owned by a simulated thread.
pub struct SimHandle {
    shared: Arc<Shared>,
    tid: ThreadId,
    slot: Arc<ThreadSlot>,
    /// Locally accumulated compute time not yet reflected in the global clock.
    pending: SimDuration,
}

impl SimHandle {
    pub(crate) fn new(shared: Arc<Shared>, tid: ThreadId, slot: Arc<ThreadSlot>) -> Self {
        SimHandle {
            shared,
            tid,
            slot,
            pending: SimDuration::ZERO,
        }
    }

    /// The identity of this simulated thread.
    pub fn id(&self) -> ThreadId {
        self.tid
    }

    /// The name this thread was spawned with.
    pub fn name(&self) -> &str {
        &self.slot.name
    }

    /// The thread's local view of virtual time: the global clock plus any
    /// compute charged since the last yield.
    pub fn now(&self) -> SimTime {
        self.shared.now() + self.pending
    }

    /// The global clock, excluding locally pending compute.
    pub fn global_now(&self) -> SimTime {
        self.shared.now()
    }

    /// Compute time charged locally but not yet flushed to the global clock.
    pub fn pending(&self) -> SimDuration {
        self.pending
    }

    /// Charge `d` of local compute time. The charge is folded into the global
    /// clock at the next yield point (sleep, park, flush, message send...),
    /// so hot loops pay no scheduler round-trip per charge.
    pub fn charge(&mut self, d: SimDuration) {
        self.pending += d;
    }

    /// Force pending compute into the global clock by yielding.
    pub fn flush(&mut self) {
        if !self.pending.is_zero() {
            self.sleep(SimDuration::ZERO);
        }
    }

    /// The shard key this thread is currently bound to: all its wake-ups
    /// execute on the worker owning that shard. Defaults to the key it was
    /// spawned with (the spawner's shard, or the thread id).
    pub fn shard(&self) -> u64 {
        self.slot.shard_key()
    }

    /// Re-home this thread onto shard `key`. Layers call this when a thread
    /// migrates between cluster nodes, *before* the migration's sleep, so
    /// the post-migration wake-up already executes on the destination
    /// node's worker.
    pub fn set_shard(&mut self, key: u64) {
        self.slot.set_shard_key(key);
        crate::engine::set_instant_ctx_shard(key);
    }

    /// Advance virtual time by `d` (plus any pending compute), yielding to the
    /// scheduler so other threads and messages can make progress.
    pub fn sleep(&mut self, d: SimDuration) {
        let wake_at = self.shared.now() + self.pending + d;
        self.pending = SimDuration::ZERO;
        self.shared.schedule_wake_cached(&self.slot, wake_at);
        // Reified slice outcome: we advanced time and scheduled our own wake.
        self.slot.record_outcome(SliceOutcome::Yielded(wake_at));
        self.park_raw();
    }

    /// Yield the baton without advancing time (other events scheduled at the
    /// current instant get a chance to run first).
    pub fn yield_now(&mut self) {
        self.sleep(SimDuration::ZERO);
    }

    /// Park this thread until some other party wakes it via
    /// [`EngineCtl::wake_at`]/[`EngineCtl::wake_after`].
    ///
    /// Spurious wake-ups are possible (and harmless): every caller must
    /// re-check its wait condition in a loop. If compute time is pending, the
    /// call first behaves like `flush()` and returns, so the caller's loop
    /// re-evaluates its condition at the correct virtual time before really
    /// blocking.
    pub fn park(&mut self) {
        self.park_with(BlockReason::Other);
    }

    /// [`SimHandle::park`] with a reified blocking reason: the yield site
    /// annotates *why* the thread blocks (DSM page fault, ack wait, RPC
    /// reply, barrier...), feeding the engine's
    /// [`crate::Engine::block_profile`]. Blocking primitives
    /// ([`crate::WaitSet::wait_until_why`], channel receives) thread their
    /// reason through here.
    pub fn park_with(&mut self, reason: BlockReason) {
        if !self.pending.is_zero() {
            self.flush();
            return;
        }
        self.slot.record_outcome(SliceOutcome::Blocked(reason));
        self.shared.record_block(reason);
        self.park_raw();
    }

    fn park_raw(&mut self) {
        if !self.slot.park_and_wait() {
            // Engine teardown: unwind the user stack quietly. resume_unwind
            // (rather than panic!) skips the panic hook, so teardown does not
            // spam stderr with backtraces.
            panic::resume_unwind(Box::new(ShutdownUnwind));
        }
    }

    /// Schedule a wake-up for another simulated thread after `delay` measured
    /// from this thread's local time.
    pub fn wake(&self, tid: ThreadId, delay: SimDuration) {
        self.shared.schedule_wake(tid, self.now() + delay);
    }

    /// Spawn a new simulated thread that becomes runnable at this thread's
    /// current local time, on this thread's shard.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        self.spawn_with(name, SpawnOptions::default(), f)
    }

    /// Spawn a new simulated thread with per-thread [`SpawnOptions`] (force
    /// the OS-thread baton for deep recursion, size the continuation stack),
    /// runnable at this thread's current local time, on this thread's shard.
    pub fn spawn_with<F>(&mut self, name: impl Into<String>, opts: SpawnOptions, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let start_at = self.now();
        let key = self.slot.shard_key();
        self.shared
            .spawn_thread(name.into(), start_at, false, Some(key), opts, f)
    }

    /// Spawn a new simulated thread bound to an explicit shard (see
    /// [`crate::Engine::spawn_on`]), runnable at this thread's local time.
    pub fn spawn_on<F>(&mut self, shard_key: u64, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let start_at = self.now();
        self.shared.spawn_thread(
            name.into(),
            start_at,
            false,
            Some(shard_key),
            SpawnOptions::default(),
            f,
        )
    }

    /// Spawn a daemon thread (see [`crate::Engine::spawn_daemon`]) starting at
    /// this thread's current local time, on this thread's shard.
    pub fn spawn_daemon<F>(&mut self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&mut SimHandle) + Send + 'static,
    {
        let start_at = self.now();
        let key = self.slot.shard_key();
        self.shared.spawn_thread(
            name.into(),
            start_at,
            true,
            Some(key),
            SpawnOptions::default(),
            f,
        )
    }

    /// Schedule a closure to run on the scheduler after `delay` from this
    /// thread's local time (used to model message delivery). The closure
    /// executes on this thread's shard; use [`SimHandle::call_after_on`] to
    /// pin it elsewhere.
    pub fn call_after<F>(&self, delay: SimDuration, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared
            .schedule_call(self.now() + delay, Some(self.slot.shard_key()), Box::new(f));
    }

    /// Schedule a closure on an explicit shard after `delay` from this
    /// thread's local time.
    pub fn call_after_on<F>(&self, shard_key: u64, delay: SimDuration, f: F)
    where
        F: FnOnce(&EngineCtl) + Send + 'static,
    {
        self.shared
            .schedule_call(self.now() + delay, Some(shard_key), Box::new(f));
    }

    /// A cloneable controller over the engine, usable from shared data
    /// structures (channels, wait queues, RPC reply slots).
    pub fn ctl(&self) -> EngineCtl {
        EngineCtl {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimHandle({} '{}' now={})",
            self.tid,
            self.name(),
            self.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn handle_reports_identity() {
        let mut engine = Engine::new();
        engine.spawn("alpha", |h| {
            assert_eq!(h.name(), "alpha");
            assert_eq!(h.id().as_u64(), 0);
            assert_eq!(h.pending(), SimDuration::ZERO);
        });
        engine.run().unwrap();
    }

    #[test]
    fn park_with_pending_charge_flushes_first() {
        let mut engine = Engine::new();
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        engine.spawn("t", move |h| {
            h.charge(SimDuration::from_micros(9));
            // park() must not lose the 9us of compute and must not block
            // forever (it flushes and returns, letting us re-check).
            h.park();
            s.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 9_000);
    }

    #[test]
    fn wake_uses_local_time_of_waker() {
        let mut engine = Engine::new();
        let ctl = engine.ctl();
        let when = Arc::new(AtomicU64::new(0));
        let w = when.clone();
        let sleeper = engine.spawn("sleeper", move |h| {
            h.park();
            w.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        let _ = ctl;
        engine.spawn("waker", move |h| {
            h.charge(SimDuration::from_micros(12));
            h.wake(sleeper, SimDuration::from_micros(3));
            h.flush();
        });
        engine.run().unwrap();
        assert_eq!(when.load(Ordering::SeqCst), 15_000);
    }

    #[test]
    fn call_after_runs_relative_to_local_time() {
        let mut engine = Engine::new();
        let when = Arc::new(AtomicU64::new(0));
        let w = when.clone();
        engine.spawn("t", move |h| {
            h.charge(SimDuration::from_micros(5));
            let w2 = w.clone();
            h.call_after(SimDuration::from_micros(10), move |ctl| {
                w2.store(ctl.now().as_nanos(), Ordering::SeqCst);
            });
            h.flush();
        });
        engine.run().unwrap();
        assert_eq!(when.load(Ordering::SeqCst), 15_000);
    }
}
