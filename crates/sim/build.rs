//! Declares the custom cfgs this crate is compiled with so
//! `RUSTFLAGS="--cfg dsm_force_no_coro"` (the CI lane exercising the
//! non-x86-64 baton fallback on x86-64 hosts) passes `unexpected_cfgs`.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(dsm_force_no_coro)");
}
