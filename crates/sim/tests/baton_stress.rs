//! Stress test of the scheduler/thread baton: many short-lived simulated
//! threads with pseudo-random sleeps, yields and nested spawns, run under
//! both hand-off implementations. The futex and legacy-Condvar batons must
//! produce *identical* runs — same final virtual time, same event and
//! context-switch counts — because the hand-off is purely a wall-clock
//! mechanism and must never influence simulated behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsmpm2_sim::{Engine, EngineConfig, RunReport, SimDuration, SimTuning, WaitSet};

/// Deterministic xorshift so both runs see the same "random" schedule.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn engine(tuning: SimTuning) -> Engine {
    Engine::with_config(EngineConfig {
        tuning,
        ..EngineConfig::default()
    })
}

fn storm(tuning: SimTuning) -> (RunReport, u64) {
    let mut engine = engine(tuning);
    let work_done = Arc::new(AtomicU64::new(0));
    // A root thread spawns waves of short-lived children; each child does a
    // pseudo-random mix of yields, sleeps and compute charges, and every
    // eighth child spawns a grandchild. This exercises spawn-park races
    // (Created -> Parked while the scheduler waits), rapid re-grants and the
    // finished-thread reaper.
    let wd = work_done.clone();
    engine.spawn("root", move |h| {
        let mut rng = 0x9E3779B97F4A7C15u64;
        for wave in 0..20u64 {
            for child in 0..25u64 {
                let seed = xorshift(&mut rng);
                let wd = wd.clone();
                h.spawn(format!("w{wave}-c{child}"), move |h| {
                    let mut rng = seed | 1;
                    for _ in 0..(rng % 7) + 1 {
                        match xorshift(&mut rng) % 3 {
                            0 => h.yield_now(),
                            1 => h.sleep(SimDuration::from_nanos(xorshift(&mut rng) % 900 + 1)),
                            _ => h.charge(SimDuration::from_nanos(xorshift(&mut rng) % 300)),
                        }
                    }
                    if seed.is_multiple_of(8) {
                        let wd2 = wd.clone();
                        h.spawn("grandchild", move |h| {
                            h.sleep(SimDuration::from_nanos(5));
                            wd2.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    wd.fetch_add(1, Ordering::SeqCst);
                });
            }
            h.sleep(SimDuration::from_micros(1));
        }
    });
    let report = engine.run().expect("storm must complete");
    (report, work_done.load(Ordering::SeqCst))
}

#[test]
fn thread_storm_is_identical_under_both_handoffs() {
    let (futex, futex_work) = storm(SimTuning::default());
    let (legacy, legacy_work) = storm(SimTuning::legacy());
    assert!(futex.threads_spawned > 500, "storm must actually spawn");
    assert_eq!(futex_work, legacy_work, "work count diverged");
    assert_eq!(futex.final_time, legacy.final_time, "virtual time diverged");
    assert_eq!(futex.events, legacy.events, "event count diverged");
    assert_eq!(
        futex.context_switches, legacy.context_switches,
        "context-switch count diverged"
    );
    assert_eq!(futex.threads_spawned, legacy.threads_spawned);
}

/// WaitSet ping-pong across a crowd of waiters: notify_one/notify_all wake
/// identical thread sets in identical virtual order under both batons.
#[test]
fn waitset_crowd_is_identical_under_both_handoffs() {
    let run = |tuning: SimTuning| -> (RunReport, Vec<u64>) {
        let mut engine = engine(tuning);
        let ws = Arc::new(WaitSet::new());
        let token = Arc::new(AtomicU64::new(0));
        // Completion virtual time per waiter, recorded into the waiter's own
        // slot: a per-index log stays comparable even when several waiters
        // complete at the same instant on different scheduler workers (a
        // shared append-log's order at one instant is wall-clock, not part
        // of the deterministic surface).
        let done_at: Arc<Vec<AtomicU64>> = Arc::new((0..40).map(|_| AtomicU64::new(0)).collect());
        for i in 0..40u64 {
            let ws = ws.clone();
            let token = token.clone();
            let done_at = done_at.clone();
            engine.spawn(format!("waiter{i}"), move |h| {
                ws.wait_until(h, || token.load(Ordering::SeqCst) > i);
                done_at[i as usize].store(h.now().as_nanos(), Ordering::SeqCst);
            });
        }
        let ws2 = ws.clone();
        engine.spawn("driver", move |h| {
            for round in 0..40u64 {
                h.sleep(SimDuration::from_micros(3));
                token.store(round + 1, Ordering::SeqCst);
                if round % 5 == 0 {
                    ws2.notify_all(&h.ctl(), SimDuration::ZERO);
                } else {
                    ws2.notify_one(&h.ctl(), SimDuration::ZERO);
                    ws2.notify_one(&h.ctl(), SimDuration::ZERO);
                }
            }
            // Flush any stragglers.
            h.sleep(SimDuration::from_micros(3));
            ws2.notify_all(&h.ctl(), SimDuration::ZERO);
        });
        let report = engine.run().expect("crowd must complete");
        let times = done_at.iter().map(|t| t.load(Ordering::SeqCst)).collect();
        (report, times)
    };
    let (futex, futex_times) = run(SimTuning::default());
    let (legacy, legacy_times) = run(SimTuning::legacy());
    assert!(futex_times.iter().all(|&t| t > 0), "every waiter completed");
    assert_eq!(futex_times, legacy_times, "wake times diverged");
    assert_eq!(futex.final_time, legacy.final_time);
    assert_eq!(futex.events, legacy.events);
}

/// Teardown under fire: a panic in one thread while hundreds of others are
/// parked or runnable must reclaim every baton and report the panic, under
/// both hand-offs.
#[test]
fn panic_amid_storm_tears_down_under_both_handoffs() {
    for tuning in [SimTuning::default(), SimTuning::legacy()] {
        let mut engine = engine(tuning);
        for i in 0..100u64 {
            engine.spawn(format!("spinner{i}"), move |h| loop {
                h.sleep(SimDuration::from_micros(i % 9 + 1));
            });
        }
        engine.spawn("bomb", |h| {
            h.sleep(SimDuration::from_micros(40));
            panic!("storm bomb");
        });
        match engine.run() {
            Err(dsmpm2_sim::SimError::ThreadPanic { thread, message }) => {
                assert_eq!(thread, "bomb");
                assert!(message.contains("storm bomb"));
            }
            other => panic!("{tuning:?}: expected panic error, got {other:?}"),
        }
    }
}
