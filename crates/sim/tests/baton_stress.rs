//! Stress test of the scheduler/thread hand-off: many short-lived simulated
//! threads with pseudo-random sleeps, yields and nested spawns, run under
//! every hand-off substrate. Continuations on the scheduler's OS thread, the
//! futex-style OS-thread baton and the legacy Mutex+Condvar baton must
//! produce *identical* runs — same final virtual time, same event and
//! context-switch counts — because the hand-off is purely a wall-clock
//! mechanism and must never influence simulated behaviour. A mixed-mode
//! storm additionally pins individual threads onto the OS-thread batons via
//! [`SpawnOptions`] while the engine default stays on continuations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsmpm2_sim::{
    Engine, EngineConfig, HandoffMode, RunReport, SimDuration, SimTuning, SpawnOptions, WaitSet,
};

/// Deterministic xorshift so both runs see the same "random" schedule.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn engine(tuning: SimTuning) -> Engine {
    Engine::with_config(EngineConfig {
        tuning,
        ..EngineConfig::default()
    })
}

/// All three engine-wide hand-off substrates, continuation first (the
/// default and the comparison baseline).
fn all_tunings() -> [SimTuning; 3] {
    [
        SimTuning::default(),
        SimTuning::baton(),
        SimTuning::legacy(),
    ]
}

fn storm(tuning: SimTuning, mixed: bool) -> (RunReport, u64) {
    let mut engine = engine(tuning);
    let work_done = Arc::new(AtomicU64::new(0));
    // A root thread spawns waves of short-lived children; each child does a
    // pseudo-random mix of yields, sleeps and compute charges, and every
    // eighth child spawns a grandchild. This exercises spawn-park races
    // (Created -> Parked while the scheduler waits), rapid re-grants and the
    // finished-thread reaper. In mixed mode every third child is pinned to
    // the futex baton and every seventh to the legacy condvar, so
    // continuation slices interleave with OS-thread hand-offs in the same
    // run.
    let wd = work_done.clone();
    engine.spawn("root", move |h| {
        let mut rng = 0x9E3779B97F4A7C15u64;
        for wave in 0..20u64 {
            for child in 0..25u64 {
                let seed = xorshift(&mut rng);
                let wd = wd.clone();
                let opts = if mixed && child % 3 == 0 {
                    SpawnOptions::baton()
                } else if mixed && child % 7 == 0 {
                    SpawnOptions {
                        handoff: Some(HandoffMode::LegacyCondvar),
                        ..SpawnOptions::default()
                    }
                } else {
                    SpawnOptions::default()
                };
                h.spawn_with(format!("w{wave}-c{child}"), opts, move |h| {
                    let mut rng = seed | 1;
                    for _ in 0..(rng % 7) + 1 {
                        match xorshift(&mut rng) % 3 {
                            0 => h.yield_now(),
                            1 => h.sleep(SimDuration::from_nanos(xorshift(&mut rng) % 900 + 1)),
                            _ => h.charge(SimDuration::from_nanos(xorshift(&mut rng) % 300)),
                        }
                    }
                    if seed.is_multiple_of(8) {
                        let wd2 = wd.clone();
                        h.spawn("grandchild", move |h| {
                            h.sleep(SimDuration::from_nanos(5));
                            wd2.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    wd.fetch_add(1, Ordering::SeqCst);
                });
            }
            h.sleep(SimDuration::from_micros(1));
        }
    });
    let report = engine.run().expect("storm must complete");
    (report, work_done.load(Ordering::SeqCst))
}

#[test]
fn thread_storm_is_identical_under_all_handoffs() {
    let (base, base_work) = storm(SimTuning::default(), false);
    assert!(base.threads_spawned > 500, "storm must actually spawn");
    for tuning in [SimTuning::baton(), SimTuning::legacy()] {
        let (run, work) = storm(tuning, false);
        assert_eq!(base_work, work, "{tuning:?}: work count diverged");
        assert_eq!(
            base.final_time, run.final_time,
            "{tuning:?}: virtual time diverged"
        );
        assert_eq!(base.events, run.events, "{tuning:?}: event count diverged");
        assert_eq!(
            base.context_switches, run.context_switches,
            "{tuning:?}: context-switch count diverged"
        );
        assert_eq!(base.threads_spawned, run.threads_spawned);
    }
}

/// The same storm with per-thread hand-off overrides: continuations,
/// futex-baton threads and legacy-condvar threads coexisting in one engine
/// must still produce the run the all-continuation engine produces.
#[test]
fn mixed_mode_storm_matches_pure_continuation_run() {
    let (base, base_work) = storm(SimTuning::default(), false);
    let (mixed, mixed_work) = storm(SimTuning::default(), true);
    assert_eq!(base_work, mixed_work, "mixed: work count diverged");
    assert_eq!(base.final_time, mixed.final_time, "mixed: time diverged");
    assert_eq!(base.events, mixed.events, "mixed: event count diverged");
    assert_eq!(
        base.context_switches, mixed.context_switches,
        "mixed: context-switch count diverged"
    );
    assert_eq!(base.threads_spawned, mixed.threads_spawned);
}

/// WaitSet ping-pong across a crowd of waiters: notify_one/notify_all wake
/// identical thread sets in identical virtual order under every hand-off.
#[test]
fn waitset_crowd_is_identical_under_all_handoffs() {
    let run = |tuning: SimTuning| -> (RunReport, Vec<u64>) {
        let mut engine = engine(tuning);
        let ws = Arc::new(WaitSet::new());
        let token = Arc::new(AtomicU64::new(0));
        // Completion virtual time per waiter, recorded into the waiter's own
        // slot: a per-index log stays comparable even when several waiters
        // complete at the same instant on different scheduler workers (a
        // shared append-log's order at one instant is wall-clock, not part
        // of the deterministic surface).
        let done_at: Arc<Vec<AtomicU64>> = Arc::new((0..40).map(|_| AtomicU64::new(0)).collect());
        for i in 0..40u64 {
            let ws = ws.clone();
            let token = token.clone();
            let done_at = done_at.clone();
            engine.spawn(format!("waiter{i}"), move |h| {
                ws.wait_until(h, || token.load(Ordering::SeqCst) > i);
                done_at[i as usize].store(h.now().as_nanos(), Ordering::SeqCst);
            });
        }
        let ws2 = ws.clone();
        engine.spawn("driver", move |h| {
            for round in 0..40u64 {
                h.sleep(SimDuration::from_micros(3));
                token.store(round + 1, Ordering::SeqCst);
                if round % 5 == 0 {
                    ws2.notify_all(&h.ctl(), SimDuration::ZERO);
                } else {
                    ws2.notify_one(&h.ctl(), SimDuration::ZERO);
                    ws2.notify_one(&h.ctl(), SimDuration::ZERO);
                }
            }
            // Flush any stragglers.
            h.sleep(SimDuration::from_micros(3));
            ws2.notify_all(&h.ctl(), SimDuration::ZERO);
        });
        let report = engine.run().expect("crowd must complete");
        let times = done_at.iter().map(|t| t.load(Ordering::SeqCst)).collect();
        (report, times)
    };
    let (base, base_times) = run(SimTuning::default());
    assert!(base_times.iter().all(|&t| t > 0), "every waiter completed");
    for tuning in [SimTuning::baton(), SimTuning::legacy()] {
        let (r, times) = run(tuning);
        assert_eq!(base_times, times, "{tuning:?}: wake times diverged");
        assert_eq!(base.final_time, r.final_time, "{tuning:?}");
        assert_eq!(base.events, r.events, "{tuning:?}");
    }
}

/// Teardown under fire: a panic in one thread while hundreds of others are
/// parked or runnable must reclaim every baton and report the panic, under
/// every hand-off substrate.
#[test]
fn panic_amid_storm_tears_down_under_all_handoffs() {
    for tuning in all_tunings() {
        let mut engine = engine(tuning);
        for i in 0..100u64 {
            engine.spawn(format!("spinner{i}"), move |h| loop {
                h.sleep(SimDuration::from_micros(i % 9 + 1));
            });
        }
        engine.spawn("bomb", |h| {
            h.sleep(SimDuration::from_micros(40));
            panic!("storm bomb");
        });
        match engine.run() {
            Err(dsmpm2_sim::SimError::ThreadPanic { thread, message }) => {
                assert_eq!(thread, "bomb");
                assert!(message.contains("storm bomb"));
            }
            other => panic!("{tuning:?}: expected panic error, got {other:?}"),
        }
    }
}

/// A panic *inside a continuation slice* unwinds across the coroutine stack,
/// not the scheduler's: the run must record the panicking thread's name and
/// payload, tear down parked continuation/baton threads of the same run, and
/// leave the engine joinable (no hang, no abort). Regression for the
/// continuation backing's catch_unwind seam.
#[test]
fn panic_inside_continuation_slice_is_recorded_not_propagated() {
    let mut engine = engine(SimTuning::default());
    // A parked continuation that teardown must unwind quietly.
    engine.spawn("parked-cont", |h| {
        h.park();
        unreachable!("never woken");
    });
    // A parked OS-thread baton riding along in the same run.
    engine.spawn_with("parked-baton", SpawnOptions::baton(), |h| {
        h.park();
        unreachable!("never woken");
    });
    engine.spawn("bomb", |h| {
        h.sleep(SimDuration::from_micros(7));
        panic!("continuation bomb");
    });
    match engine.run() {
        Err(dsmpm2_sim::SimError::ThreadPanic { thread, message }) => {
            assert_eq!(thread, "bomb");
            assert!(message.contains("continuation bomb"), "got '{message}'");
        }
        other => panic!("expected ThreadPanic, got {other:?}"),
    }
}

/// Deep call stacks overflow a fixed-size continuation stack; the
/// [`SpawnOptions`] escape hatches — a bigger private stack, or the
/// guard-paged OS-thread baton — must both carry a recursion the default
/// continuation stack could not.
#[test]
fn deep_recursion_runs_on_baton_or_big_stack() {
    fn burn(depth: usize) -> u64 {
        // ~1 KiB of live frame per level, kept alive across the recursion.
        let pad = [depth as u64; 128];
        if depth == 0 {
            return pad[0];
        }
        burn(depth - 1) + std::hint::black_box(pad[64])
    }
    for opts in [
        SpawnOptions::baton().with_stack_bytes(32 * 1024 * 1024),
        SpawnOptions::default().with_stack_bytes(32 * 1024 * 1024),
    ] {
        let mut engine = engine(SimTuning::default());
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        engine.spawn_with("deep", opts, move |h| {
            h.sleep(SimDuration::from_micros(1));
            o.store(burn(8_000), Ordering::SeqCst);
        });
        engine.run().expect("deep recursion must complete");
        assert!(out.load(Ordering::SeqCst) > 0);
    }
}
