//! # dsmpm2-madeleine — portable communication layer model
//!
//! The PM2 runtime achieves network portability through the Madeleine
//! communication library, which was ported to BIP, SISCI, VIA, TCP and MPI.
//! This crate models that layer for the simulated cluster:
//!
//! * [`NetworkModel`] — cost model (latency, bandwidth, migration cost) of one
//!   network interface, calibrated from the paper's measurements
//!   ([`profiles`]).
//! * [`Network`] — the transport: typed messages between nodes with
//!   virtual-time delivery delays derived from the model.
//! * [`Transport`] / [`TransportBackend`] — the pluggable wire-level seam:
//!   `Ideal` uncontended pipes (default), `Contended` per-node NIC
//!   serialization, or `Lossy` deterministic drop/duplication with
//!   retransmission — selected per cluster via [`TransportTuning`].
//! * [`NetStats`] / [`WireStats`] — communication counters feeding the
//!   monitoring reports and the transport ablations.
//!
//! Switching a whole DSM application from one interconnect to another is a
//! one-line change of profile, exactly like relinking a PM2 program against a
//! different Madeleine driver.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod backend;
mod model;
pub mod profiles;
mod stats;
mod topology;
mod transport;

pub use backend::{
    build_transport, LossyConfig, PermutedConfig, Transport, TransportBackend, TransportTuning,
};
pub use model::{NetworkModel, CONTROL_MESSAGE_BYTES};
pub use stats::{LinkCounters, NetStats, NetStatsSnapshot, WireStats, WireStatsSnapshot};
pub use topology::{NodeId, Topology};
pub use transport::{DeliveryHook, DeliverySink, Envelope, Network, PreSendHook};
