//! # dsmpm2-madeleine — portable communication layer model
//!
//! The PM2 runtime achieves network portability through the Madeleine
//! communication library, which was ported to BIP, SISCI, VIA, TCP and MPI.
//! This crate models that layer for the simulated cluster:
//!
//! * [`NetworkModel`] — cost model (latency, bandwidth, migration cost) of one
//!   network interface, calibrated from the paper's measurements
//!   ([`profiles`]).
//! * [`Network`] — the transport: typed messages between nodes with
//!   virtual-time delivery delays derived from the model.
//! * [`NetStats`] — communication counters feeding the monitoring reports.
//!
//! Switching a whole DSM application from one interconnect to another is a
//! one-line change of profile, exactly like relinking a PM2 program against a
//! different Madeleine driver.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod model;
pub mod profiles;
mod stats;
mod topology;
mod transport;

pub use model::{NetworkModel, CONTROL_MESSAGE_BYTES};
pub use stats::{LinkCounters, NetStats, NetStatsSnapshot};
pub use topology::{NodeId, Topology};
pub use transport::{Envelope, Network, PreSendHook};
