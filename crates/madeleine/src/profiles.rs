//! Calibrated network profiles.
//!
//! The four profiles correspond to the four platforms of the paper's
//! evaluation (Section 4): a cluster of 450 MHz Pentium II nodes running
//! Linux 2.2.13 connected by a Myrinet network driven either through BIP or
//! TCP, by Fast Ethernet under TCP, and by an SCI network through the SISCI
//! API.
//!
//! Calibration: with `L` the control-message latency and `B` the bandwidth,
//! the paper's Table 3 gives the "Request page" row as `L + 64/B` (a small
//! control message) and the "Page transfer" row as `L + (4096+64)/B`
//! (a 4 kB page plus header). Solving the two equations per platform yields
//! the constants below; the thread-migration base costs come from Table 4 and
//! §2.1.

use crate::model::NetworkModel;

/// BIP over Myrinet (the fastest software path of the evaluation).
pub fn bip_myrinet() -> NetworkModel {
    NetworkModel {
        name: "BIP/Myrinet".to_string(),
        rpc_min_latency_us: 8.0,
        control_latency_us: 21.2,
        bandwidth_bytes_per_us: 35.6,
        thread_migration_base_us: 75.0,
        migration_base_stack_bytes: 1024,
    }
}

/// TCP over Myrinet (same hardware as BIP/Myrinet, kernel TCP stack).
pub fn tcp_myrinet() -> NetworkModel {
    NetworkModel {
        name: "TCP/Myrinet".to_string(),
        rpc_min_latency_us: 110.0,
        control_latency_us: 218.1,
        bandwidth_bytes_per_us: 33.3,
        thread_migration_base_us: 280.0,
        migration_base_stack_bytes: 1024,
    }
}

/// TCP over Fast Ethernet (commodity 100 Mb/s network).
pub fn tcp_fast_ethernet() -> NetworkModel {
    NetworkModel {
        name: "TCP/FastEthernet".to_string(),
        rpc_min_latency_us: 120.0,
        control_latency_us: 211.9,
        bandwidth_bytes_per_us: 7.9,
        thread_migration_base_us: 373.0,
        migration_base_stack_bytes: 1024,
    }
}

/// SISCI over SCI (remote-memory-access interconnect).
pub fn sisci_sci() -> NetworkModel {
    NetworkModel {
        name: "SISCI/SCI".to_string(),
        rpc_min_latency_us: 6.0,
        control_latency_us: 36.7,
        bandwidth_bytes_per_us: 50.6,
        thread_migration_base_us: 62.0,
        migration_base_stack_bytes: 1024,
    }
}

/// All four evaluation platforms, in the order the paper's tables list them.
pub fn all() -> Vec<NetworkModel> {
    vec![
        bip_myrinet(),
        tcp_myrinet(),
        tcp_fast_ethernet(),
        sisci_sci(),
    ]
}

/// Look a profile up by (case-insensitive) name; accepts both the full names
/// used in the paper ("BIP/Myrinet") and short aliases ("bip", "sci", ...).
pub fn by_name(name: &str) -> Option<NetworkModel> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "bip" | "bip/myrinet" | "myrinet" => Some(bip_myrinet()),
        "tcp" | "tcp/myrinet" => Some(tcp_myrinet()),
        "ethernet" | "fast-ethernet" | "tcp/fastethernet" | "tcp/fast ethernet" => {
            Some(tcp_fast_ethernet())
        }
        "sci" | "sisci" | "sisci/sci" => Some(sisci_sci()),
        _ => all()
            .into_iter()
            .find(|m| m.name.to_ascii_lowercase() == lower),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CONTROL_MESSAGE_BYTES;

    /// The calibration must reproduce the paper's Table 3 "Request page" and
    /// "Page transfer" rows to within a microsecond or two.
    #[test]
    fn calibration_matches_table3_rows() {
        let cases = [
            (bip_myrinet(), 23.0, 138.0),
            (tcp_myrinet(), 220.0, 343.0),
            (tcp_fast_ethernet(), 220.0, 736.0),
            (sisci_sci(), 38.0, 119.0),
        ];
        for (model, request_us, transfer_us) in cases {
            let req = model.control_time().as_micros_f64();
            let tra = model.page_transfer_time(4096).as_micros_f64();
            assert!(
                (req - request_us).abs() < 2.0,
                "{}: request {req} vs paper {request_us}",
                model.name
            );
            assert!(
                (tra - transfer_us).abs() < 4.0,
                "{}: transfer {tra} vs paper {transfer_us}",
                model.name
            );
        }
    }

    /// Table 4: thread migration of a ~1 kB stack.
    #[test]
    fn calibration_matches_table4_migration_row() {
        let cases = [
            (bip_myrinet(), 75.0),
            (tcp_myrinet(), 280.0),
            (tcp_fast_ethernet(), 373.0),
            (sisci_sci(), 62.0),
        ];
        for (model, paper_us) in cases {
            let t = model.thread_migration_time(1024, 0).as_micros_f64();
            assert!(
                (t - paper_us).abs() < 1.0,
                "{}: migration {t} vs paper {paper_us}",
                model.name
            );
        }
    }

    /// §2.1: RPC minimal latency 8 µs (BIP) and 6 µs (SCI).
    #[test]
    fn calibration_matches_rpc_micro() {
        assert_eq!(bip_myrinet().rpc_min_time().as_micros_f64(), 8.0);
        assert_eq!(sisci_sci().rpc_min_time().as_micros_f64(), 6.0);
    }

    #[test]
    fn ordering_between_networks_matches_paper() {
        // SCI has the best page-transfer path, Fast Ethernet the worst.
        let page = 4096;
        assert!(sisci_sci().page_transfer_time(page) < bip_myrinet().page_transfer_time(page));
        assert!(bip_myrinet().page_transfer_time(page) < tcp_myrinet().page_transfer_time(page));
        assert!(
            tcp_myrinet().page_transfer_time(page) < tcp_fast_ethernet().page_transfer_time(page)
        );
        // But migration is cheapest on SCI, then BIP.
        assert!(
            sisci_sci().thread_migration_time(1024, 0)
                < bip_myrinet().thread_migration_time(1024, 0)
        );
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("bip").unwrap().name, "BIP/Myrinet");
        assert_eq!(by_name("SISCI/SCI").unwrap().name, "SISCI/SCI");
        assert_eq!(
            by_name("tcp/fastethernet").unwrap().name,
            "TCP/FastEthernet"
        );
        assert!(by_name("infiniband").is_none());
    }

    #[test]
    fn all_profiles_are_distinct() {
        let names: Vec<String> = all().into_iter().map(|m| m.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn control_message_size_is_small() {
        const { assert!(CONTROL_MESSAGE_BYTES <= 128) }
    }
}
