//! Network cost models.
//!
//! The original Madeleine library hides the differences between BIP, SISCI,
//! VIA, TCP and MPI behind one message-passing API. In this reproduction the
//! hardware itself is replaced by a cost model: every network interface is
//! described by a [`NetworkModel`] which converts message sizes into
//! virtual-time transfer durations. The models are calibrated directly from
//! the constants reported in the DSM-PM2 paper (Tables 3 and 4 and §2.1), so
//! that the microbenchmark tables are reproduced by construction and the
//! application-level figures emerge from protocol behaviour on top of them.

use dsmpm2_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Size in bytes accounted for a small control message (page request,
/// invalidation, acknowledgement, lock message).
pub const CONTROL_MESSAGE_BYTES: usize = 64;

/// Cost model for one network interface / interconnect combination.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Human-readable name, e.g. `"BIP/Myrinet"`.
    pub name: String,
    /// Minimal latency of a PM2 RPC carrying no arguments (paper §2.1:
    /// 8 µs over BIP/Myrinet, 6 µs over SISCI/SCI), in microseconds.
    pub rpc_min_latency_us: f64,
    /// One-way latency of a DSM control message, including the software path
    /// through Madeleine and the RPC dispatch on the remote node (fitted to
    /// the "Request page" row of Table 3), in microseconds.
    pub control_latency_us: f64,
    /// Sustained transfer bandwidth seen by the DSM layer, in bytes per
    /// microsecond (fitted to the difference between the 4 kB "Page transfer"
    /// and "Request page" rows of Table 3).
    pub bandwidth_bytes_per_us: f64,
    /// Cost of migrating a PM2 thread with a minimal (~1 kB) stack and no
    /// attached data (Table 4 / §2.1), in microseconds.
    pub thread_migration_base_us: f64,
    /// Stack size assumed by `thread_migration_base_us`, in bytes.
    pub migration_base_stack_bytes: usize,
}

impl NetworkModel {
    /// Time to move a message of `bytes` payload bytes from one node to
    /// another, including the protocol software path on both ends.
    pub fn message_time(&self, bytes: usize) -> SimDuration {
        let us = self.control_latency_us + bytes as f64 / self.bandwidth_bytes_per_us;
        SimDuration::from_micros_f64(us)
    }

    /// Time for a minimal RPC request (no payload beyond the header).
    pub fn rpc_min_time(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.rpc_min_latency_us)
    }

    /// Time for a small DSM control message (page request, invalidation, ack).
    pub fn control_time(&self) -> SimDuration {
        self.message_time(CONTROL_MESSAGE_BYTES)
    }

    /// Time to transfer a full page of `page_bytes` bytes (plus the control
    /// header carried with it).
    pub fn page_transfer_time(&self, page_bytes: usize) -> SimDuration {
        self.message_time(page_bytes + CONTROL_MESSAGE_BYTES)
    }

    /// Time to migrate a thread whose stack occupies `stack_bytes` bytes and
    /// which carries `attached_bytes` of private iso-allocated data.
    ///
    /// The base constant covers the paper's minimal-stack measurement; stacks
    /// or attached data larger than the base assumption pay for the extra
    /// bytes at the network bandwidth.
    pub fn thread_migration_time(&self, stack_bytes: usize, attached_bytes: usize) -> SimDuration {
        let total = stack_bytes + attached_bytes;
        let extra = total.saturating_sub(self.migration_base_stack_bytes);
        let us = self.thread_migration_base_us + extra as f64 / self.bandwidth_bytes_per_us;
        SimDuration::from_micros_f64(us)
    }

    /// Effective bandwidth in MB/s (useful for reports).
    pub fn bandwidth_mb_per_s(&self) -> f64 {
        self.bandwidth_bytes_per_us * 1e6 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn message_time_is_latency_plus_size_over_bandwidth() {
        let m = NetworkModel {
            name: "test".into(),
            rpc_min_latency_us: 5.0,
            control_latency_us: 10.0,
            bandwidth_bytes_per_us: 100.0,
            thread_migration_base_us: 50.0,
            migration_base_stack_bytes: 1024,
        };
        assert_eq!(m.message_time(1000), SimDuration::from_micros_f64(20.0));
        assert_eq!(m.rpc_min_time(), SimDuration::from_micros(5));
    }

    #[test]
    fn migration_time_grows_with_stack_size() {
        let m = profiles::bip_myrinet();
        let small = m.thread_migration_time(1024, 0);
        let big = m.thread_migration_time(64 * 1024, 0);
        assert!(big > small);
        // Minimal stack pays exactly the base constant.
        assert_eq!(
            small,
            SimDuration::from_micros_f64(m.thread_migration_base_us)
        );
    }

    #[test]
    fn migration_accounts_attached_data() {
        let m = profiles::sisci_sci();
        let without = m.thread_migration_time(1024, 0);
        let with = m.thread_migration_time(1024, 8192);
        assert!(with > without);
    }

    #[test]
    fn larger_messages_take_longer() {
        for m in profiles::all() {
            assert!(m.page_transfer_time(4096) > m.control_time());
            assert!(m.message_time(0) <= m.message_time(1));
        }
    }

    #[test]
    fn bandwidth_report_is_positive() {
        for m in profiles::all() {
            assert!(m.bandwidth_mb_per_s() > 1.0, "{}", m.name);
        }
    }
}
