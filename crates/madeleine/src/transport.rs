//! Message transport between simulated cluster nodes.
//!
//! [`Network`] plays the role of the Madeleine communication library: it
//! gives every node an incoming message queue and lets any simulated thread
//! send a typed message to any node. The *cost* of a transfer comes from the
//! configured [`NetworkModel`]; *when* it is delivered is decided by the
//! pluggable [`crate::Transport`] backend ([`crate::TransportBackend`]):
//! the default `Ideal` backend charges the model's delay at send time
//! (uncontended infinite-capacity links, the historical behaviour), while
//! the `Contended` and `Lossy` backends schedule delivery through NIC
//! queues, retransmission timers and sequence numbers.

use std::sync::Arc;

use parking_lot::RwLock;

use dsmpm2_sim::{channel_on, EngineCtl, SimDuration, SimHandle, SimReceiver, SimSender, SimTime};

use crate::backend::{build_transport, Transport, TransportTuning};
use crate::model::{NetworkModel, CONTROL_MESSAGE_BYTES};
use crate::stats::{NetStats, WireStats, WireStatsSnapshot};
use crate::topology::{NodeId, Topology};

/// A message in flight (or delivered) between two nodes.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size accounted by the cost model, in bytes.
    pub bytes: usize,
    /// Number of logical messages this envelope carries: 1 for plain sends,
    /// more when an upper layer coalesced several messages into one wire
    /// envelope (the DSM per-tick coherence batcher).
    pub messages: u32,
    /// Virtual time at which the message was handed to the network.
    pub sent_at: SimTime,
    /// The message itself.
    pub msg: M,
}

/// A callback invoked with (from, to) before any message is enqueued on that
/// directed link. Layers that *park* messages for later transmission (the
/// DSM per-tick batcher) register one to flush their parked messages first,
/// so that no later message ever overtakes a logically earlier parked one.
pub type PreSendHook = Arc<dyn Fn(NodeId, NodeId) + Send + Sync>;

/// A delivery interceptor: runs at the envelope's arrival instant, on the
/// destination node's scheduler shard, *before* the envelope is enqueued on
/// the node's incoming queue. Returning `None` consumes the envelope — the
/// hook served it in place (the DSM one-sided read fast path answers fetches
/// directly from the home's frame this way, with no handler-thread wake);
/// returning `Some` delivers it through the queue as usual. Installed on the
/// whole network; when absent, delivery is exactly the historical direct
/// enqueue.
pub type DeliveryHook<M> =
    Arc<dyn Fn(&EngineCtl, Envelope<M>) -> Option<Envelope<M>> + Send + Sync>;

/// The destination side of one node's message queue, as seen by transport
/// backends: wraps the raw [`SimSender`] together with the network's
/// delivery interceptor. Without an installed hook, [`DeliverySink::send_at`]
/// is exactly `SimSender::send_at` — bit-identical to the pre-seam transport;
/// with one, the delivery is rescheduled as an explicit arrival event on the
/// destination shard where the hook may consume the envelope.
pub struct DeliverySink<M> {
    tx: SimSender<Envelope<M>>,
    ctl: EngineCtl,
    shard: u64,
    hook: Arc<RwLock<Option<DeliveryHook<M>>>>,
    wire: Arc<WireStats>,
}

impl<M> Clone for DeliverySink<M> {
    fn clone(&self) -> Self {
        DeliverySink {
            tx: self.tx.clone(),
            ctl: self.ctl.clone(),
            shard: self.shard,
            hook: Arc::clone(&self.hook),
            wire: Arc::clone(&self.wire),
        }
    }
}

impl<M: Send + 'static> DeliverySink<M> {
    /// Deliver `env` into the destination queue at absolute time
    /// `deliver_at`, consulting the delivery interceptor at that instant.
    pub fn send_at(&self, deliver_at: SimTime, env: Envelope<M>) {
        let hook = self.hook.read().clone();
        match hook {
            None => self.tx.send_at(deliver_at, env),
            Some(hook) => {
                let tx = self.tx.clone();
                let wire = Arc::clone(&self.wire);
                self.ctl
                    .call_at_on(self.shard, deliver_at, move |ctl| match hook(ctl, env) {
                        Some(env) => {
                            wire.incr_hook_delivered();
                            tx.send_at(ctl.now(), env);
                        }
                        None => wire.incr_hook_consumed(),
                    });
            }
        }
    }
}

struct NetworkInner<M> {
    model: NetworkModel,
    topology: Topology,
    tuning: TransportTuning,
    sinks: Vec<DeliverySink<M>>,
    receivers: Vec<SimReceiver<Envelope<M>>>,
    stats: NetStats,
    /// Network-level wire accounting (envelopes, logical messages, delivery
    /// interceptor counters); merged into [`Network::wire_stats`] together
    /// with the backend's own counters.
    wire: Arc<WireStats>,
    /// The wire-level backend: owns the per-directed-link state (FIFO
    /// clocks, NIC reservations, retransmission machinery) and decides when
    /// each envelope reaches its destination queue.
    transport: Box<dyn Transport<M>>,
    /// Pre-send link hook (see [`PreSendHook`]).
    pre_send: RwLock<Option<PreSendHook>>,
    /// Delivery interceptor shared by every node's sink.
    delivery_hook: Arc<RwLock<Option<DeliveryHook<M>>>>,
}

/// A simulated interconnect connecting every node of the cluster.
pub struct Network<M> {
    inner: Arc<NetworkInner<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> Network<M> {
    /// Build a network for `topology` using the cost model `model` and the
    /// default (`Ideal`) transport backend.
    pub fn new(ctl: EngineCtl, model: NetworkModel, topology: Topology) -> Self {
        Network::with_transport(ctl, model, topology, TransportTuning::default())
    }

    /// Build a network with an explicit transport backend selection.
    pub fn with_transport(
        ctl: EngineCtl,
        model: NetworkModel,
        topology: Topology,
        tuning: TransportTuning,
    ) -> Self {
        let mut sinks = Vec::with_capacity(topology.num_nodes);
        let mut receivers = Vec::with_capacity(topology.num_nodes);
        let delivery_hook: Arc<RwLock<Option<DeliveryHook<M>>>> = Arc::new(RwLock::new(None));
        let wire = Arc::new(WireStats::default());
        for node in 0..topology.num_nodes {
            // Each endpoint's delivery callbacks run on the owning node's
            // shard, serialized with the node's dispatcher and handlers.
            let (tx, rx) = channel_on::<Envelope<M>>(ctl.clone(), node as u64);
            sinks.push(DeliverySink {
                tx,
                ctl: ctl.clone(),
                shard: node as u64,
                hook: Arc::clone(&delivery_hook),
                wire: Arc::clone(&wire),
            });
            receivers.push(rx);
        }
        let transport = build_transport::<M>(ctl, &model, &topology, tuning);
        Network {
            inner: Arc::new(NetworkInner {
                model,
                topology,
                tuning,
                sinks,
                receivers,
                stats: NetStats::new(),
                wire,
                transport,
                pre_send: RwLock::new(None),
                delivery_hook,
            }),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &NetworkModel {
        &self.inner.model
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The transport tuning this network was built with.
    pub fn transport_tuning(&self) -> TransportTuning {
        self.inner.tuning
    }

    /// Communication statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Wire-level statistics: the transport backend's counters (NIC stalls,
    /// drops, retransmissions, duplicates) merged with the network-level
    /// envelope/message accounting and delivery-interceptor counters.
    pub fn wire_stats(&self) -> WireStatsSnapshot {
        let mut snap = self.inner.transport.wire_stats();
        let net = self.inner.wire.snapshot();
        snap.envelopes = net.envelopes;
        snap.envelope_bytes = net.envelope_bytes;
        snap.messages = net.messages;
        snap.message_bytes = net.message_bytes;
        snap.hook_consumed = net.hook_consumed;
        snap.hook_delivered = net.hook_delivered;
        snap
    }

    /// The incoming message queue of `node`. Dispatcher threads hold a clone
    /// of this receiver and block on it.
    pub fn endpoint(&self, node: NodeId) -> SimReceiver<Envelope<M>> {
        self.inner.receivers[node.index()].clone()
    }

    /// Register the pre-send link hook (replacing any previous one). The
    /// hook runs before every enqueue on a directed link — including sends
    /// the hook itself triggers, so it must be re-entrant (draining parked
    /// state makes the nested invocation a no-op).
    pub fn set_pre_send_hook(&self, hook: PreSendHook) {
        *self.inner.pre_send.write() = Some(hook);
    }

    fn run_pre_send_hook(&self, from: NodeId, to: NodeId) {
        let hook = self.inner.pre_send.read().clone();
        if let Some(hook) = hook {
            hook(from, to);
        }
    }

    /// Install the delivery interceptor (replacing any previous one). The
    /// hook runs at every envelope's arrival instant on the destination
    /// node's shard and may consume the envelope by returning `None` (see
    /// [`DeliveryHook`]). When no hook is installed, delivery is the direct
    /// queue enqueue — bit-identical to the pre-interceptor transport.
    pub fn set_delivery_hook(&self, hook: DeliveryHook<M>) {
        *self.inner.delivery_hook.write() = Some(hook);
    }

    /// Send `msg` from `from` to `to`, accounting `payload_bytes` of payload.
    /// The message is delivered after the backend's transfer time; messages
    /// on the same link are always delivered in FIFO order.
    pub fn send(&self, handle: &SimHandle, from: NodeId, to: NodeId, msg: M, payload_bytes: usize) {
        let delay = if from == to {
            // Loopback messages skip the wire but still pay a small software cost.
            SimDuration::from_micros_f64(self.inner.model.rpc_min_latency_us / 2.0)
        } else {
            self.inner.model.message_time(payload_bytes)
        };
        self.send_with_delay(handle, from, to, msg, payload_bytes, delay);
    }

    /// Send a small control message (page request, invalidation, ack, ...).
    pub fn send_control(&self, handle: &SimHandle, from: NodeId, to: NodeId, msg: M) {
        self.send(handle, from, to, msg, CONTROL_MESSAGE_BYTES);
    }

    /// Send with an explicitly chosen idle-wire delivery delay (used by
    /// layers that have already computed a cost, e.g. thread migration).
    pub fn send_with_delay(
        &self,
        handle: &SimHandle,
        from: NodeId,
        to: NodeId,
        msg: M,
        payload_bytes: usize,
        delay: SimDuration,
    ) {
        self.dispatch(handle.now(), from, to, msg, payload_bytes, 1, delay);
    }

    /// Send from outside any simulated thread (scheduler callbacks). Used by
    /// the per-tick message batcher, whose flush runs as an engine callback
    /// at the end of the tick rather than on a simulated thread. The message
    /// is timed from the global clock and obeys the same per-link FIFO order
    /// as thread-originated sends. `messages` is the number of logical
    /// messages the envelope carries (a batched envelope carries several),
    /// accounted by [`Network::wire_stats`].
    #[allow(clippy::too_many_arguments)]
    pub fn send_with_delay_from_ctl(
        &self,
        ctl: &EngineCtl,
        from: NodeId,
        to: NodeId,
        msg: M,
        payload_bytes: usize,
        messages: u32,
        delay: SimDuration,
    ) {
        self.dispatch(ctl.now(), from, to, msg, payload_bytes, messages, delay);
    }

    /// Common half of every send: run the pre-send hook, record statistics
    /// and hand the envelope to the transport backend, which schedules the
    /// delivery.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        sent_at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: M,
        payload_bytes: usize,
        messages: u32,
        delay: SimDuration,
    ) {
        assert!(
            self.inner.topology.contains(from) && self.inner.topology.contains(to),
            "send between unknown nodes {from} -> {to}"
        );
        self.run_pre_send_hook(from, to);
        self.inner.stats.record(from, to, payload_bytes);
        self.inner
            .wire
            .add_envelope(payload_bytes as u64, u64::from(messages.max(1)));
        let envelope = Envelope {
            from,
            to,
            bytes: payload_bytes,
            messages: messages.max(1),
            sent_at,
            msg,
        };
        self.inner
            .transport
            .submit(envelope, delay, &self.inner.sinks[to.index()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use dsmpm2_sim::Engine;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn two_node_net<M: Send + 'static>(engine: &Engine, model: NetworkModel) -> Network<M> {
        Network::new(engine.ctl(), model, Topology::flat(2))
    }

    #[test]
    fn delivery_delay_matches_model() {
        let mut engine = Engine::new();
        let net = two_node_net::<&'static str>(&engine, profiles::bip_myrinet());
        let expected = profiles::bip_myrinet().page_transfer_time(4096);
        let arrived = Arc::new(AtomicU64::new(0));

        let rx = net.endpoint(NodeId(1));
        let a = arrived.clone();
        engine.spawn("receiver", move |h| {
            let env = rx.recv(h);
            assert_eq!(env.from, NodeId(0));
            assert_eq!(env.bytes, 4096 + CONTROL_MESSAGE_BYTES);
            a.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        let net2 = net.clone();
        engine.spawn("sender", move |h| {
            net2.send(
                h,
                NodeId(0),
                NodeId(1),
                "page",
                4096 + CONTROL_MESSAGE_BYTES,
            );
        });
        engine.run().unwrap();
        assert_eq!(arrived.load(Ordering::SeqCst), expected.as_nanos());
    }

    #[test]
    fn control_messages_are_cheaper_than_pages() {
        let mut engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::sisci_sci());
        let times = Arc::new(Mutex::new(Vec::new()));

        let rx = net.endpoint(NodeId(1));
        let t = times.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..2 {
                let env = rx.recv(h);
                t.lock().push((env.msg, h.global_now()));
            }
        });
        let net2 = net.clone();
        engine.spawn("sender", move |h| {
            net2.send_control(h, NodeId(0), NodeId(1), 1);
            net2.send(h, NodeId(0), NodeId(1), 2, 4096);
        });
        engine.run().unwrap();
        let times = times.lock();
        assert_eq!(times[0].0, 1);
        assert_eq!(times[1].0, 2);
        assert!(times[0].1 < times[1].1);
    }

    #[test]
    fn loopback_is_fast_but_not_free() {
        let mut engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::bip_myrinet());
        let when = Arc::new(AtomicU64::new(0));
        let rx = net.endpoint(NodeId(0));
        let w = when.clone();
        engine.spawn("self-receiver", move |h| {
            let _ = rx.recv(h);
            w.store(h.global_now().as_nanos(), Ordering::SeqCst);
        });
        let net2 = net.clone();
        engine.spawn("self-sender", move |h| {
            net2.send(h, NodeId(0), NodeId(0), 7, 4096);
        });
        engine.run().unwrap();
        let loopback = when.load(Ordering::SeqCst);
        assert!(loopback > 0);
        assert!(loopback < profiles::bip_myrinet().message_time(4096).as_nanos());
    }

    #[test]
    fn ctl_sends_obey_link_fifo_and_reach_the_endpoint() {
        let mut engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::bip_myrinet());
        let order = Arc::new(Mutex::new(Vec::new()));
        let rx = net.endpoint(NodeId(1));
        let o = order.clone();
        engine.spawn("receiver", move |h| {
            for _ in 0..2 {
                let env = rx.recv(h);
                o.lock().push((env.msg, h.global_now()));
            }
        });
        let net2 = net.clone();
        let ctl = engine.ctl();
        // A slow thread-originated message followed by a fast ctl-originated
        // one on the same link: FIFO forbids the overtake.
        engine.spawn("sender", move |h| {
            net2.send(h, NodeId(0), NodeId(1), 1, 4096);
            net2.send_with_delay_from_ctl(
                &ctl,
                NodeId(0),
                NodeId(1),
                2,
                0,
                1,
                SimDuration::from_micros(1),
            );
        });
        engine.run().unwrap();
        let order = order.lock();
        assert_eq!(order[0].0, 1);
        assert_eq!(order[1].0, 2);
        assert!(order[0].1 <= order[1].1);
    }

    #[test]
    fn delivery_hook_can_consume_envelopes_at_arrival() {
        let mut engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::bip_myrinet());
        // Consume odd payloads at arrival; deliver even ones normally.
        net.set_delivery_hook(Arc::new(
            |_ctl, env: Envelope<u8>| {
                if env.msg % 2 == 1 {
                    None
                } else {
                    Some(env)
                }
            },
        ));
        let got = Arc::new(Mutex::new(Vec::new()));
        let rx = net.endpoint(NodeId(1));
        let g = got.clone();
        engine.spawn("rx", move |h| {
            for _ in 0..2 {
                g.lock().push(rx.recv(h).msg);
            }
        });
        let net2 = net.clone();
        engine.spawn("tx", move |h| {
            for m in [1u8, 2, 3, 4] {
                net2.send_control(h, NodeId(0), NodeId(1), m);
            }
        });
        engine.run().unwrap();
        assert_eq!(got.lock().clone(), vec![2, 4]);
        let wire = net.wire_stats();
        assert_eq!(wire.hook_consumed, 2);
        assert_eq!(wire.hook_delivered, 2);
        assert_eq!(wire.envelopes, 4);
        assert_eq!(wire.messages, 4);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let mut engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::tcp_myrinet());
        let net2 = net.clone();
        engine.spawn("sender", move |h| {
            net2.send(h, NodeId(0), NodeId(1), 1, 100);
            net2.send(h, NodeId(0), NodeId(1), 2, 200);
        });
        // Drain so the run terminates cleanly even though nothing reads: the
        // messages simply sit in the queue (no thread is kept alive by them).
        engine.run().unwrap();
        assert_eq!(net.stats().messages(), 2);
        assert_eq!(net.stats().bytes(), 300);
        assert_eq!(net.stats().link(NodeId(0), NodeId(1)).messages, 2);
    }

    #[test]
    fn default_backend_is_ideal_with_clean_wire_stats() {
        let engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::bip_myrinet());
        assert_eq!(net.transport_tuning(), TransportTuning::ideal());
        assert_eq!(net.wire_stats(), WireStatsSnapshot::default());
    }

    #[test]
    #[should_panic(expected = "unknown nodes")]
    fn sending_to_unknown_node_panics() {
        let engine = Engine::new();
        let net = two_node_net::<u8>(&engine, profiles::bip_myrinet());
        // Outside a simulated thread we still need a handle; easiest is to
        // check the assertion through a spawned thread and propagate panic.
        let mut engine = engine;
        let net2 = net.clone();
        engine.spawn("bad", move |h| {
            net2.send(h, NodeId(0), NodeId(9), 1, 10);
        });
        if let Err(dsmpm2_sim::SimError::ThreadPanic { message, .. }) = engine.run() {
            panic!("{}", message);
        }
    }
}
