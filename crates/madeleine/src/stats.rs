//! Communication statistics.
//!
//! PM2 ships post-mortem monitoring tools; this module provides the
//! communication-side counters that feed the monitoring reports and the
//! benchmark harness (message counts, transferred volumes, per-link
//! breakdowns).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use dsmpm2_sim::SimDuration;

use crate::topology::NodeId;

/// Aggregated communication counters for one [`crate::Network`].
#[derive(Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    per_link: Mutex<HashMap<(NodeId, NodeId), LinkCounters>>,
}

/// Counters for one directed (source, destination) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Number of messages sent on this link.
    pub messages: u64,
    /// Total payload bytes sent on this link.
    pub bytes: u64,
}

/// A point-in-time snapshot of network statistics.
#[derive(Clone, Debug, Default)]
pub struct NetStatsSnapshot {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Per-directed-link counters.
    pub per_link: HashMap<(NodeId, NodeId), LinkCounters>,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` payload bytes from `from` to `to`.
    pub fn record(&self, from: NodeId, to: NodeId, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut links = self.per_link.lock();
        let entry = links.entry((from, to)).or_default();
        entry.messages += 1;
        entry.bytes += bytes as u64;
    }

    /// Total number of messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Counters for one directed link.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkCounters {
        self.per_link
            .lock()
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
    }

    /// A consistent snapshot of every counter.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.messages(),
            bytes: self.bytes(),
            per_link: self.per_link.lock().clone(),
        }
    }

    /// Reset every counter to zero (used between benchmark iterations).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.per_link.lock().clear();
    }
}

/// Wire-level counters of one transport backend (as opposed to the
/// message-level [`NetStats`], which count what the layers above put on the
/// wire regardless of how the backend carries it).
#[derive(Default)]
pub struct WireStats {
    fifo_stall_ns: AtomicU64,
    egress_stall_ns: AtomicU64,
    ingress_stall_ns: AtomicU64,
    drops: AtomicU64,
    retransmits: AtomicU64,
    duplicates: AtomicU64,
    envelopes: AtomicU64,
    envelope_bytes: AtomicU64,
    messages: AtomicU64,
    message_bytes: AtomicU64,
    hook_consumed: AtomicU64,
    hook_delivered: AtomicU64,
}

/// A point-in-time snapshot of [`WireStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStatsSnapshot {
    /// Virtual time messages spent stretched by the per-link FIFO guarantee.
    pub fifo_stall_ns: u64,
    /// Virtual time frames waited for the sender's egress NIC.
    pub egress_stall_ns: u64,
    /// Virtual time frames waited for the receiver's ingress NIC.
    pub ingress_stall_ns: u64,
    /// Wire attempts dropped by the lossy backend.
    pub drops: u64,
    /// Retransmissions triggered by drops.
    pub retransmits: u64,
    /// Duplicate frames discarded by the sequence-number check.
    pub duplicates: u64,
    /// Wire envelopes submitted to the transport. One envelope may carry
    /// several logical messages (the per-tick coherence batcher coalesces
    /// same-destination messages into one).
    pub envelopes: u64,
    /// Total accounted bytes of those envelopes (payload plus per-message
    /// wire headers).
    pub envelope_bytes: u64,
    /// Logical messages carried by the submitted envelopes.
    pub messages: u64,
    /// Accounted bytes attributed to logical messages. Equal to
    /// `envelope_bytes` (the envelope's bytes are exactly its messages'
    /// bytes); reported separately so `messages`/`message_bytes` and
    /// `envelopes`/`envelope_bytes` form comparable per-message and
    /// per-envelope averages.
    pub message_bytes: u64,
    /// Envelopes consumed by the delivery interceptor at arrival instant
    /// (e.g. one-sided read fetches served directly from the home's frame)
    /// — these never reached the destination's dispatcher queue.
    pub hook_consumed: u64,
    /// Envelopes offered to the installed delivery interceptor but delivered
    /// normally. Zero when no interceptor is installed.
    pub hook_delivered: u64,
}

impl WireStatsSnapshot {
    /// Total virtual time spent stalled on NICs (egress + ingress).
    pub fn contention_stall_ns(&self) -> u64 {
        self.egress_stall_ns + self.ingress_stall_ns
    }

    /// Average accounted bytes per wire envelope.
    pub fn bytes_per_envelope(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.envelope_bytes as f64 / self.envelopes as f64
        }
    }

    /// Average logical messages per wire envelope (> 1 under batching).
    pub fn messages_per_envelope(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.messages as f64 / self.envelopes as f64
        }
    }
}

impl WireStats {
    /// Account FIFO stretching of one message.
    pub fn add_fifo_stall(&self, d: SimDuration) {
        self.fifo_stall_ns
            .fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    /// Account egress-NIC waiting of one frame.
    pub fn add_egress_stall(&self, d: SimDuration) {
        self.egress_stall_ns
            .fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    /// Account ingress-NIC waiting of one frame.
    pub fn add_ingress_stall(&self, d: SimDuration) {
        self.ingress_stall_ns
            .fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    /// Count one dropped wire attempt.
    pub fn incr_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one retransmission.
    pub fn incr_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one discarded duplicate frame.
    pub fn incr_duplicate(&self) {
        self.duplicates.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one wire envelope of `bytes` accounted bytes carrying
    /// `messages` logical messages.
    pub fn add_envelope(&self, bytes: u64, messages: u64) {
        self.envelopes.fetch_add(1, Ordering::Relaxed);
        self.envelope_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.message_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count one envelope consumed by the delivery interceptor.
    pub fn incr_hook_consumed(&self) {
        self.hook_consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one envelope offered to the interceptor but delivered normally.
    pub fn incr_hook_delivered(&self) {
        self.hook_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent snapshot of every counter.
    pub fn snapshot(&self) -> WireStatsSnapshot {
        WireStatsSnapshot {
            fifo_stall_ns: self.fifo_stall_ns.load(Ordering::Relaxed),
            egress_stall_ns: self.egress_stall_ns.load(Ordering::Relaxed),
            ingress_stall_ns: self.ingress_stall_ns.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            envelopes: self.envelopes.load(Ordering::Relaxed),
            envelope_bytes: self.envelope_bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            message_bytes: self.message_bytes.load(Ordering::Relaxed),
            hook_consumed: self.hook_consumed.load(Ordering::Relaxed),
            hook_delivered: self.hook_delivered.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_accumulate_and_snapshot() {
        let w = WireStats::default();
        w.add_egress_stall(SimDuration::from_micros(2));
        w.add_ingress_stall(SimDuration::from_micros(3));
        w.incr_drop();
        w.incr_retransmit();
        w.incr_duplicate();
        let s = w.snapshot();
        assert_eq!(s.contention_stall_ns(), 5_000);
        assert_eq!((s.drops, s.retransmits, s.duplicates), (1, 1, 1));
    }

    #[test]
    fn envelope_and_message_accounting() {
        let w = WireStats::default();
        w.add_envelope(100, 1);
        w.add_envelope(500, 4); // a batched envelope carrying 4 messages
        w.incr_hook_consumed();
        w.incr_hook_delivered();
        let s = w.snapshot();
        assert_eq!(s.envelopes, 2);
        assert_eq!(s.envelope_bytes, 600);
        assert_eq!(s.messages, 5);
        assert_eq!(s.message_bytes, 600);
        assert_eq!(s.bytes_per_envelope(), 300.0);
        assert_eq!(s.messages_per_envelope(), 2.5);
        assert_eq!((s.hook_consumed, s.hook_delivered), (1, 1));
        assert_eq!(WireStatsSnapshot::default().bytes_per_envelope(), 0.0);
    }

    #[test]
    fn record_accumulates_totals_and_links() {
        let s = NetStats::new();
        s.record(NodeId(0), NodeId(1), 100);
        s.record(NodeId(0), NodeId(1), 50);
        s.record(NodeId(1), NodeId(0), 10);
        assert_eq!(s.messages(), 3);
        assert_eq!(s.bytes(), 160);
        assert_eq!(
            s.link(NodeId(0), NodeId(1)),
            LinkCounters {
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(s.link(NodeId(2), NodeId(3)), LinkCounters::default());
    }

    #[test]
    fn snapshot_and_reset() {
        let s = NetStats::new();
        s.record(NodeId(0), NodeId(1), 4096);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 1);
        assert_eq!(snap.bytes, 4096);
        assert_eq!(snap.per_link.len(), 1);
        s.reset();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.bytes(), 0);
        assert!(s.snapshot().per_link.is_empty());
    }
}
