//! Pluggable wire-level transport backends.
//!
//! The cost model ([`crate::NetworkModel`]) says how long one message takes
//! on an otherwise idle interconnect; a transport backend says what happens
//! when the wire is *not* idle. Three backends ship:
//!
//! * [`TransportBackend::Ideal`] — the historical behaviour: every link is an
//!   uncontended, infinite-capacity pipe; delivery happens exactly one
//!   cost-model delay after the send, stretched only by the per-link FIFO
//!   guarantee. Bit-identical (memory *and* virtual time) to the
//!   pre-backend-seam transport.
//! * [`TransportBackend::Contended`] — per-node egress and ingress NIC
//!   serialization plus duplex links: a node transmits one frame at a time at
//!   the model's bandwidth, and a node receives one frame at a time, so
//!   concurrent page transfers share bandwidth instead of overlapping for
//!   free. Delivery is a scheduled event (the wire arrival), not a timestamp
//!   precomputed at send time.
//! * [`TransportBackend::Lossy`] — seeded deterministic frame drops and
//!   duplications with per-link retransmission timers and sequence numbers.
//!   A receiver-side reorder buffer re-establishes the FIFO-no-overtake,
//!   exactly-once guarantee above the loss layer, so protocols run unchanged
//!   — only slower, by a deterministic amount reproducible from the seed.
//!
//! Every backend preserves the Madeleine channel invariant: on a directed
//! link, a message never overtakes an earlier one.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_sim::{EngineCtl, SimDuration, SimTime};

use crate::model::NetworkModel;
use crate::stats::{WireStats, WireStatsSnapshot};
use crate::topology::{NodeId, Topology};
use crate::transport::{DeliverySink, Envelope};

/// Transport-layer tuning knobs of a cluster, threaded through `Pm2Config`
/// the same way the scheduler's `SimTuning` is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TransportTuning {
    /// Which wire-level backend carries the messages.
    pub backend: TransportBackend,
}

impl TransportTuning {
    /// The historical uncontended pipe (the default).
    pub fn ideal() -> Self {
        TransportTuning {
            backend: TransportBackend::Ideal,
        }
    }

    /// Per-node NIC serialization and duplex link queues.
    pub fn contended() -> Self {
        TransportTuning {
            backend: TransportBackend::Contended,
        }
    }

    /// Seeded deterministic loss/duplication with retransmission.
    pub fn lossy(seed: u64) -> Self {
        TransportTuning {
            backend: TransportBackend::Lossy(LossyConfig {
                seed,
                ..LossyConfig::default()
            }),
        }
    }

    /// Controller-permuted delivery order (the dsm-verify exploration seam).
    pub fn permuted() -> Self {
        TransportTuning {
            backend: TransportBackend::Permuted(PermutedConfig::default()),
        }
    }
}

/// Selection of the wire-level behaviour of a [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportBackend {
    /// Uncontended infinite-capacity links (the historical behaviour).
    #[default]
    Ideal,
    /// Per-node egress/ingress NIC serialization and duplex link queues.
    Contended,
    /// Deterministic drops/duplications with retransmission timers.
    Lossy(LossyConfig),
    /// `Ideal`, except that an installed engine
    /// [`ScheduleController`](dsmpm2_sim::ScheduleController) picks one of a
    /// small number of bounded delivery slots per message, permuting
    /// *cross-link* delivery order. Per-link FIFO is still enforced by the
    /// link clocks, so the Madeleine no-overtake invariant holds on every
    /// explored schedule. Without a controller this is exactly `Ideal`.
    Permuted(PermutedConfig),
}

impl TransportBackend {
    /// Short human-readable backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TransportBackend::Ideal => "ideal",
            TransportBackend::Contended => "contended",
            TransportBackend::Lossy(_) => "lossy",
            TransportBackend::Permuted(_) => "permuted",
        }
    }
}

/// Parameters of the [`TransportBackend::Permuted`] backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PermutedConfig {
    /// Number of delivery slots offered to the controller per message
    /// (clamped to ≥ 1). Slot 0 is the ideal arrival; slot `k` adds `k`
    /// times half the message's own wire delay (plus one nanosecond, so
    /// even zero-delay messages can be reordered), which is enough slack to
    /// interleave with concurrent messages of other links without inflating
    /// virtual time unboundedly.
    pub options: u8,
}

impl Default for PermutedConfig {
    fn default() -> Self {
        PermutedConfig { options: 3 }
    }
}

/// Parameters of the [`TransportBackend::Lossy`] backend. All behaviour is a
/// pure function of these values, so a run replays bit-identically from the
/// same seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossyConfig {
    /// Seed of the deterministic drop/duplication decisions.
    pub seed: u64,
    /// Probability of dropping one wire attempt, in 1/1000 (values ≥ 1000
    /// are clamped to 999 so every message eventually gets through).
    pub drop_per_mille: u16,
    /// Probability that a successfully received frame is duplicated on the
    /// wire, in 1/1000. Duplicates are discarded by the sequence-number
    /// check and only show up in [`WireStatsSnapshot::duplicates`].
    pub dup_per_mille: u16,
    /// Retransmission timeout, as a multiple of the attempt's own wire time
    /// (clamped to ≥ 1): the sender re-sends a dropped frame `rto_factor`
    /// wire times after the attempt departed.
    pub rto_factor: u32,
}

impl Default for LossyConfig {
    fn default() -> Self {
        LossyConfig {
            seed: 0x5eed_d5a1,
            drop_per_mille: 50,
            dup_per_mille: 10,
            rto_factor: 2,
        }
    }
}

/// Hard cap on wire attempts per frame, so even an (clamped) adversarial
/// drop rate cannot stall a link forever.
const MAX_ATTEMPTS: u32 = 64;

/// The seam between the [`crate::Network`] API and the wire-level behaviour.
///
/// A backend receives every envelope together with the cost-model delay the
/// caller computed (`base_delay`, the idle-wire transfer time) and must
/// eventually deliver the envelope — exactly once, never overtaking an
/// earlier message on the same directed link — into `tx`, the destination
/// node's delivery sink (the incoming queue, behind the network's delivery
/// interceptor).
pub trait Transport<M: Send + 'static>: Send + Sync {
    /// Hand one envelope to the wire.
    fn submit(&self, env: Envelope<M>, base_delay: SimDuration, tx: &DeliverySink<M>);
    /// Wire-level counters (stalls, drops, retransmits, duplicates).
    fn wire_stats(&self) -> WireStatsSnapshot;
}

/// Build the backend selected by `tuning` for a cluster of
/// `topology.num_nodes` nodes over the cost model `model`.
pub fn build_transport<M: Send + 'static>(
    ctl: EngineCtl,
    model: &NetworkModel,
    topology: &Topology,
    tuning: TransportTuning,
) -> Box<dyn Transport<M>> {
    let n = topology.num_nodes;
    match tuning.backend {
        TransportBackend::Ideal => Box::new(IdealTransport::new(n)),
        TransportBackend::Contended => Box::new(ContendedTransport::new(ctl, model, n)),
        TransportBackend::Lossy(config) => Box::new(LossyTransport::<M>::new(ctl, config, n)),
        TransportBackend::Permuted(config) => Box::new(PermutedTransport::new(ctl, config, n)),
    }
}

/// Last scheduled arrival per directed link — the per-link replacement of
/// the old global `fifo: Mutex<HashMap<(NodeId, NodeId), SimTime>>`: one
/// word-sized lock per link, sized once from the topology, so sends on
/// different links never contend and nothing grows over the run.
struct LinkClocks {
    num_nodes: usize,
    last_arrival: Vec<Mutex<SimTime>>,
}

impl LinkClocks {
    fn new(num_nodes: usize) -> Self {
        LinkClocks {
            num_nodes,
            last_arrival: (0..num_nodes * num_nodes)
                .map(|_| Mutex::new(SimTime::ZERO))
                .collect(),
        }
    }

    /// Stretch `natural` so it never precedes the link's last scheduled
    /// arrival, and record the result as the new last arrival. Returns the
    /// (possibly stretched) arrival time.
    fn reserve(&self, from: NodeId, to: NodeId, natural: SimTime) -> SimTime {
        let mut last = self.last_arrival[from.index() * self.num_nodes + to.index()].lock();
        let arrival = natural.max(*last);
        *last = arrival;
        arrival
    }
}

/// Per-node NIC availability (egress or ingress): the time at which the NIC
/// finishes its current frame.
struct NicClocks {
    free_at: Vec<Mutex<SimTime>>,
}

impl NicClocks {
    fn new(num_nodes: usize) -> Self {
        NicClocks {
            free_at: (0..num_nodes).map(|_| Mutex::new(SimTime::ZERO)).collect(),
        }
    }

    /// Reserve the NIC of `node` for `occupancy`, starting no earlier than
    /// `not_before`. Returns the reservation's start time.
    fn reserve(&self, node: NodeId, not_before: SimTime, occupancy: SimDuration) -> SimTime {
        let mut free = self.free_at[node.index()].lock();
        let start = (*free).max(not_before);
        *free = start + occupancy;
        start
    }
}

// ---------------------------------------------------------------------------
// Ideal
// ---------------------------------------------------------------------------

/// The historical behaviour: delivery exactly `base_delay` after the send,
/// stretched only by the per-link FIFO guarantee.
struct IdealTransport {
    links: LinkClocks,
    stats: WireStats,
}

impl IdealTransport {
    fn new(num_nodes: usize) -> Self {
        IdealTransport {
            links: LinkClocks::new(num_nodes),
            stats: WireStats::default(),
        }
    }
}

impl<M: Send + 'static> Transport<M> for IdealTransport {
    fn submit(&self, env: Envelope<M>, base_delay: SimDuration, tx: &DeliverySink<M>) {
        let natural = env.sent_at + base_delay;
        let arrival = self.links.reserve(env.from, env.to, natural);
        self.stats.add_fifo_stall(arrival.since(natural));
        tx.send_at(arrival, env);
    }

    fn wire_stats(&self) -> WireStatsSnapshot {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Permuted
// ---------------------------------------------------------------------------

/// `Ideal` with a delivery-order choice point per message: when the engine
/// has a [`dsmpm2_sim::ScheduleController`] installed, every cross-node
/// message asks it for one of `options` bounded delivery slots before the
/// usual per-link FIFO reservation. Slot 0 reproduces `Ideal` exactly (and
/// is what an uncontrolled run always takes), so runs without a controller
/// are bit-identical to the ideal backend.
struct PermutedTransport {
    ctl: EngineCtl,
    options: u32,
    links: LinkClocks,
    stats: WireStats,
}

impl PermutedTransport {
    fn new(ctl: EngineCtl, config: PermutedConfig, num_nodes: usize) -> Self {
        PermutedTransport {
            ctl,
            options: u32::from(config.options).max(1),
            links: LinkClocks::new(num_nodes),
            stats: WireStats::default(),
        }
    }
}

impl<M: Send + 'static> Transport<M> for PermutedTransport {
    fn submit(&self, env: Envelope<M>, base_delay: SimDuration, tx: &DeliverySink<M>) {
        let choice = if self.options > 1 && env.from != env.to {
            match self.ctl.controller() {
                Some(controller) => controller
                    .choose_delivery(
                        self.ctl.now(),
                        env.from.index() as u64,
                        env.to.index() as u64,
                        self.options,
                    )
                    .min(self.options - 1),
                None => 0,
            }
        } else {
            0
        };
        // Slot slack: half the message's own wire delay plus 1 ns per slot,
        // so slot k can slip behind concurrent messages of other links
        // without stretching virtual time past one extra delay overall.
        let slack = SimDuration::from_nanos(base_delay.as_nanos() / 2 + 1) * u64::from(choice);
        let natural = env.sent_at + base_delay + slack;
        let arrival = self.links.reserve(env.from, env.to, natural);
        self.stats.add_fifo_stall(arrival.since(natural));
        tx.send_at(arrival, env);
    }

    fn wire_stats(&self) -> WireStatsSnapshot {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Contended
// ---------------------------------------------------------------------------

struct ContendedInner {
    ingress: NicClocks,
    links: LinkClocks,
    stats: WireStats,
}

/// Per-node egress/ingress NIC serialization with duplex links.
///
/// A frame of `b` payload bytes occupies the sender's egress NIC for
/// `b / bandwidth` (reserved in send order — the egress queue), travels the
/// wire for the latency part of the cost-model delay, and then occupies the
/// receiver's ingress NIC for the same serialization time — reserved *on
/// arrival*, by a scheduled event, so ingress contention resolves in true
/// arrival order rather than in send order. An uncontended transfer costs
/// exactly the cost-model delay; concurrent transfers through the same NIC
/// queue behind each other.
struct ContendedTransport {
    ctl: EngineCtl,
    bandwidth_bytes_per_us: f64,
    egress: NicClocks,
    /// Per-link clamp on the *wire arrival* events: a frame must not reach
    /// the destination NIC before an earlier frame of the same link did.
    /// Without it, a low-latency frame (e.g. a minimal RPC) submitted after
    /// a high-latency one could fire its arrival event first and overtake
    /// it through the ingress queue — the exact overtake the Madeleine FIFO
    /// guarantee forbids.
    wire_heads: LinkClocks,
    inner: Arc<ContendedInner>,
}

impl ContendedTransport {
    fn new(ctl: EngineCtl, model: &NetworkModel, num_nodes: usize) -> Self {
        ContendedTransport {
            ctl,
            bandwidth_bytes_per_us: model.bandwidth_bytes_per_us,
            egress: NicClocks::new(num_nodes),
            wire_heads: LinkClocks::new(num_nodes),
            inner: Arc::new(ContendedInner {
                ingress: NicClocks::new(num_nodes),
                links: LinkClocks::new(num_nodes),
                stats: WireStats::default(),
            }),
        }
    }

    /// Size-dependent part of a frame's cost: the time its bytes occupy a
    /// NIC at the model's bandwidth, capped by the caller's whole delay
    /// (explicit-delay sends, e.g. thread migration, may charge less than
    /// the raw serialization time).
    fn serialization(&self, bytes: usize, base_delay: SimDuration) -> SimDuration {
        let ser = SimDuration::from_micros_f64(bytes as f64 / self.bandwidth_bytes_per_us);
        ser.min(base_delay)
    }
}

impl<M: Send + 'static> Transport<M> for ContendedTransport {
    fn submit(&self, env: Envelope<M>, base_delay: SimDuration, tx: &DeliverySink<M>) {
        let (from, to) = (env.from, env.to);
        if from == to {
            // Loopback skips the NICs (same as it skips the wire).
            let arrival = self.inner.links.reserve(from, to, env.sent_at + base_delay);
            tx.send_at(arrival, env);
            return;
        }
        let ser = self.serialization(env.bytes, base_delay);
        let wire_latency = base_delay - ser;
        let start_tx = self.egress.reserve(from, env.sent_at, ser);
        self.inner
            .stats
            .add_egress_stall(start_tx.since(env.sent_at));
        // The frame's last bit reaches the destination NIC here; ingress
        // reservation happens *then*, as a scheduled event, so receivers
        // serve frames in arrival order. Same-link frames arrive in submit
        // order (the wire_heads clamp; ties resolve in event-seq = submit
        // order), which keeps the ingress pass FIFO per link.
        let at_nic = self
            .wire_heads
            .reserve(from, to, start_tx + ser + wire_latency);
        let inner = Arc::clone(&self.inner);
        let tx = tx.clone();
        // The wire-arrival event reserves the *receiver's* NIC, so it runs
        // on the receiver's shard, serialized with the node's other events.
        self.ctl.call_at_on(to.index() as u64, at_nic, move |ctl| {
            let now = ctl.now();
            let start_rx = inner.ingress.reserve(to, now, ser);
            inner.stats.add_ingress_stall(start_rx.since(now));
            let arrival = inner.links.reserve(from, to, start_rx);
            tx.send_at(arrival, env);
        });
    }

    fn wire_stats(&self) -> WireStatsSnapshot {
        self.inner.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Lossy
// ---------------------------------------------------------------------------

struct LossyLink<M> {
    /// Sequence number assigned to the next frame submitted on this link.
    next_seq: u64,
    /// Sequence number the receiver delivers next; everything below it has
    /// been handed to the endpoint exactly once.
    deliver_next: u64,
    /// Frames received ahead of `deliver_next`, waiting for the gap to fill.
    reorder: BTreeMap<u64, Envelope<M>>,
    /// FIFO guard over the delivered stream.
    last_arrival: SimTime,
}

impl<M> Default for LossyLink<M> {
    fn default() -> Self {
        LossyLink {
            next_seq: 0,
            deliver_next: 0,
            reorder: BTreeMap::new(),
            last_arrival: SimTime::ZERO,
        }
    }
}

struct LossyInner<M> {
    num_nodes: usize,
    links: Vec<Mutex<LossyLink<M>>>,
    stats: WireStats,
}

impl<M> LossyInner<M> {
    fn link(&self, from: NodeId, to: NodeId) -> &Mutex<LossyLink<M>> {
        &self.links[from.index() * self.num_nodes + to.index()]
    }
}

/// Seeded deterministic drop/duplication with per-link retransmission
/// timers and sequence numbers. Above the loss layer every link is still a
/// reliable FIFO channel: the receiver's reorder buffer releases frames in
/// sequence order and discards duplicates, so protocols observe exactly-once
/// in-order delivery — at a (deterministically) later time.
struct LossyTransport<M> {
    ctl: EngineCtl,
    config: LossyConfig,
    inner: Arc<LossyInner<M>>,
}

impl<M: Send + 'static> LossyTransport<M> {
    fn new(ctl: EngineCtl, mut config: LossyConfig, num_nodes: usize) -> Self {
        config.drop_per_mille = config.drop_per_mille.min(999);
        config.dup_per_mille = config.dup_per_mille.min(1000);
        config.rto_factor = config.rto_factor.max(1);
        LossyTransport {
            ctl,
            config,
            inner: Arc::new(LossyInner {
                num_nodes,
                links: (0..num_nodes * num_nodes)
                    .map(|_| Mutex::new(LossyLink::default()))
                    .collect(),
                stats: WireStats::default(),
            }),
        }
    }

    /// Deterministic per-(link, seq, attempt) dice roll in `0..1000`.
    fn roll(&self, salt: u64, from: NodeId, to: NodeId, seq: u64, attempt: u32) -> u16 {
        let mut x = self.config.seed;
        x ^= salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= (from.index() as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= (to.index() as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= seq.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f);
        (splitmix64(x) % 1000) as u16
    }

    /// Run one wire attempt for frame `seq`, departing at `depart_at`: the
    /// frame is either dropped (schedule a retransmission one RTO later) or
    /// arrives `base_delay` after departure and goes through the receiver's
    /// reorder buffer.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        self_inner: &Arc<LossyInner<M>>,
        ctl: &EngineCtl,
        config: LossyConfig,
        seq: u64,
        attempt_no: u32,
        depart_at: SimTime,
        env: Envelope<M>,
        base_delay: SimDuration,
        tx: DeliverySink<M>,
    ) {
        let (from, to) = (env.from, env.to);
        let shim = LossyTransport {
            ctl: ctl.clone(),
            config,
            inner: Arc::clone(self_inner),
        };
        let dropped = shim.roll(0xd209, from, to, seq, attempt_no) < config.drop_per_mille
            && attempt_no < MAX_ATTEMPTS;
        if dropped {
            self_inner.stats.incr_drop();
            self_inner.stats.incr_retransmit();
            let rto = base_delay * u64::from(config.rto_factor);
            let retransmit_at = depart_at + rto;
            let inner = Arc::clone(self_inner);
            let ctl_again = ctl.clone();
            ctl.call_at_on(to.index() as u64, retransmit_at, move |_| {
                LossyTransport::attempt(
                    &inner,
                    &ctl_again,
                    config,
                    seq,
                    attempt_no + 1,
                    retransmit_at,
                    env,
                    base_delay,
                    tx,
                );
            });
            return;
        }
        if shim.roll(0x0d0b, from, to, seq, attempt_no) < config.dup_per_mille {
            // The wire delivers the frame twice; the sequence check discards
            // the second copy, which therefore only exists as a counter.
            self_inner.stats.incr_duplicate();
        }
        let arrive_at = depart_at + base_delay;
        let inner = Arc::clone(self_inner);
        // Arrival mutates the receiver-side reorder buffer: receiver shard.
        ctl.call_at_on(to.index() as u64, arrive_at, move |ctl| {
            let now = ctl.now();
            let mut link = inner.link(from, to).lock();
            debug_assert!(seq >= link.deliver_next, "duplicate real frame {seq}");
            link.reorder.insert(seq, env);
            // Release the in-order prefix, oldest first, all at this instant
            // — the channel's send-sequence numbers keep them ordered.
            while let Some(ready) = {
                let next = link.deliver_next;
                link.reorder.remove(&next)
            } {
                let arrival = now.max(link.last_arrival);
                link.last_arrival = arrival;
                link.deliver_next += 1;
                tx.send_at(arrival, ready);
            }
        });
    }
}

impl<M: Send + 'static> Transport<M> for LossyTransport<M> {
    fn submit(&self, env: Envelope<M>, base_delay: SimDuration, tx: &DeliverySink<M>) {
        let (from, to) = (env.from, env.to);
        if from == to {
            // Loopback skips the wire, hence the loss layer.
            let mut link = self.inner.link(from, to).lock();
            let arrival = (env.sent_at + base_delay).max(link.last_arrival);
            link.last_arrival = arrival;
            tx.send_at(arrival, env);
            return;
        }
        let seq = {
            let mut link = self.inner.link(from, to).lock();
            let seq = link.next_seq;
            link.next_seq += 1;
            seq
        };
        LossyTransport::attempt(
            &self.inner,
            &self.ctl,
            self.config,
            seq,
            0,
            env.sent_at,
            env,
            base_delay,
            tx.clone(),
        );
    }

    fn wire_stats(&self) -> WireStatsSnapshot {
        self.inner.stats.snapshot()
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash for the dice rolls.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::transport::Network;
    use dsmpm2_sim::Engine;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn net_with(engine: &Engine, tuning: TransportTuning, nodes: usize) -> Network<(usize, u64)> {
        Network::with_transport(
            engine.ctl(),
            profiles::bip_myrinet(),
            Topology::flat(nodes),
            tuning,
        )
    }

    /// Arrival time of a single uncontended transfer must be exactly the
    /// cost model's prediction under every backend (Lossy with drops off).
    #[test]
    fn uncontended_transfer_matches_model_under_every_backend() {
        let lossless = TransportTuning {
            backend: TransportBackend::Lossy(LossyConfig {
                drop_per_mille: 0,
                dup_per_mille: 0,
                ..LossyConfig::default()
            }),
        };
        for tuning in [
            TransportTuning::ideal(),
            TransportTuning::contended(),
            lossless,
        ] {
            let mut engine = Engine::new();
            let net = net_with(&engine, tuning, 2);
            let expected = profiles::bip_myrinet().message_time(4096);
            let arrived = Arc::new(AtomicU64::new(0));
            let rx = net.endpoint(NodeId(1));
            let a = arrived.clone();
            engine.spawn("rx", move |h| {
                let _ = rx.recv(h);
                a.store(h.global_now().as_nanos(), Ordering::SeqCst);
            });
            let net2 = net.clone();
            engine.spawn("tx", move |h| {
                net2.send(h, NodeId(0), NodeId(1), (0, 0), 4096);
            });
            engine.run().unwrap();
            assert_eq!(
                arrived.load(Ordering::SeqCst),
                expected.as_nanos(),
                "backend {}",
                tuning.backend.name()
            );
        }
    }

    /// Two concurrent page transfers out of one node serialize at the egress
    /// NIC under Contended: the second arrives roughly one serialization
    /// time later than under Ideal.
    #[test]
    fn contended_egress_serializes_concurrent_transfers() {
        let last_arrival = |tuning: TransportTuning| -> u64 {
            let mut engine = Engine::new();
            let net = net_with(&engine, tuning, 3);
            let done = Arc::new(AtomicU64::new(0));
            for dest in [1usize, 2] {
                let rx = net.endpoint(NodeId(dest));
                let d = done.clone();
                engine.spawn(format!("rx{dest}"), move |h| {
                    let _ = rx.recv(h);
                    d.fetch_max(h.global_now().as_nanos(), Ordering::SeqCst);
                });
            }
            let net2 = net.clone();
            engine.spawn("tx", move |h| {
                net2.send(h, NodeId(0), NodeId(1), (0, 0), 4096);
                net2.send(h, NodeId(0), NodeId(2), (0, 1), 4096);
            });
            engine.run().unwrap();
            done.load(Ordering::SeqCst)
        };
        let ideal = last_arrival(TransportTuning::ideal());
        let contended = last_arrival(TransportTuning::contended());
        let ser =
            SimDuration::from_micros_f64(4096.0 / profiles::bip_myrinet().bandwidth_bytes_per_us);
        assert!(
            contended >= ideal + ser.as_nanos(),
            "egress did not serialize: ideal {ideal} vs contended {contended}"
        );
    }

    /// Two senders aimed at one receiver serialize at the ingress NIC.
    #[test]
    fn contended_ingress_serializes_fan_in() {
        let mut engine = Engine::new();
        let net = net_with(&engine, TransportTuning::contended(), 3);
        let times = Arc::new(Mutex::new(Vec::new()));
        let rx = net.endpoint(NodeId(2));
        let t = times.clone();
        engine.spawn("rx", move |h| {
            for _ in 0..2 {
                let _ = rx.recv(h);
                t.lock().push(h.global_now().as_nanos());
            }
        });
        for src in [0usize, 1] {
            let net2 = net.clone();
            engine.spawn(format!("tx{src}"), move |h| {
                net2.send(h, NodeId(src), NodeId(2), (src, 0), 4096);
            });
        }
        engine.run().unwrap();
        let times = times.lock().clone();
        let ser =
            SimDuration::from_micros_f64(4096.0 / profiles::bip_myrinet().bandwidth_bytes_per_us);
        assert!(
            times[1] >= times[0] + ser.as_nanos(),
            "ingress did not serialize: {times:?}"
        );
        assert!(net.wire_stats().ingress_stall_ns > 0);
    }

    /// The lossy backend drops (and retransmits) deterministically: the same
    /// seed reproduces the exact arrival times and counters, a different
    /// seed produces a different wire schedule.
    #[test]
    fn lossy_replays_deterministically_from_the_seed() {
        let run = |seed: u64| -> (Vec<u64>, WireStatsSnapshot) {
            let tuning = TransportTuning {
                backend: TransportBackend::Lossy(LossyConfig {
                    seed,
                    drop_per_mille: 300,
                    dup_per_mille: 100,
                    rto_factor: 2,
                }),
            };
            let mut engine = Engine::new();
            let net = net_with(&engine, tuning, 2);
            let arrivals = Arc::new(Mutex::new(Vec::new()));
            let rx = net.endpoint(NodeId(1));
            let a = arrivals.clone();
            engine.spawn("rx", move |h| {
                for _ in 0..20 {
                    let _ = rx.recv(h);
                    a.lock().push(h.global_now().as_nanos());
                }
            });
            let net2 = net.clone();
            engine.spawn("tx", move |h| {
                for i in 0..20u64 {
                    net2.send(h, NodeId(0), NodeId(1), (0, i), 512);
                    h.sleep(SimDuration::from_micros(5));
                }
            });
            engine.run().unwrap();
            let recorded = arrivals.lock().clone();
            (recorded, net.wire_stats())
        };
        let (a1, s1) = run(7);
        let (a2, s2) = run(7);
        assert_eq!(a1, a2, "same seed must replay bit-identically");
        assert_eq!(s1, s2);
        assert!(s1.drops > 0, "drop rate 30% on 20 frames must drop some");
        let (a3, s3) = run(8);
        assert!(
            a1 != a3 || s1 != s3,
            "different seed should produce a different wire schedule"
        );
    }

    /// Messages survive drops in order: the receiver observes the send
    /// sequence exactly, even when later frames' attempts arrive first.
    #[test]
    fn lossy_preserves_fifo_and_exactly_once_across_drops() {
        let tuning = TransportTuning {
            backend: TransportBackend::Lossy(LossyConfig {
                seed: 42,
                drop_per_mille: 400,
                dup_per_mille: 200,
                rto_factor: 1,
            }),
        };
        let mut engine = Engine::new();
        let net = net_with(&engine, tuning, 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let rx = net.endpoint(NodeId(1));
        let o = order.clone();
        engine.spawn("rx", move |h| {
            for _ in 0..30 {
                let (_, i) = rx.recv(h).msg;
                o.lock().push(i);
            }
        });
        let net2 = net.clone();
        engine.spawn("tx", move |h| {
            for i in 0..30u64 {
                // Mixed sizes: a dropped big frame must hold back the small
                // ones sent after it.
                let bytes = if i % 3 == 0 { 4096 } else { 64 };
                net2.send(h, NodeId(0), NodeId(1), (0, i), bytes);
            }
        });
        engine.run().unwrap();
        assert_eq!(order.lock().clone(), (0..30).collect::<Vec<u64>>());
        assert!(net.wire_stats().drops > 0);
    }
}
