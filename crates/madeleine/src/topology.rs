//! Cluster topology: node identities.
//!
//! DSM-PM2 runs on flat clusters (every node can reach every other node with
//! the same cost model), so the topology reduces to a node count and a node
//! identifier type shared by every layer above.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a cluster node. Nodes are numbered `0..num_nodes`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Numeric index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Description of the simulated cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes in the cluster.
    pub num_nodes: usize,
}

impl Topology {
    /// A flat cluster of `num_nodes` nodes.
    pub fn flat(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "a cluster needs at least one node");
        Topology { num_nodes }
    }

    /// Iterate over every node identity.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId)
    }

    /// True if `node` belongs to this cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.num_nodes
    }

    /// The node that follows `node` in round-robin order.
    pub fn next_round_robin(&self, node: NodeId) -> NodeId {
        NodeId((node.0 + 1) % self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_formatting_and_conversion() {
        assert_eq!(format!("{}", NodeId(4)), "N4");
        assert_eq!(NodeId::from(7).index(), 7);
    }

    #[test]
    fn topology_enumerates_nodes() {
        let t = Topology::flat(3);
        let nodes: Vec<NodeId> = t.nodes().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(3)));
    }

    #[test]
    fn round_robin_wraps() {
        let t = Topology::flat(4);
        assert_eq!(t.next_round_robin(NodeId(1)), NodeId(2));
        assert_eq!(t.next_round_robin(NodeId(3)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_is_rejected() {
        let _ = Topology::flat(0);
    }
}
