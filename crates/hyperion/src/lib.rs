//! # dsmpm2-hyperion — the object layer used by the Java-consistency protocols
//!
//! The Hyperion system compiles multithreaded Java bytecode to native code
//! and runs it on clusters on top of DSM-PM2; its memory module was
//! co-designed with the `java_ic` / `java_pf` protocols. This crate models
//! the part of Hyperion the protocols interact with:
//!
//! * an **object heap**: objects are fixed-width field records stored in DSM
//!   pages, each object having a *home node* ("main memory");
//! * **`get` / `put` access primitives**: depending on the selected protocol,
//!   they either perform an explicit inline locality check and bypass the
//!   page-fault mechanism (`java_ic`), or rely on ordinary page-fault
//!   detection (`java_pf`); `put` records modifications with field
//!   granularity for the on-the-fly diffing;
//! * **monitors**: entering a monitor flushes the node's object cache,
//!   exiting transmits the recorded modifications to main memory — both
//!   through the protocol's lock hooks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use dsmpm2_core::{
    Access, DsmAddr, DsmAttr, DsmRuntime, DsmThreadCtx, HomePolicy, LockId, NodeId, ProtocolId,
    PAGE_SIZE,
};
use dsmpm2_protocols::{JavaConsistency, JavaDetection};

/// Width of one object field, in bytes (Java longs/references).
pub const FIELD_BYTES: usize = 8;

/// A reference to a Hyperion object stored in DSM memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    /// Address of the object's first field.
    pub addr: DsmAddr,
    /// Number of fields.
    pub fields: usize,
}

impl ObjectRef {
    /// Address of field `index`.
    pub fn field_addr(&self, index: usize) -> DsmAddr {
        assert!(index < self.fields, "field {index} out of bounds");
        self.addr.add((index * FIELD_BYTES) as u64)
    }

    /// Size of the object in bytes.
    pub fn byte_size(&self) -> usize {
        self.fields * FIELD_BYTES
    }
}

/// A monitor (Java `synchronized` object): a DSM lock whose acquire/release
/// trigger the Java-consistency cache flush / main-memory update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Monitor(pub LockId);

struct NodeBump {
    page_base: DsmAddr,
    used: usize,
}

struct HeapInner {
    runtime: DsmRuntime,
    protocol: ProtocolId,
    detection: JavaDetection,
    bumps: Mutex<HashMap<NodeId, NodeBump>>,
    objects: Mutex<Vec<ObjectRef>>,
}

/// The Hyperion object heap.
pub struct HyperionHeap {
    inner: Arc<HeapInner>,
}

impl Clone for HyperionHeap {
    fn clone(&self) -> Self {
        HyperionHeap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl HyperionHeap {
    /// Create a heap whose objects are managed by `protocol`, which must be
    /// one of the two Java-consistency protocols (`java_ic` or `java_pf`).
    pub fn new(runtime: &DsmRuntime, protocol: ProtocolId) -> Self {
        let name = runtime.protocol(protocol).name().to_string();
        let detection = match name.as_str() {
            "java_ic" => JavaDetection::InlineCheck,
            "java_pf" => JavaDetection::PageFault,
            other => panic!("HyperionHeap requires a Java-consistency protocol, got '{other}'"),
        };
        HyperionHeap {
            inner: Arc::new(HeapInner {
                runtime: runtime.clone(),
                protocol,
                detection,
                bumps: Mutex::new(HashMap::new()),
                objects: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The access-detection flavour used by this heap's protocol.
    pub fn detection(&self) -> JavaDetection {
        self.inner.detection
    }

    /// The DSM runtime backing the heap.
    pub fn runtime(&self) -> &DsmRuntime {
        &self.inner.runtime
    }

    /// Allocate an object of `fields` fields homed on `home` ("main memory"
    /// location). Objects are packed into pages homed on that node.
    pub fn alloc_object_on(&self, home: NodeId, fields: usize) -> ObjectRef {
        assert!(fields > 0, "objects need at least one field");
        let bytes = fields * FIELD_BYTES;
        assert!(
            bytes <= PAGE_SIZE,
            "objects larger than a page are not supported"
        );
        let rt = &self.inner.runtime;
        let mut bumps = self.inner.bumps.lock();
        let bump = bumps.entry(home).or_insert_with(|| NodeBump {
            page_base: rt.dsm_malloc(
                PAGE_SIZE as u64,
                DsmAttr::with_protocol(self.inner.protocol).home(HomePolicy::Fixed(home)),
            ),
            used: 0,
        });
        if bump.used + bytes > PAGE_SIZE {
            bump.page_base = rt.dsm_malloc(
                PAGE_SIZE as u64,
                DsmAttr::with_protocol(self.inner.protocol).home(HomePolicy::Fixed(home)),
            );
            bump.used = 0;
        }
        let addr = bump.page_base.add(bump.used as u64);
        bump.used += bytes;
        let obj = ObjectRef { addr, fields };
        self.inner.objects.lock().push(obj);
        obj
    }

    /// Allocate `count` objects of `fields` fields, homed round-robin across
    /// the cluster nodes (the "good distribution of the objects" the paper
    /// credits for the low remote-access rate in the map-colouring run).
    pub fn alloc_distributed(&self, count: usize, fields: usize) -> Vec<ObjectRef> {
        let nodes = self.inner.runtime.num_nodes();
        (0..count)
            .map(|i| self.alloc_object_on(NodeId(i % nodes), fields))
            .collect()
    }

    /// Number of objects allocated so far.
    pub fn object_count(&self) -> usize {
        self.inner.objects.lock().len()
    }

    /// The home node of an object.
    pub fn home_of(&self, obj: ObjectRef) -> NodeId {
        self.inner.runtime.page_meta(obj.addr.page()).home
    }

    /// Hyperion's `get` primitive: read field `field` of `obj`.
    pub fn get(&self, ctx: &mut DsmThreadCtx<'_, '_>, obj: ObjectRef, field: usize) -> u64 {
        let addr = obj.field_addr(field);
        match self.inner.detection {
            JavaDetection::InlineCheck => {
                // Explicit locality check; on a miss, call directly into the
                // protocol to bring the page into the node cache (bypassing
                // the page-fault machinery entirely).
                while !ctx.inline_check(addr, Access::Read) {
                    JavaConsistency::cache_page(ctx, addr.page());
                }
                ctx.read_local::<u64>(addr)
            }
            JavaDetection::PageFault => ctx.read::<u64>(addr),
        }
    }

    /// Hyperion's `put` primitive: write field `field` of `obj`. The
    /// modification is recorded with field granularity so the main-memory
    /// update at monitor exit only ships what changed.
    pub fn put(&self, ctx: &mut DsmThreadCtx<'_, '_>, obj: ObjectRef, field: usize, value: u64) {
        let addr = obj.field_addr(field);
        match self.inner.detection {
            JavaDetection::InlineCheck => {
                while !ctx.inline_check(addr, Access::Write) {
                    JavaConsistency::cache_page(ctx, addr.page());
                }
                ctx.write_local::<u64>(addr, value, true);
            }
            JavaDetection::PageFault => ctx.write_recorded::<u64>(addr, value),
        }
    }

    /// Create a monitor managed by `manager`.
    pub fn create_monitor(&self, manager: Option<NodeId>) -> Monitor {
        Monitor(self.inner.runtime.create_lock(manager))
    }

    /// Enter a monitor (acquires the lock, flushes the node's object cache).
    pub fn monitor_enter(&self, ctx: &mut DsmThreadCtx<'_, '_>, monitor: Monitor) {
        ctx.dsm_lock(monitor.0);
    }

    /// Exit a monitor (transmits recorded modifications to main memory, then
    /// releases the lock).
    pub fn monitor_exit(&self, ctx: &mut DsmThreadCtx<'_, '_>, monitor: Monitor) {
        ctx.dsm_unlock(monitor.0);
    }
}

impl std::fmt::Debug for HyperionHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HyperionHeap({:?}, {} objects)",
            self.inner.detection,
            self.object_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmpm2_core::{Engine, Pm2Config};
    use dsmpm2_protocols::register_builtin_protocols;
    use std::sync::Arc as StdArc;

    fn setup(nodes: usize, ic: bool) -> (Engine, DsmRuntime, HyperionHeap) {
        let engine = Engine::new();
        let rt = DsmRuntime::new(&engine, Pm2Config::sisci_sci(nodes));
        let protos = register_builtin_protocols(&rt);
        let pid = if ic { protos.java_ic } else { protos.java_pf };
        rt.set_default_protocol(pid);
        let heap = HyperionHeap::new(&rt, pid);
        (engine, rt, heap)
    }

    #[test]
    fn object_allocation_packs_pages_and_respects_homes() {
        let (_engine, rt, heap) = setup(3, false);
        let objs = heap.alloc_distributed(9, 4);
        assert_eq!(objs.len(), 9);
        assert_eq!(heap.object_count(), 9);
        for (i, obj) in objs.iter().enumerate() {
            assert_eq!(heap.home_of(*obj), NodeId(i % 3));
            assert_eq!(obj.byte_size(), 32);
        }
        // Objects homed on the same node share pages while they fit.
        assert_eq!(objs[0].addr.page(), objs[3].addr.page());
        let _ = rt;
    }

    #[test]
    fn field_addresses_are_contiguous() {
        let (_e, _rt, heap) = setup(1, false);
        let obj = heap.alloc_object_on(NodeId(0), 3);
        assert_eq!(obj.field_addr(1).as_u64(), obj.addr.as_u64() + 8);
        assert_eq!(obj.field_addr(2).as_u64(), obj.addr.as_u64() + 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn field_out_of_bounds_panics() {
        let (_e, _rt, heap) = setup(1, false);
        let obj = heap.alloc_object_on(NodeId(0), 2);
        let _ = obj.field_addr(2);
    }

    #[test]
    #[should_panic(expected = "Java-consistency protocol")]
    fn heap_rejects_non_java_protocols() {
        let engine = Engine::new();
        let rt = DsmRuntime::new(&engine, Pm2Config::sisci_sci(2));
        let protos = register_builtin_protocols(&rt);
        let _ = HyperionHeap::new(&rt, protos.li_hudak);
    }

    fn roundtrip_scenario(ic: bool) -> (u64, dsmpm2_core::DsmStatsSnapshot) {
        let (engine, rt, heap) = setup(2, ic);
        let obj = heap.alloc_object_on(NodeId(0), 2);
        let monitor = heap.create_monitor(Some(NodeId(0)));
        let b = rt.create_barrier(2, None);
        let seen = StdArc::new(parking_lot::Mutex::new(0u64));

        let h1 = heap.clone();
        rt.spawn_dsm_thread(NodeId(1), "mutator", move |ctx| {
            h1.monitor_enter(ctx, monitor);
            h1.put(ctx, obj, 1, 777);
            h1.monitor_exit(ctx, monitor);
            ctx.dsm_barrier(b);
        });
        let h2 = heap.clone();
        let seen2 = seen.clone();
        rt.spawn_dsm_thread(NodeId(0), "observer", move |ctx| {
            ctx.dsm_barrier(b);
            h2.monitor_enter(ctx, monitor);
            *seen2.lock() = h2.get(ctx, obj, 1);
            h2.monitor_exit(ctx, monitor);
        });
        let mut engine = engine;
        engine.run().unwrap();
        let v = *seen.lock();
        (v, rt.stats().snapshot())
    }

    #[test]
    fn java_pf_put_is_visible_after_monitor_roundtrip() {
        let (v, stats) = roundtrip_scenario(false);
        assert_eq!(v, 777);
        assert!(
            stats.write_faults >= 1,
            "java_pf detects the remote put via a fault"
        );
        assert_eq!(stats.inline_checks, 0);
    }

    #[test]
    fn java_ic_put_is_visible_and_uses_inline_checks() {
        let (v, stats) = roundtrip_scenario(true);
        assert_eq!(v, 777);
        assert!(stats.inline_checks >= 2, "every get/put pays a check");
        assert_eq!(stats.total_faults(), 0, "java_ic never takes page faults");
    }

    #[test]
    fn local_accesses_are_cheaper_under_page_faults_than_inline_checks() {
        // The crux of Figure 5: for objects that are overwhelmingly local,
        // java_pf pays nothing per access while java_ic pays a check.
        let run = |ic: bool| -> dsmpm2_sim::SimTime {
            let (engine, rt, heap) = setup(1, ic);
            let obj = heap.alloc_object_on(NodeId(0), 4);
            let h = heap.clone();
            rt.spawn_dsm_thread(NodeId(0), "local", move |ctx| {
                for i in 0..2_000u64 {
                    h.put(ctx, obj, (i % 4) as usize, i);
                    let _ = h.get(ctx, obj, (i % 4) as usize);
                }
            });
            let mut engine = engine;
            engine.run().unwrap().final_time
        };
        let t_pf = run(false);
        let t_ic = run(true);
        assert!(
            t_ic > t_pf,
            "inline checks must cost more than pure local accesses ({t_ic} vs {t_pf})"
        );
    }
}
