//! The minimal-cost map-colouring workload of the paper's Figure 5.
//!
//! A multithreaded Java program (compiled with Hyperion) solves, by branch
//! and bound, the problem of colouring the twenty-nine eastern-most states of
//! the USA with four colours of different costs, minimising the total cost of
//! a proper colouring. The state graph is stored as Hyperion objects
//! distributed across the nodes; the best cost found so far is a shared
//! object updated under a monitor. Because objects are well distributed and
//! local objects are used intensively, remote accesses are rare — which is
//! why page-fault-based access detection (`java_pf`) beats inline checks
//! (`java_ic`).

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{DsmRuntime, DsmStatsSnapshot, NodeId, Pm2Config};
use dsmpm2_hyperion::{HyperionHeap, ObjectRef};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_builtin_protocols;
use dsmpm2_sim::{SimDuration, SimTime, SpawnOptions};

/// Names of the 29 eastern-most US states used by the instance.
pub const STATES: [&str; 29] = [
    "ME", "NH", "VT", "MA", "RI", "CT", "NY", "NJ", "PA", "DE", "MD", "VA", "WV", "OH", "MI", "IN",
    "KY", "TN", "NC", "SC", "GA", "FL", "AL", "MS", "WI", "IL", "LA", "AR", "MO",
];

/// Adjacency list (pairs of indices into [`STATES`]) of the instance graph.
pub fn adjacency() -> Vec<(usize, usize)> {
    let idx = |name: &str| STATES.iter().position(|&s| s == name).unwrap();
    let pairs = [
        ("ME", "NH"),
        ("NH", "VT"),
        ("NH", "MA"),
        ("VT", "MA"),
        ("VT", "NY"),
        ("MA", "RI"),
        ("MA", "CT"),
        ("MA", "NY"),
        ("RI", "CT"),
        ("CT", "NY"),
        ("NY", "NJ"),
        ("NY", "PA"),
        ("NJ", "PA"),
        ("NJ", "DE"),
        ("PA", "DE"),
        ("PA", "MD"),
        ("PA", "WV"),
        ("PA", "OH"),
        ("DE", "MD"),
        ("MD", "VA"),
        ("MD", "WV"),
        ("VA", "WV"),
        ("VA", "KY"),
        ("VA", "TN"),
        ("VA", "NC"),
        ("WV", "OH"),
        ("WV", "KY"),
        ("OH", "MI"),
        ("OH", "IN"),
        ("OH", "KY"),
        ("MI", "IN"),
        ("MI", "WI"),
        ("IN", "IL"),
        ("IN", "KY"),
        ("KY", "TN"),
        ("KY", "IL"),
        ("KY", "MO"),
        ("TN", "NC"),
        ("TN", "GA"),
        ("TN", "AL"),
        ("TN", "MS"),
        ("TN", "AR"),
        ("TN", "MO"),
        ("NC", "SC"),
        ("NC", "GA"),
        ("SC", "GA"),
        ("GA", "FL"),
        ("GA", "AL"),
        ("FL", "AL"),
        ("AL", "MS"),
        ("MS", "LA"),
        ("MS", "AR"),
        ("WI", "IL"),
        ("WI", "MI"),
        ("IL", "MO"),
        ("LA", "AR"),
        ("AR", "MO"),
    ];
    pairs.iter().map(|&(a, b)| (idx(a), idx(b))).collect()
}

/// Costs of the four colours (the paper uses "four colors with different
/// costs"); colouring a state with colour `c` costs `COLOR_COSTS[c]`.
pub const COLOR_COSTS: [u64; 4] = [1, 2, 3, 4];

/// A sequential oracle: exact minimal cost of a proper 4-colouring.
pub fn solve_sequential() -> u64 {
    let n = STATES.len();
    let mut neighbours = vec![Vec::new(); n];
    for (a, b) in adjacency() {
        neighbours[a].push(b);
        neighbours[b].push(a);
    }
    let mut colors = vec![usize::MAX; n];
    let mut best = u64::MAX;
    fn dfs(
        state: usize,
        n: usize,
        neighbours: &[Vec<usize>],
        colors: &mut [usize],
        cost: u64,
        best: &mut u64,
    ) {
        if cost + ((n - state) as u64) * COLOR_COSTS[0] >= *best {
            return;
        }
        if state == n {
            *best = cost;
            return;
        }
        #[allow(clippy::needless_range_loop)]
        for c in 0..4 {
            if neighbours[state]
                .iter()
                .any(|&nb| nb < state && colors[nb] == c)
            {
                continue;
            }
            colors[state] = c;
            dfs(
                state + 1,
                n,
                neighbours,
                colors,
                cost + COLOR_COSTS[c],
                best,
            );
            colors[state] = usize::MAX;
        }
    }
    dfs(0, n, &neighbours, &mut colors, 0, &mut best);
    best
}

/// Configuration of one distributed map-colouring run.
#[derive(Clone, Debug)]
pub struct ColoringConfig {
    /// Number of cluster nodes (the paper uses a four-node SCI cluster).
    pub nodes: usize,
    /// Application threads per node.
    pub threads_per_node: usize,
    /// Network profile (the paper uses SISCI/SCI).
    pub network: NetworkModel,
    /// Virtual compute time charged per explored assignment, in µs.
    pub compute_per_node_us: f64,
    /// Number of states considered (≤ 29); smaller values for quick tests.
    pub num_states: usize,
}

impl ColoringConfig {
    /// The paper's configuration on `nodes` nodes.
    pub fn paper(nodes: usize) -> Self {
        ColoringConfig {
            nodes,
            threads_per_node: 1,
            network: dsmpm2_madeleine::profiles::sisci_sci(),
            compute_per_node_us: 1.0,
            num_states: STATES.len(),
        }
    }

    /// A reduced instance for tests.
    pub fn small(nodes: usize, num_states: usize) -> Self {
        ColoringConfig {
            nodes,
            threads_per_node: 1,
            network: dsmpm2_madeleine::profiles::sisci_sci(),
            compute_per_node_us: 1.0,
            num_states,
        }
    }
}

/// Result of one distributed run.
#[derive(Clone, Debug)]
pub struct ColoringResult {
    /// Minimal colouring cost found.
    pub best_cost: u64,
    /// Virtual completion time (last thread).
    pub elapsed: SimTime,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
    /// Inline checks performed (only non-zero for `java_ic`).
    pub inline_checks: u64,
    /// Page faults taken (dominant for `java_pf`).
    pub faults: u64,
}

/// Run the branch-and-bound colouring under `protocol_name` (`"java_ic"` or
/// `"java_pf"`).
pub fn run_map_coloring(config: &ColoringConfig, protocol_name: &str) -> ColoringResult {
    assert!(config.num_states >= 2 && config.num_states <= STATES.len());
    let engine = Engine::new();
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::new(config.nodes, config.network.clone()),
    );
    let protos = register_builtin_protocols(&rt);
    let protocol = protos
        .by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);
    let heap = HyperionHeap::new(&rt, protocol);

    let n = config.num_states;
    let mut neighbours = vec![Vec::new(); n];
    for (a, b) in adjacency() {
        if a < n && b < n {
            neighbours[a].push(b);
            neighbours[b].push(a);
        }
    }

    // The graph as Hyperion objects, distributed round-robin: one object per
    // state, field 0 = neighbour count, fields 1.. = neighbour indices.
    let state_objects: Vec<ObjectRef> = (0..n)
        .map(|s| heap.alloc_object_on(NodeId(s % config.nodes), 1 + neighbours[s].len().max(1)))
        .collect();
    // The shared best cost: field 0, guarded by a monitor.
    let best_obj = heap.alloc_object_on(NodeId(0), 1);
    let monitor = heap.create_monitor(Some(NodeId(0)));

    let total_threads = config.nodes * config.threads_per_node;
    let ready = rt.create_barrier(total_threads, None);
    let finish_times = Arc::new(Mutex::new(Vec::new()));
    let best_costs = Arc::new(Mutex::new(Vec::new()));
    let neighbours = Arc::new(neighbours);

    // Seed the graph objects and the initial bound from node 0's first thread.
    {
        let heap_init = heap.clone();
        let neighbours = Arc::clone(&neighbours);
        let state_objects_init = state_objects.clone();
        rt.spawn_dsm_thread(NodeId(0), "coloring-init", move |ctx| {
            for (s, obj) in state_objects_init.iter().enumerate() {
                heap_init.put(ctx, *obj, 0, neighbours[s].len() as u64);
                for (i, &nb) in neighbours[s].iter().enumerate() {
                    heap_init.put(ctx, *obj, 1 + i, nb as u64);
                }
            }
            heap_init.monitor_enter(ctx, monitor);
            heap_init.put(ctx, best_obj, 0, u64::MAX / 2);
            heap_init.monitor_exit(ctx, monitor);
        });
    }

    // Worker threads: first-level colour choices (4 branches, then expanded to
    // 16 two-level prefixes) are dealt round-robin.
    let mut prefixes = Vec::new();
    for c0 in 0..4usize {
        for c1 in 0..4usize {
            prefixes.push((c0, c1));
        }
    }

    for t in 0..total_threads {
        let node = NodeId(t % config.nodes);
        let heap = heap.clone();
        let state_objects = state_objects.clone();
        let my_prefixes: Vec<(usize, usize)> = prefixes
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % total_threads == t)
            .map(|(_, p)| p)
            .collect();
        let finish_times = finish_times.clone();
        let best_costs = best_costs.clone();
        let config = config.clone();
        // The colouring search recurses one frame per state: stack depth
        // scales with the map, so pin the workers to the OS-thread baton —
        // the per-thread fallback off the fixed-size continuation stack.
        rt.spawn_dsm_thread_with(
            node,
            format!("coloring-{t}"),
            SpawnOptions::baton(),
            move |ctx| {
                ctx.dsm_barrier(ready);
                let n = config.num_states;
                let mut colors = vec![usize::MAX; n];
                let mut local_best = u64::MAX / 2;
                let mut pending = 0u64;

                // Recursive search expressed iteratively over an explicit stack to
                // keep the borrow of `ctx` simple.
                #[allow(clippy::too_many_arguments)]
                fn dfs(
                    ctx: &mut dsmpm2_core::DsmThreadCtx<'_, '_>,
                    heap: &HyperionHeap,
                    state_objects: &[ObjectRef],
                    monitor: dsmpm2_hyperion::Monitor,
                    best_obj: ObjectRef,
                    colors: &mut Vec<usize>,
                    state: usize,
                    cost: u64,
                    local_best: &mut u64,
                    pending: &mut u64,
                    config: &ColoringConfig,
                ) {
                    let n = config.num_states;
                    *pending += 1;
                    if *pending >= 32 {
                        ctx.pm2.compute_shared(SimDuration::from_micros_f64(
                            config.compute_per_node_us * *pending as f64,
                        ));
                        *pending = 0;
                    }
                    if cost >= *local_best {
                        return;
                    }
                    if state == n {
                        // Complete colouring. Only synchronise when it improves
                        // on our local view of the bound: monitor entries (and
                        // the cache flushes they imply) stay rare, as in the
                        // paper's run where "remote accesses are not very
                        // frequent".
                        if cost < *local_best {
                            heap.monitor_enter(ctx, monitor);
                            let global = heap.get(ctx, best_obj, 0);
                            if cost < global {
                                heap.put(ctx, best_obj, 0, cost);
                            }
                            *local_best = global.min(cost);
                            heap.monitor_exit(ctx, monitor);
                        }
                        return;
                    }
                    // Read the state's neighbour list through get (object access).
                    let obj = state_objects[state];
                    let degree = heap.get(ctx, obj, 0) as usize;
                    #[allow(clippy::needless_range_loop)]
                    for c in 0..4usize {
                        let mut conflict = false;
                        for i in 0..degree {
                            let nb = heap.get(ctx, obj, 1 + i) as usize;
                            if nb < state && colors[nb] == c {
                                conflict = true;
                                break;
                            }
                        }
                        if conflict {
                            continue;
                        }
                        colors[state] = c;
                        dfs(
                            ctx,
                            heap,
                            state_objects,
                            monitor,
                            best_obj,
                            colors,
                            state + 1,
                            cost + COLOR_COSTS[c],
                            local_best,
                            pending,
                            config,
                        );
                        colors[state] = usize::MAX;
                    }
                }

                for (c0, c1) in my_prefixes {
                    if n < 2 {
                        continue;
                    }
                    colors[0] = c0;
                    colors[1] = c1;
                    // Skip inconsistent prefixes (states 0 and 1 adjacent & same colour).
                    let degree = heap.get(ctx, state_objects[1], 0) as usize;
                    let mut conflict = false;
                    for i in 0..degree {
                        let nb = heap.get(ctx, state_objects[1], 1 + i) as usize;
                        if nb == 0 && c0 == c1 {
                            conflict = true;
                        }
                    }
                    if !conflict {
                        dfs(
                            ctx,
                            &heap,
                            &state_objects,
                            monitor,
                            best_obj,
                            &mut colors,
                            2,
                            COLOR_COSTS[c0] + COLOR_COSTS[c1],
                            &mut local_best,
                            &mut pending,
                            &config,
                        );
                    }
                    colors[0] = usize::MAX;
                    colors[1] = usize::MAX;
                }
                if pending > 0 {
                    ctx.pm2.compute_shared(SimDuration::from_micros_f64(
                        config.compute_per_node_us * pending as f64,
                    ));
                }
                ctx.dsm_barrier(ready);
                heap.monitor_enter(ctx, monitor);
                best_costs.lock().push(heap.get(ctx, best_obj, 0));
                heap.monitor_exit(ctx, monitor);
                finish_times.lock().push(ctx.pm2.now());
            },
        );
    }

    let mut engine = engine;
    engine.run().expect("map colouring must not deadlock");

    let stats = rt.stats().snapshot();
    let best_cost = best_costs
        .lock()
        .iter()
        .copied()
        .min()
        .expect("workers report the final cost");
    let elapsed = finish_times
        .lock()
        .iter()
        .copied()
        .max()
        .unwrap_or(SimTime::ZERO);
    ColoringResult {
        best_cost,
        elapsed,
        inline_checks: stats.inline_checks,
        faults: stats.total_faults(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_is_well_formed() {
        let adj = adjacency();
        assert!(adj.len() > 40);
        for (a, b) in adj {
            assert!(a < STATES.len() && b < STATES.len());
            assert_ne!(a, b);
        }
        assert_eq!(STATES.len(), 29);
    }

    #[test]
    fn sequential_oracle_finds_a_proper_low_cost_coloring() {
        let best = solve_sequential();
        // 29 states, minimum conceivable cost is 29 (all colour 0), which is
        // impossible for adjacent states; the optimum is strictly above.
        assert!(best > 29);
        assert!(best < 29 * 4);
    }

    #[test]
    fn distributed_coloring_agrees_between_java_ic_and_java_pf() {
        let config = ColoringConfig::small(2, 12);
        let ic = run_map_coloring(&config, "java_ic");
        let pf = run_map_coloring(&config, "java_pf");
        assert_eq!(
            ic.best_cost, pf.best_cost,
            "both protocols find the same optimum"
        );
        assert!(ic.inline_checks > 0);
        assert_eq!(pf.inline_checks, 0);
        assert!(pf.faults > 0);
    }

    #[test]
    fn figure5_shape_java_pf_beats_java_ic() {
        // The effect needs the object accesses to dominate the (rare) monitor
        // synchronizations, which requires a large enough instance; 20 of the
        // 29 states is the smallest size where the search is clearly
        // access-bound (the full 29-state run is exercised by the fig5 bench).
        let config = ColoringConfig::small(4, 20);
        let ic = run_map_coloring(&config, "java_ic");
        let pf = run_map_coloring(&config, "java_pf");
        assert!(
            pf.elapsed < ic.elapsed,
            "java_pf ({}) must outperform java_ic ({}) when accesses are mostly local",
            pf.elapsed,
            ic.elapsed
        );
    }
}
