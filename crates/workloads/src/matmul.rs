//! Blocked dense matrix multiply: a read-mostly SPLASH-2-style kernel.
//!
//! `C = A × B` with the three matrices in shared memory. Rows of `A` and `C`
//! are distributed block-wise across the nodes (each node computes its own
//! row block of `C`), while every node reads all of `B` — the classic
//! "replicate the read-only operand" sharing pattern that page replication
//! handles well and thread migration handles poorly. The paper's outlook
//! calls for exactly this kind of sharing-pattern study (SPLASH-2).

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{
    DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, DsmTuning, HomePolicy, NodeId, Pm2Config,
    TransportTuning, WireStatsSnapshot,
};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimDuration, SimTime, SimTuning};

/// Configuration of a matrix-multiply run.
#[derive(Clone, Debug)]
pub struct MatmulConfig {
    /// Matrices are `n x n` `f64`.
    pub n: usize,
    /// Number of cluster nodes (one worker thread per node).
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per multiply-add, in µs.
    pub compute_per_madd_us: f64,
    /// DSM tuning knobs (page-table sharding, message batching).
    pub tuning: DsmTuning,
    /// Simulation-engine tuning knobs (scheduler baton hand-off).
    pub sim: SimTuning,
    /// Transport-layer tuning knobs (wire-level backend selection).
    pub transport: TransportTuning,
}

impl MatmulConfig {
    /// A small configuration usable in tests.
    pub fn small(nodes: usize) -> Self {
        MatmulConfig {
            n: 16,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_madd_us: 0.01,
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        }
    }
}

/// Result of a matrix-multiply run.
#[derive(Clone, Debug)]
pub struct MatmulResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// Sum of all entries of `C` (checked against the sequential oracle).
    pub checksum: f64,
    /// Bit patterns of every final entry of `C` in row-major order — the
    /// exact final shared memory, used by the conformance matrix.
    pub final_cells: Vec<u64>,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
    /// Total messages put on the wire (after any batching): the metric the
    /// batching ablation compares.
    pub wire_messages: u64,
    /// Wire-level transport statistics (NIC stalls, drops, retransmits):
    /// what the transport ablation compares across backends.
    pub wire: WireStatsSnapshot,
    /// Engine-level run report (events processed, context switches,
    /// parallel scheduler rounds): what the `engine_scaling` bench reads.
    pub engine: dsmpm2_sim::RunReport,
}

/// Deterministic input entry of `A`.
pub fn a_entry(n: usize, row: usize, col: usize) -> f64 {
    ((row * n + col) % 7) as f64 + 0.5
}

/// Deterministic input entry of `B`.
pub fn b_entry(_n: usize, row: usize, col: usize) -> f64 {
    ((row + 2 * col) % 5) as f64 - 1.0
}

/// Sequential oracle: the checksum of `C = A × B` computed without any DSM.
pub fn sequential_checksum(n: usize) -> f64 {
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            let mut c = 0.0;
            for k in 0..n {
                c += a_entry(n, i, k) * b_entry(n, k, j);
            }
            sum += c;
        }
    }
    sum
}

fn cell(base: DsmAddr, n: usize, row: usize, col: usize) -> DsmAddr {
    base.add(((row * n + col) * 8) as u64)
}

/// Run the blocked matrix multiply under `protocol_name` (any registered
/// built-in or extension protocol).
pub fn run_matmul(config: &MatmulConfig, protocol_name: &str) -> MatmulResult {
    assert!(config.n >= config.nodes && config.n.is_multiple_of(config.nodes));
    let cluster_config = Pm2Config::new(config.nodes, config.network.clone())
        .with_dsm_tuning(config.tuning)
        .with_sim_tuning(config.sim)
        .with_transport_tuning(config.transport);
    let engine = Engine::with_config(cluster_config.engine_config());
    let rt = DsmRuntime::new(&engine, cluster_config);
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let bytes = (config.n * config.n * 8) as u64;
    // A and C are distributed block-wise (each node owns its row block); B is
    // homed round-robin and replicated on demand.
    let a = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Block));
    let b = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::RoundRobin));
    let c = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Block));
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let checksum = Arc::new(Mutex::new(0.0f64));
    let final_cells = Arc::new(Mutex::new(vec![0u64; config.n * config.n]));

    let rows_per_node = config.n / config.nodes;
    for node in 0..config.nodes {
        let finish = finish.clone();
        let checksum = checksum.clone();
        let final_cells = final_cells.clone();
        let config = config.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("matmul-{node}"), move |ctx| {
            let n = config.n;
            let first = node * rows_per_node;
            let last = first + rows_per_node;
            // Initialise the owned row block of A and the corresponding
            // columns of B (the B rows are split the same way so that every
            // node contributes to initialising it exactly once).
            for row in first..last {
                for col in 0..n {
                    ctx.write::<f64>(cell(a, n, row, col), a_entry(n, row, col));
                    ctx.write::<f64>(cell(b, n, row, col), b_entry(n, row, col));
                }
            }
            ctx.dsm_barrier(barrier);

            let mut madds = 0u64;
            let mut local_sum = 0.0;
            for row in first..last {
                for col in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        let x = ctx.read::<f64>(cell(a, n, row, k));
                        let y = ctx.read::<f64>(cell(b, n, k, col));
                        acc += x * y;
                        madds += 1;
                    }
                    ctx.write::<f64>(cell(c, n, row, col), acc);
                    local_sum += acc;
                }
            }
            ctx.compute(SimDuration::from_micros_f64(
                config.compute_per_madd_us * madds as f64,
            ));
            ctx.dsm_barrier(barrier);
            // Read the owned row block of C back from shared memory (not
            // from the locally accumulated values): the conformance matrix
            // compares what the DSM actually holds after the run. The block
            // is buffered locally and published under one lock.
            let mut block = Vec::with_capacity((last - first) * n);
            for row in first..last {
                for col in 0..n {
                    block.push(ctx.read::<f64>(cell(c, n, row, col)).to_bits());
                }
            }
            final_cells.lock()[first * n..last * n].copy_from_slice(&block);
            *checksum.lock() += local_sum;
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    let report = engine.run().expect("matmul must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let checksum = *checksum.lock();
    let final_cells = std::mem::take(&mut *final_cells.lock());
    MatmulResult {
        elapsed,
        checksum,
        final_cells,
        stats: rt.stats().snapshot(),
        wire_messages: rt.cluster().network().stats().messages(),
        wire: rt.cluster().network().wire_stats(),
        engine: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_oracle_is_deterministic() {
        assert_eq!(sequential_checksum(8), sequential_checksum(8));
        assert_ne!(sequential_checksum(8), 0.0);
    }

    #[test]
    fn matmul_multiple_writers_per_page_across_pages() {
        // Regression: with 4 nodes and n=32, C/A/B each span 2 pages with 2
        // concurrent writers per page. The home's release-time invalidation
        // used to reach a third-party writer mid-phase and evict its frame
        // while the application thread was still writing into it, silently
        // losing those writes (fixed by revoking access before the blocking
        // diff push in hbrc_mw's invalidate_server).
        let config = MatmulConfig {
            n: 32,
            nodes: 4,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_madd_us: 0.01,
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        };
        let oracle = sequential_checksum(config.n);
        for proto in ["hbrc_mw", "hlrc_notices"] {
            let result = run_matmul(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
        }
    }

    #[test]
    fn matmul_matches_the_sequential_oracle_under_page_protocols() {
        let config = MatmulConfig::small(2);
        let oracle = sequential_checksum(config.n);
        for proto in ["li_hudak", "li_hudak_fixed", "hbrc_mw"] {
            let result = run_matmul(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
            assert!(result.elapsed > SimTime::ZERO);
        }
    }

    #[test]
    fn matmul_replicates_b_rather_than_migrating_threads() {
        let config = MatmulConfig::small(2);
        let result = run_matmul(&config, "li_hudak");
        assert!(result.stats.page_transfers > 0, "B must be replicated");
        assert_eq!(result.stats.thread_migrations, 0);
    }

    #[test]
    fn more_nodes_agree_on_the_checksum() {
        let c2 = MatmulConfig::small(2);
        let c4 = MatmulConfig::small(4);
        let r2 = run_matmul(&c2, "li_hudak");
        let r4 = run_matmul(&c4, "li_hudak");
        assert!((r2.checksum - r4.checksum).abs() < 1e-6);
    }
}
