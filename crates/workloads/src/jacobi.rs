//! Jacobi 2-D stencil: a regular, barrier-synchronised workload.
//!
//! The paper's outlook calls for studying the protocols on applications with
//! different sharing patterns (SPLASH-2 style). This kernel provides the
//! classic regular pattern: a grid distributed block-wise by rows, one thread
//! per node updating its own block and reading one halo row from each
//! neighbour per iteration, with a barrier between iterations. It exercises
//! the release-consistency protocols' barrier flushes and the page manager's
//! handling of mostly-local data.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{
    DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, DsmTuning, HomePolicy, NodeId, Pm2Config,
    TransportTuning, WireStatsSnapshot,
};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimDuration, SimTime, SimTuning};

/// Configuration of a Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiConfig {
    /// Grid is `size x size` `f64` cells.
    pub size: usize,
    /// Number of relaxation iterations.
    pub iterations: usize,
    /// Number of cluster nodes (one thread per node).
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per updated cell, in µs.
    pub compute_per_cell_us: f64,
    /// DSM tuning knobs (page-table sharding, message batching).
    pub tuning: DsmTuning,
    /// Simulation-engine tuning knobs (scheduler baton hand-off).
    pub sim: SimTuning,
    /// Transport-layer tuning knobs (wire-level backend selection).
    pub transport: TransportTuning,
}

impl JacobiConfig {
    /// A small configuration usable in tests.
    pub fn small(nodes: usize) -> Self {
        JacobiConfig {
            size: 32,
            iterations: 4,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_cell_us: 0.05,
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        }
    }
}

/// Result of a Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// Sum of the final grid (used to check cross-protocol agreement).
    pub checksum: f64,
    /// Bit patterns of every final grid cell in row-major order — the exact
    /// final shared memory, used by the cross-protocol conformance matrix.
    pub final_cells: Vec<u64>,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
    /// Total messages put on the wire (after any batching): the metric the
    /// batching ablation compares.
    pub wire_messages: u64,
    /// Wire-level transport statistics (NIC stalls, drops, retransmits):
    /// what the transport ablation compares across backends.
    pub wire: WireStatsSnapshot,
    /// Engine-level run report (events processed, context switches,
    /// parallel scheduler rounds): what the `engine_scaling` bench reads.
    pub engine: dsmpm2_sim::RunReport,
}

fn cell_addr(base: DsmAddr, size: usize, row: usize, col: usize) -> DsmAddr {
    base.add(((row * size + col) * 8) as u64)
}

/// Run the Jacobi kernel under `protocol_name`.
pub fn run_jacobi(config: &JacobiConfig, protocol_name: &str) -> JacobiResult {
    assert!(config.size >= 4 && config.size.is_multiple_of(config.nodes));
    // Each row occupies a whole number of pages only if size*8 >= 4096; for
    // small grids rows share pages, which is fine (more sharing, not less).
    let cluster_config = Pm2Config::new(config.nodes, config.network.clone())
        .with_dsm_tuning(config.tuning)
        .with_sim_tuning(config.sim)
        .with_transport_tuning(config.transport);
    let engine = Engine::with_config(cluster_config.engine_config());
    let rt = DsmRuntime::new(&engine, cluster_config);
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let bytes = (config.size * config.size * 8) as u64;
    let grid_a = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Block));
    let grid_b = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Block));
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let checksum = Arc::new(Mutex::new(0.0f64));
    let final_cells = Arc::new(Mutex::new(vec![0u64; config.size * config.size]));

    let rows_per_node = config.size / config.nodes;
    for node in 0..config.nodes {
        let finish = finish.clone();
        let checksum = checksum.clone();
        let final_cells = final_cells.clone();
        let config = config.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("jacobi-{node}"), move |ctx| {
            let size = config.size;
            let first_row = node * rows_per_node;
            let last_row = first_row + rows_per_node;
            // Initialise own block of grid A: boundary 100.0, interior 0.0.
            for row in first_row..last_row {
                for col in 0..size {
                    let v = if row == 0 || row == size - 1 || col == 0 || col == size - 1 {
                        100.0
                    } else {
                        0.0
                    };
                    ctx.write::<f64>(cell_addr(grid_a, size, row, col), v);
                    ctx.write::<f64>(cell_addr(grid_b, size, row, col), v);
                }
            }
            ctx.dsm_barrier(barrier);

            let (mut src, mut dst) = (grid_a, grid_b);
            for _iter in 0..config.iterations {
                let mut cells = 0u64;
                for row in first_row.max(1)..last_row.min(size - 1) {
                    for col in 1..(size - 1) {
                        let up = ctx.read::<f64>(cell_addr(src, size, row - 1, col));
                        let down = ctx.read::<f64>(cell_addr(src, size, row + 1, col));
                        let left = ctx.read::<f64>(cell_addr(src, size, row, col - 1));
                        let right = ctx.read::<f64>(cell_addr(src, size, row, col + 1));
                        ctx.write::<f64>(
                            cell_addr(dst, size, row, col),
                            (up + down + left + right) / 4.0,
                        );
                        cells += 1;
                    }
                }
                ctx.pm2.compute_shared(SimDuration::from_micros_f64(
                    config.compute_per_cell_us * cells as f64,
                ));
                ctx.dsm_barrier(barrier);
                std::mem::swap(&mut src, &mut dst);
            }

            // Node-local contribution to the checksum and to the captured
            // final memory (each node reads back its own block, then
            // publishes it under a single lock — never holding the host
            // mutex across a DSM access, which may park the thread).
            let mut local = 0.0;
            let mut block = Vec::with_capacity((last_row - first_row) * size);
            for row in first_row..last_row {
                for col in 0..size {
                    let v = ctx.read::<f64>(cell_addr(src, size, row, col));
                    block.push(v.to_bits());
                    local += v;
                }
            }
            final_cells.lock()[first_row * size..last_row * size].copy_from_slice(&block);
            *checksum.lock() += local;
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    let report = engine.run().expect("jacobi must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let checksum = *checksum.lock();
    let final_cells = std::mem::take(&mut *final_cells.lock());
    JacobiResult {
        elapsed,
        checksum,
        final_cells,
        stats: rt.stats().snapshot(),
        wire_messages: rt.cluster().network().stats().messages(),
        wire: rt.cluster().network().wire_stats(),
        engine: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_runs_and_produces_identical_results_across_protocols() {
        let config = JacobiConfig::small(2);
        let reference = run_jacobi(&config, "li_hudak");
        assert!(reference.elapsed > SimTime::ZERO);
        assert!(reference.checksum > 0.0);
        for proto in ["erc_sw", "hbrc_mw"] {
            let result = run_jacobi(&config, proto);
            assert!(
                (result.checksum - reference.checksum).abs() < 1e-6,
                "{proto} diverged: {} vs {}",
                result.checksum,
                reference.checksum
            );
        }
    }

    #[test]
    fn more_nodes_share_more_pages_but_still_agree() {
        let c2 = JacobiConfig::small(2);
        let c4 = JacobiConfig::small(4);
        let r2 = run_jacobi(&c2, "hbrc_mw");
        let r4 = run_jacobi(&c4, "hbrc_mw");
        assert!((r2.checksum - r4.checksum).abs() < 1e-6);
        assert!(r4.stats.page_transfers + r4.stats.diffs_sent > 0);
    }
}
