//! Microbenchmark kernels: the single-fault measurements behind Tables 3 and
//! 4, plus small shared-memory kernels used by tests and examples.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{DsmAttr, DsmRuntime, HomePolicy, NodeId, Pm2Config};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_builtin_protocols;
use dsmpm2_sim::SimDuration;

/// Which fault-handling policy a read-fault measurement exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Page-transfer based handling (the `li_hudak` protocol).
    PageTransfer,
    /// Thread-migration based handling (the `migrate_thread` protocol).
    ThreadMigration,
}

/// Cost breakdown of processing one remote read fault, in microseconds —
/// the rows of Table 3 (page-transfer policy) and Table 4 (thread-migration
/// policy) of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultBreakdown {
    /// Page-fault detection.
    pub page_fault_us: f64,
    /// Page request transmission (page-transfer policy only).
    pub request_us: f64,
    /// 4 kB page transfer (page-transfer policy only).
    pub transfer_us: f64,
    /// Thread migration (thread-migration policy only).
    pub migration_us: f64,
    /// Protocol overhead (everything that is neither detection nor
    /// communication).
    pub overhead_us: f64,
    /// End-to-end time from the faulting access to its successful retry.
    pub total_us: f64,
}

/// Measure the cost of one remote read fault on a two-node cluster using
/// `network`, under the given policy. The total is measured end-to-end in the
/// simulation; the communication components are taken from the (calibrated)
/// network model and the protocol overhead is the measured remainder, exactly
/// how the paper's tables decompose the measurement.
pub fn measure_read_fault(network: NetworkModel, policy: FaultPolicy) -> FaultBreakdown {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::new(2, network.clone()));
    let protos = register_builtin_protocols(&rt);
    let protocol = match policy {
        FaultPolicy::PageTransfer => protos.li_hudak,
        FaultPolicy::ThreadMigration => protos.migrate_thread,
    };
    rt.set_default_protocol(protocol);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));

    let elapsed = Arc::new(Mutex::new(SimDuration::ZERO));
    let elapsed2 = elapsed.clone();
    rt.spawn_dsm_thread(NodeId(1), "faulting-thread", move |ctx| {
        let start = ctx.pm2.now();
        let _ = ctx.read::<u64>(addr);
        *elapsed2.lock() = ctx.pm2.now().since(start);
    });
    let mut engine = engine;
    engine
        .run()
        .expect("fault microbenchmark must not deadlock");

    let total_us = elapsed.lock().as_micros_f64();
    let costs = rt.costs();
    match policy {
        FaultPolicy::PageTransfer => {
            let request_us = network.control_time().as_micros_f64();
            let transfer_us = network.page_transfer_time(4096).as_micros_f64();
            FaultBreakdown {
                page_fault_us: costs.page_fault_us,
                request_us,
                transfer_us,
                migration_us: 0.0,
                overhead_us: total_us - costs.page_fault_us - request_us - transfer_us,
                total_us,
            }
        }
        FaultPolicy::ThreadMigration => {
            let migration_us = network.thread_migration_time(1024, 0).as_micros_f64();
            FaultBreakdown {
                page_fault_us: costs.page_fault_us,
                request_us: 0.0,
                transfer_us: 0.0,
                migration_us,
                overhead_us: total_us - costs.page_fault_us - migration_us,
                total_us,
            }
        }
    }
}

/// A lock-protected shared counter incremented from every node; returns the
/// final value (used by the quickstart example and by smoke tests).
pub fn run_shared_counter(
    nodes: usize,
    increments_per_thread: u64,
    network: NetworkModel,
    protocol_name: &str,
) -> u64 {
    let engine = Engine::new();
    let rt = DsmRuntime::new(&engine, Pm2Config::new(nodes, network));
    let protos = register_builtin_protocols(&rt);
    let protocol = protos
        .by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);
    let addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let lock = rt.create_lock(Some(NodeId(0)));
    let done = rt.create_barrier(nodes, None);
    let result = Arc::new(Mutex::new(0u64));

    for n in 0..nodes {
        let res = result.clone();
        rt.spawn_dsm_thread(NodeId(n), format!("incr-{n}"), move |ctx| {
            for _ in 0..increments_per_thread {
                ctx.dsm_lock(lock);
                let v = ctx.read::<u64>(addr);
                ctx.write::<u64>(addr, v + 1);
                ctx.dsm_unlock(lock);
            }
            ctx.dsm_barrier(done);
            // Every worker reads the final value after the barrier; they all
            // see the same total, so recording the maximum is exact.
            ctx.dsm_lock(lock);
            let v = ctx.read::<u64>(addr);
            ctx.dsm_unlock(lock);
            let mut res = res.lock();
            if v > *res {
                *res = v;
            }
        });
    }
    let mut engine = engine;
    engine.run().expect("shared counter must not deadlock");
    let v = *result.lock();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmpm2_madeleine::profiles;

    #[test]
    fn table3_shape_page_transfer_fault() {
        let b = measure_read_fault(profiles::bip_myrinet(), FaultPolicy::PageTransfer);
        // Paper Table 3, BIP/Myrinet column: 11 + 23 + 138 + 26 = 198 us.
        assert!((b.page_fault_us - 11.0).abs() < 0.1);
        assert!((b.request_us - 23.0).abs() < 2.0);
        assert!((b.transfer_us - 138.0).abs() < 4.0);
        assert!(b.overhead_us > 5.0 && b.overhead_us < 60.0, "{:?}", b);
        assert!((b.total_us - 198.0).abs() < 30.0, "total {}", b.total_us);
        // Protocol overhead stays a small fraction of the total (paper: <=15%).
        assert!(b.overhead_us / b.total_us < 0.2);
    }

    #[test]
    fn table4_shape_thread_migration_fault() {
        let b = measure_read_fault(profiles::bip_myrinet(), FaultPolicy::ThreadMigration);
        // Paper Table 4, BIP/Myrinet column: 11 + 75 + 1 = 87 us.
        assert!((b.page_fault_us - 11.0).abs() < 0.1);
        assert!((b.migration_us - 75.0).abs() < 1.0);
        assert!(b.overhead_us < 10.0, "{:?}", b);
        assert!((b.total_us - 87.0).abs() < 12.0, "total {}", b.total_us);
    }

    #[test]
    fn migration_beats_page_transfer_on_every_network() {
        for net in profiles::all() {
            let page = measure_read_fault(net.clone(), FaultPolicy::PageTransfer);
            let mig = measure_read_fault(net.clone(), FaultPolicy::ThreadMigration);
            assert!(
                mig.total_us < page.total_us,
                "{}: migration {} vs page {}",
                net.name,
                mig.total_us,
                page.total_us
            );
        }
    }

    #[test]
    fn shared_counter_is_exact_under_each_sc_protocol() {
        for proto in ["li_hudak", "migrate_thread"] {
            let v = run_shared_counter(3, 4, profiles::bip_myrinet(), proto);
            assert_eq!(v, 12, "protocol {proto}");
        }
    }
}
