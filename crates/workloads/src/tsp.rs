//! The Travelling Salesman Problem workload of the paper's Figure 4.
//!
//! The program solves TSP by branch and bound for `n` randomly placed cities.
//! The only intensively shared variable is the current shortest path length,
//! which is always accessed under a DSM lock; one application thread runs per
//! node (the paper's setup). Work is distributed statically: the second-level
//! branches of the search tree are dealt round-robin to the threads.
//!
//! The interesting effect (the one Figure 4 shows) is *where the compute
//! happens*: under the page-based protocols every thread keeps computing on
//! its own node and only the bound page travels, while under
//! `migrate_thread` the first access to the shared bound drags every thread
//! to the node holding it, overloading that node's CPU.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dsmpm2_core::{
    DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, DsmThreadCtx, HomePolicy, LockId, NodeId,
    Pm2Config, ProtocolId,
};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_builtin_protocols;
use dsmpm2_sim::{SimDuration, SimTime, SpawnOptions};

/// A TSP instance: a symmetric distance matrix over `n` cities.
#[derive(Clone, Debug)]
pub struct TspInstance {
    /// Number of cities.
    pub n: usize,
    /// Distance matrix (`dist[i][j]`, symmetric, zero diagonal).
    pub dist: Vec<Vec<u32>>,
}

impl TspInstance {
    /// A random instance with inter-city distances in `1..=100` (the paper
    /// uses "random inter-city distances").
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n >= 3, "TSP needs at least 3 cities");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dist = vec![vec![0u32; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let d = rng.gen_range(1..=100u32);
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        TspInstance { n, dist }
    }

    /// Length of the greedy nearest-neighbour tour (a cheap initial bound).
    pub fn greedy_bound(&self) -> u32 {
        let mut visited = vec![false; self.n];
        visited[0] = true;
        let mut current = 0usize;
        let mut total = 0u32;
        for _ in 1..self.n {
            let next = (0..self.n)
                .filter(|&c| !visited[c])
                .min_by_key(|&c| self.dist[current][c])
                .expect("unvisited city exists");
            total += self.dist[current][next];
            visited[next] = true;
            current = next;
        }
        total + self.dist[current][0]
    }

    /// Exact sequential branch-and-bound solution (the oracle used by tests).
    pub fn solve_sequential(&self) -> u32 {
        let mut best = self.greedy_bound();
        let mut visited = vec![false; self.n];
        visited[0] = true;
        let mut path = vec![0usize];
        self.dfs(&mut visited, &mut path, 0, &mut best, &mut 0);
        best
    }

    fn dfs(
        &self,
        visited: &mut [bool],
        path: &mut Vec<usize>,
        length: u32,
        best: &mut u32,
        expanded: &mut u64,
    ) {
        *expanded += 1;
        let current = *path.last().expect("path never empty");
        if path.len() == self.n {
            let tour = length + self.dist[current][0];
            if tour < *best {
                *best = tour;
            }
            return;
        }
        for next in 1..self.n {
            if visited[next] {
                continue;
            }
            let extended = length + self.dist[current][next];
            if extended >= *best {
                continue;
            }
            visited[next] = true;
            path.push(next);
            self.dfs(visited, path, extended, best, expanded);
            path.pop();
            visited[next] = false;
        }
    }
}

/// Configuration of one distributed TSP run.
#[derive(Clone, Debug)]
pub struct TspConfig {
    /// Number of cities (the paper uses 14).
    pub cities: usize,
    /// RNG seed for the instance.
    pub seed: u64,
    /// Number of cluster nodes; one application thread runs per node.
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per explored search-tree node, in µs
    /// (calibrated to a few µs on the 450 MHz PII nodes of the testbed).
    pub compute_per_node_us: f64,
    /// How many explored nodes are batched into one CPU reservation.
    pub compute_batch: u64,
    /// How often (in explored nodes) a thread re-reads the shared bound.
    pub bound_check_interval: u64,
}

impl TspConfig {
    /// The paper's configuration on a given node count: 14 cities,
    /// BIP/Myrinet, one thread per node.
    pub fn paper(nodes: usize) -> Self {
        TspConfig {
            cities: 14,
            seed: 42,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_node_us: 2.0,
            compute_batch: 64,
            bound_check_interval: 16,
        }
    }

    /// A smaller instance suitable for unit/integration tests.
    pub fn small(nodes: usize, cities: usize) -> Self {
        TspConfig {
            cities,
            seed: 7,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_node_us: 2.0,
            compute_batch: 16,
            bound_check_interval: 8,
        }
    }
}

/// Result of one distributed TSP run.
#[derive(Clone, Debug)]
pub struct TspResult {
    /// Best tour length found.
    pub best: u32,
    /// Virtual time at which the last thread finished.
    pub elapsed: SimTime,
    /// DSM statistics accumulated over the run.
    pub stats: DsmStatsSnapshot,
    /// Total number of search-tree nodes expanded (all threads).
    pub expanded: u64,
    /// Thread migrations per application thread (only non-zero under
    /// `migrate_thread`).
    pub migrations: u64,
}

struct SharedBound {
    addr: DsmAddr,
    lock: LockId,
}

fn read_bound(ctx: &mut DsmThreadCtx<'_, '_>, shared: &SharedBound) -> u32 {
    ctx.read::<u32>(shared.addr)
}

fn try_improve_bound(ctx: &mut DsmThreadCtx<'_, '_>, shared: &SharedBound, candidate: u32) {
    ctx.dsm_lock(shared.lock);
    let current = ctx.read::<u32>(shared.addr);
    if candidate < current {
        ctx.write::<u32>(shared.addr, candidate);
    }
    ctx.dsm_unlock(shared.lock);
}

struct WorkerSearch<'i> {
    instance: &'i TspInstance,
    shared: SharedBound,
    local_best: u32,
    expanded: u64,
    pending_compute: u64,
    config: TspConfig,
}

impl WorkerSearch<'_> {
    fn charge_expansion(&mut self, ctx: &mut DsmThreadCtx<'_, '_>) {
        self.expanded += 1;
        self.pending_compute += 1;
        if self.pending_compute >= self.config.compute_batch {
            let us = self.config.compute_per_node_us * self.pending_compute as f64;
            ctx.pm2.compute_shared(SimDuration::from_micros_f64(us));
            self.pending_compute = 0;
        }
    }

    fn flush_compute(&mut self, ctx: &mut DsmThreadCtx<'_, '_>) {
        if self.pending_compute > 0 {
            let us = self.config.compute_per_node_us * self.pending_compute as f64;
            ctx.pm2.compute_shared(SimDuration::from_micros_f64(us));
            self.pending_compute = 0;
        }
    }

    fn dfs(
        &mut self,
        ctx: &mut DsmThreadCtx<'_, '_>,
        visited: &mut [bool],
        path: &mut Vec<usize>,
        length: u32,
    ) {
        self.charge_expansion(ctx);
        // Periodically refresh the bound from shared memory (a read fault if
        // our copy was invalidated, a cheap local read otherwise).
        if self
            .expanded
            .is_multiple_of(self.config.bound_check_interval)
        {
            let global = read_bound(ctx, &self.shared);
            if global < self.local_best {
                self.local_best = global;
            }
        }
        let n = self.instance.n;
        let current = *path.last().expect("path never empty");
        if path.len() == n {
            let tour = length + self.instance.dist[current][0];
            if tour < self.local_best {
                self.local_best = tour;
                try_improve_bound(ctx, &self.shared, tour);
            }
            return;
        }
        for next in 1..n {
            if visited[next] {
                continue;
            }
            let extended = length + self.instance.dist[current][next];
            if extended >= self.local_best {
                continue;
            }
            visited[next] = true;
            path.push(next);
            self.dfs(ctx, visited, path, extended);
            path.pop();
            visited[next] = false;
        }
    }
}

/// Run the distributed TSP under `protocol` and return the result.
///
/// `runtime_and_protocol` is created internally: the function builds a fresh
/// cluster per run so that benchmark iterations are independent.
pub fn run_tsp(config: &TspConfig, protocol_name: &str) -> TspResult {
    let instance = TspInstance::random(config.cities, config.seed);
    let engine = Engine::new();
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::new(config.nodes, config.network.clone()),
    );
    let protos = register_builtin_protocols(&rt);
    let protocol: ProtocolId = protos
        .by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    // The shared bound lives on node 0, like the globally shared variable of
    // the paper's program.
    let bound_addr = rt.dsm_malloc(4096, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let bound_lock = rt.create_lock(Some(NodeId(0)));
    let initial_bound = instance.greedy_bound();

    // Pre-compute the static work distribution: second-level prefixes
    // (0, a, b) dealt round-robin across the worker threads.
    let mut prefixes = Vec::new();
    for a in 1..config.cities {
        for b in 1..config.cities {
            if a != b {
                prefixes.push((a, b));
            }
        }
    }

    let finish_times = Arc::new(Mutex::new(Vec::new()));
    let expanded_total = Arc::new(Mutex::new(0u64));
    let final_bounds = Arc::new(Mutex::new(Vec::new()));
    let done = rt.create_barrier(config.nodes, None);
    let instance = Arc::new(instance);

    for node in 0..config.nodes {
        let instance = Arc::clone(&instance);
        let my_prefixes: Vec<(usize, usize)> = prefixes
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % config.nodes == node)
            .map(|(_, p)| p)
            .collect();
        let finish_times = finish_times.clone();
        let expanded_total = expanded_total.clone();
        let final_bounds = final_bounds.clone();
        let config = config.clone();
        // The branch-and-bound search recurses one frame per city along every
        // explored tour prefix: depth (and live frame size) scales with the
        // instance, so pin these workers to the OS-thread baton — the
        // per-thread fallback off the fixed-size continuation stack.
        rt.spawn_dsm_thread_with(
            NodeId(node),
            format!("tsp-worker-{node}"),
            SpawnOptions::baton(),
            move |ctx| {
                // Initialise the shared bound exactly once (node 0's thread).
                if ctx.node() == NodeId(0) {
                    ctx.dsm_lock(bound_lock);
                    let current = ctx.read::<u32>(bound_addr);
                    if current == 0 || initial_bound < current {
                        ctx.write::<u32>(bound_addr, initial_bound);
                    }
                    ctx.dsm_unlock(bound_lock);
                }
                ctx.dsm_barrier(done);

                let mut search = WorkerSearch {
                    instance: &instance,
                    shared: SharedBound {
                        addr: bound_addr,
                        lock: bound_lock,
                    },
                    local_best: initial_bound,
                    expanded: 0,
                    pending_compute: 0,
                    config: config.clone(),
                };
                let n = instance.n;
                for (a, b) in my_prefixes {
                    let mut visited = vec![false; n];
                    visited[0] = true;
                    visited[a] = true;
                    visited[b] = true;
                    let mut path = vec![0, a, b];
                    let length = instance.dist[0][a] + instance.dist[a][b];
                    let global = read_bound(ctx, &search.shared);
                    if global < search.local_best {
                        search.local_best = global;
                    }
                    if length < search.local_best {
                        search.dfs(ctx, &mut visited, &mut path, length);
                    }
                }
                search.flush_compute(ctx);
                ctx.dsm_barrier(done);
                finish_times.lock().push(ctx.pm2.now());
                *expanded_total.lock() += search.expanded;
                // Every worker reads the agreed-upon final bound.
                ctx.dsm_lock(bound_lock);
                final_bounds.lock().push(ctx.read::<u32>(bound_addr));
                ctx.dsm_unlock(bound_lock);
            },
        );
    }

    let mut engine = engine;
    engine.run().expect("TSP run must not deadlock");

    let elapsed = finish_times
        .lock()
        .iter()
        .copied()
        .max()
        .unwrap_or(SimTime::ZERO);
    let best = final_bounds
        .lock()
        .iter()
        .copied()
        .min()
        .expect("at least one worker reports the final bound");
    let migrations = rt
        .cluster()
        .app_threads()
        .iter()
        .map(|t| t.migrations())
        .sum();
    let expanded = *expanded_total.lock();
    TspResult {
        best,
        elapsed,
        stats: rt.stats().snapshot(),
        expanded,
        migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instance_is_symmetric_with_zero_diagonal() {
        let inst = TspInstance::random(8, 3);
        for i in 0..8 {
            assert_eq!(inst.dist[i][i], 0);
            for j in 0..8 {
                assert_eq!(inst.dist[i][j], inst.dist[j][i]);
            }
        }
    }

    #[test]
    fn greedy_bound_is_a_valid_upper_bound() {
        let inst = TspInstance::random(9, 11);
        let exact = inst.solve_sequential();
        assert!(inst.greedy_bound() >= exact);
    }

    #[test]
    fn distributed_tsp_matches_sequential_oracle_for_every_protocol() {
        let config = TspConfig::small(2, 8);
        let oracle = TspInstance::random(config.cities, config.seed).solve_sequential();
        for proto in ["li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"] {
            let result = run_tsp(&config, proto);
            assert_eq!(result.best, oracle, "protocol {proto}");
            assert!(result.expanded > 0);
            assert!(result.elapsed > SimTime::ZERO);
        }
    }

    #[test]
    fn migrate_thread_drags_every_worker_to_the_bound_holder() {
        let config = TspConfig::small(3, 8);
        let page_based = run_tsp(&config, "li_hudak");
        let migrating = run_tsp(&config, "migrate_thread");
        assert_eq!(page_based.migrations, 0);
        assert!(
            migrating.migrations >= 2,
            "threads must migrate to the data"
        );
        assert_eq!(migrating.stats.page_transfers, 0);
        // Figure 4's shape: the migration protocol is slower because all the
        // compute piles up on one node.
        assert!(
            migrating.elapsed > page_based.elapsed,
            "migrate_thread {} should be slower than li_hudak {}",
            migrating.elapsed,
            page_based.elapsed
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]
        /// The distributed solver agrees with the sequential oracle on random
        /// small instances (li_hudak, 2 nodes).
        #[test]
        fn prop_distributed_matches_oracle(seed in 0u64..1000) {
            let mut config = TspConfig::small(2, 7);
            config.seed = seed;
            let oracle = TspInstance::random(7, seed).solve_sequential();
            let result = run_tsp(&config, "li_hudak");
            proptest::prop_assert_eq!(result.best, oracle);
        }
    }
}
