//! False-sharing microbenchmark: per-node counters packed into shared pages.
//!
//! Each node owns `slots_per_node` 8-byte counters, laid out `stride` bytes
//! apart so that the counters of *different* nodes share pages but never
//! share a `stride`-aligned line. Every iteration each node increments its
//! own counters, then all nodes meet at a barrier. At the default whole-page
//! coherence granularity the writes of different nodes collide on the page
//! and the coherence unit ping-pongs between them (false sharing); at a line
//! granularity of `stride` bytes or less the writes touch disjoint units and
//! no coherence traffic is exchanged after warm-up. The wire-byte and
//! virtual-time gap between the two runs is exactly the cost of false
//! sharing, which makes this the granularity ablation's workload.
//!
//! The optional *read-mostly* mode replaces the write phase: node 0
//! initialises every counter once, and the remaining nodes repeatedly read
//! them all. Remote read faults in this mode are uncontended — the home's
//! copy is clean and nothing is in flight — which is the regime the
//! one-sided `FetchRead` fast path targets.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{
    DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, DsmTuning, HomePolicy, NodeId, Pm2Config,
    TransportTuning, WireStatsSnapshot,
};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimTime, SimTuning};

/// Configuration of a false-sharing run.
#[derive(Clone, Debug)]
pub struct FalseSharingConfig {
    /// Number of cluster nodes (one thread per node).
    pub nodes: usize,
    /// 8-byte counters owned by each node.
    pub slots_per_node: usize,
    /// Byte distance between consecutive counters (the "line" the layout
    /// avoids sharing). Must be a multiple of 8.
    pub stride: usize,
    /// Number of increment (or read) rounds, with a barrier after each.
    pub iterations: usize,
    /// Read-mostly mode: node 0 writes once, everyone else only reads.
    pub read_mostly: bool,
    /// Network profile.
    pub network: NetworkModel,
    /// DSM tuning knobs (granularity, one-sided reads, batching, sharding).
    pub tuning: DsmTuning,
    /// Simulation-engine tuning knobs.
    pub sim: SimTuning,
    /// Transport-layer tuning knobs.
    pub transport: TransportTuning,
}

impl FalseSharingConfig {
    /// A small configuration usable in tests: `nodes` nodes, 4 counters
    /// each, 64-byte stride, 8 rounds — all counters fit in one page, so
    /// every write round exhibits maximal false sharing at page granularity.
    pub fn small(nodes: usize) -> Self {
        FalseSharingConfig {
            nodes,
            slots_per_node: 4,
            stride: 64,
            iterations: 8,
            read_mostly: false,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        }
    }

    /// The same layout in read-mostly mode (the one-sided read regime).
    pub fn read_mostly(nodes: usize) -> Self {
        FalseSharingConfig {
            read_mostly: true,
            ..FalseSharingConfig::small(nodes)
        }
    }
}

/// Result of a false-sharing run.
#[derive(Clone, Debug)]
pub struct FalseSharingResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// Final value of every counter, in slot order — the exact final shared
    /// memory, compared bit-for-bit by the conformance matrix.
    pub final_slots: Vec<u64>,
    /// Sum of the final counters.
    pub checksum: u64,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
    /// Total messages put on the wire (after any batching).
    pub wire_messages: u64,
    /// Wire-level transport statistics, including the envelope/message byte
    /// accounting and the delivery-interceptor counters.
    pub wire: WireStatsSnapshot,
    /// Engine-level run report.
    pub engine: dsmpm2_sim::RunReport,
}

fn slot_addr(base: DsmAddr, stride: usize, slot: usize) -> DsmAddr {
    base.add((slot * stride) as u64)
}

/// Run the false-sharing kernel under `protocol_name`.
pub fn run_false_sharing(config: &FalseSharingConfig, protocol_name: &str) -> FalseSharingResult {
    assert!(config.nodes >= 1 && config.slots_per_node >= 1);
    assert!(
        config.stride >= 8 && config.stride.is_multiple_of(8),
        "stride must be a multiple of 8 bytes"
    );
    let cluster_config = Pm2Config::new(config.nodes, config.network.clone())
        .with_dsm_tuning(config.tuning)
        .with_sim_tuning(config.sim)
        .with_transport_tuning(config.transport);
    let engine = Engine::with_config(cluster_config.engine_config());
    let rt = DsmRuntime::new(&engine, cluster_config);
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let slots = config.nodes * config.slots_per_node;
    let bytes = (slots * config.stride) as u64;
    // A single fixed home concentrates the pages: every node's counters
    // share pages with other nodes' counters whenever they fit.
    let base = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Fixed(NodeId(0))));
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let final_slots = Arc::new(Mutex::new(vec![0u64; slots]));

    for node in 0..config.nodes {
        let finish = finish.clone();
        let final_slots = final_slots.clone();
        let config = config.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("false-sharing-{node}"), move |ctx| {
            let mine = node * config.slots_per_node..(node + 1) * config.slots_per_node;
            if config.read_mostly {
                // Node 0 publishes every counter once; the others only read.
                if node == 0 {
                    for slot in 0..slots {
                        ctx.write::<u64>(slot_addr(base, config.stride, slot), (slot + 1) as u64);
                    }
                }
                ctx.dsm_barrier(barrier);
                if node != 0 {
                    for _ in 0..config.iterations {
                        let mut sum = 0u64;
                        for slot in 0..slots {
                            sum += ctx.read::<u64>(slot_addr(base, config.stride, slot));
                        }
                        let expect = (slots * (slots + 1) / 2) as u64;
                        assert_eq!(sum, expect, "reader {node} saw a stale counter");
                    }
                }
                ctx.dsm_barrier(barrier);
            } else {
                // Zero own counters, then increment them every round. The
                // counters of different nodes share pages but never share a
                // stride-aligned line.
                for slot in mine.clone() {
                    ctx.write::<u64>(slot_addr(base, config.stride, slot), 0);
                }
                ctx.dsm_barrier(barrier);
                for _ in 0..config.iterations {
                    for slot in mine.clone() {
                        let addr = slot_addr(base, config.stride, slot);
                        let v = ctx.read::<u64>(addr);
                        ctx.write::<u64>(addr, v + 1);
                    }
                    ctx.dsm_barrier(barrier);
                }
            }

            // Each node reads back the counters it owns (its own in write
            // mode; node 0's published values are read back by node 0) and
            // publishes them to the host array outside any DSM access.
            let read_back = if config.read_mostly {
                if node == 0 {
                    0..slots
                } else {
                    0..0
                }
            } else {
                mine
            };
            let mut block = Vec::new();
            for slot in read_back.clone() {
                block.push(ctx.read::<u64>(slot_addr(base, config.stride, slot)));
            }
            final_slots.lock()[read_back].copy_from_slice(&block);
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    let report = engine.run().expect("false sharing must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let final_slots = std::mem::take(&mut *final_slots.lock());
    let checksum = final_slots.iter().sum();
    FalseSharingResult {
        elapsed,
        final_slots,
        checksum,
        stats: rt.stats().snapshot(),
        wire_messages: rt.cluster().network().stats().messages(),
        wire: rt.cluster().network().wire_stats(),
        engine: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_across_protocols() {
        let config = FalseSharingConfig::small(2);
        for proto in ["li_hudak", "li_hudak_fixed", "erc_sw", "hbrc_mw"] {
            let r = run_false_sharing(&config, proto);
            assert!(
                r.final_slots.iter().all(|&v| v == 8),
                "{proto}: {:?}",
                r.final_slots
            );
        }
    }

    #[test]
    fn line_granularity_eliminates_false_sharing_traffic() {
        let page = run_false_sharing(&FalseSharingConfig::small(2), "li_hudak_fixed");
        let mut line_cfg = FalseSharingConfig::small(2);
        line_cfg.tuning = line_cfg.tuning.with_granularity(64);
        let line = run_false_sharing(&line_cfg, "li_hudak_fixed");
        assert_eq!(page.final_slots, line.final_slots);
        assert!(
            line.wire.envelope_bytes * 2 <= page.wire.envelope_bytes,
            "line {} vs page {} bytes",
            line.wire.envelope_bytes,
            page.wire.envelope_bytes
        );
        assert!(line.elapsed < page.elapsed);
    }

    #[test]
    fn read_mostly_mode_observes_published_values() {
        let config = FalseSharingConfig::read_mostly(3);
        let r = run_false_sharing(&config, "li_hudak_fixed");
        let slots = config.nodes * config.slots_per_node;
        let expect: Vec<u64> = (1..=slots as u64).collect();
        assert_eq!(r.final_slots, expect);
    }

    #[test]
    fn one_sided_reads_serve_the_read_mostly_regime_without_handler_wakes() {
        let mut config = FalseSharingConfig::read_mostly(3);
        config.tuning = config.tuning.with_one_sided_reads();
        let r = run_false_sharing(&config, "li_hudak_fixed");
        let slots = config.nodes * config.slots_per_node;
        let expect: Vec<u64> = (1..=slots as u64).collect();
        assert_eq!(r.final_slots, expect);
        // Every uncontended remote read fault went one-sided: the home's
        // interceptor consumed the fetch at arrival instant, and the
        // fallback handler never ran.
        assert!(r.stats.one_sided_serves > 0);
        assert_eq!(r.stats.fetch_handler_wakes, 0, "{:?}", r.stats);
        assert!(
            r.stats.one_sided_serves * 10 >= r.stats.read_faults * 9,
            "one-sided {} of {} read faults",
            r.stats.one_sided_serves,
            r.stats.read_faults
        );
        assert_eq!(r.wire.hook_consumed, r.stats.one_sided_serves);
    }
}
