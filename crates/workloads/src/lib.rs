//! # dsmpm2-workloads — the applications of the DSM-PM2 evaluation
//!
//! * [`tsp`] — Travelling Salesman by branch and bound (the paper's Figure 4
//!   workload): one thread per node, a lock-protected shared bound.
//! * [`map_coloring`] — minimal-cost 4-colouring of the 29 eastern-most US
//!   states, written against the Hyperion object layer (Figure 5).
//! * [`jacobi`] — a barrier-synchronised 2-D stencil, representing the
//!   regular sharing patterns of the SPLASH-2 programs the paper lists as
//!   future evaluation targets.
//! * [`micro`] — the single-fault measurements behind Tables 3 and 4 and a
//!   few small shared-memory kernels.
//! * [`false_sharing`] — per-node counters packed into shared pages: the
//!   coherence-granularity ablation's workload (plus a read-mostly mode for
//!   the one-sided read fast path).
//!
//! The paper closes by announcing "a more thorough performance evaluation
//! using the SPLASH-2 benchmarks"; the following kernels reproduce the
//! sharing patterns of that suite so the protocols can be compared on them:
//!
//! * [`matmul`] — blocked dense matrix multiply (read-mostly, replicated
//!   operand);
//! * [`sor`] — red-black successive over-relaxation (halo sharing, barriers);
//! * [`lu`] — dense LU factorisation without pivoting (broadcast of the pivot
//!   row, barrier per step);
//! * [`radix`] — parallel radix sort (histogram / prefix-sum / scatter, heavy
//!   write sharing).
//!
//! Every workload is deterministic for a given seed and returns both its
//! application-level result (checked against sequential oracles in the test
//! suites) and the virtual completion time and DSM statistics used by the
//! benchmark harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod false_sharing;
pub mod jacobi;
pub mod lu;
pub mod map_coloring;
pub mod matmul;
pub mod micro;
pub mod radix;
pub mod sor;
pub mod tsp;

pub use false_sharing::{run_false_sharing, FalseSharingConfig, FalseSharingResult};
pub use jacobi::{run_jacobi, JacobiConfig, JacobiResult};
pub use lu::{run_lu, LuConfig, LuResult};
pub use map_coloring::{run_map_coloring, ColoringConfig, ColoringResult};
pub use matmul::{run_matmul, MatmulConfig, MatmulResult};
pub use micro::{measure_read_fault, run_shared_counter, FaultBreakdown, FaultPolicy};
pub use radix::{run_radix, RadixConfig, RadixResult};
pub use sor::{run_sor, SorConfig, SorResult};
pub use tsp::{run_tsp, TspConfig, TspInstance, TspResult};
