//! Parallel radix sort (the SPLASH-2 `radix` kernel shape): histogram,
//! prefix-sum, scatter — a workload whose scatter phase writes all over the
//! destination array and therefore stresses exactly the write-sharing
//! behaviour that distinguishes the DSM protocols.
//!
//! Keys are dealt block-wise to the nodes. Each pass over one digit has three
//! phases separated by barriers: (1) every node histograms its own block into
//! its own slice of a shared count array, (2) every node reads *all* the
//! histograms and computes, deterministically, the global starting offset of
//! each of its (digit, node) buckets, (3) every node scatters its keys into
//! the shared destination array. The scatter targets are disjoint, so the
//! sort is correct under any of the consistency protocols.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dsmpm2_core::{DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, HomePolicy, NodeId, Pm2Config};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimDuration, SimTime};

/// Number of buckets per radix pass (one byte per pass).
pub const RADIX: usize = 256;

/// Configuration of a radix-sort run.
#[derive(Clone, Debug)]
pub struct RadixConfig {
    /// Number of keys (must be a multiple of the node count).
    pub keys: usize,
    /// Largest key value generated (exclusive). Determines the number of
    /// 8-bit passes.
    pub max_key: u64,
    /// RNG seed for the input keys.
    pub seed: u64,
    /// Number of cluster nodes (one thread per node).
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per key per pass, in µs.
    pub compute_per_key_us: f64,
}

impl RadixConfig {
    /// A small configuration usable in tests.
    pub fn small(nodes: usize) -> Self {
        RadixConfig {
            keys: 128,
            max_key: 1 << 16,
            seed: 7,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_key_us: 0.05,
        }
    }

    /// Number of 8-bit passes needed to cover `max_key`.
    pub fn passes(&self) -> usize {
        let bits = 64 - (self.max_key - 1).leading_zeros() as usize;
        bits.div_ceil(8).max(1)
    }
}

/// Result of a radix-sort run.
#[derive(Clone, Debug)]
pub struct RadixResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// The sorted keys, as read back from shared memory by the worker nodes.
    pub sorted: Vec<u64>,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
}

/// The deterministic input keys for `config`.
pub fn input_keys(config: &RadixConfig) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..config.keys)
        .map(|_| rng.gen_range(0..config.max_key))
        .collect()
}

fn key_addr(base: DsmAddr, index: usize) -> DsmAddr {
    base.add((index * 8) as u64)
}

fn hist_addr(base: DsmAddr, node: usize, bucket: usize) -> DsmAddr {
    base.add(((node * RADIX + bucket) * 8) as u64)
}

/// Run the parallel radix sort under `protocol_name`.
pub fn run_radix(config: &RadixConfig, protocol_name: &str) -> RadixResult {
    assert!(config.keys.is_multiple_of(config.nodes) && config.keys > 0);
    let engine = Engine::new();
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::new(config.nodes, config.network.clone()),
    );
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let key_bytes = (config.keys * 8) as u64;
    let src = rt.dsm_malloc(key_bytes, DsmAttr::default().home(HomePolicy::Block));
    let dst = rt.dsm_malloc(key_bytes, DsmAttr::default().home(HomePolicy::Block));
    let hist = rt.dsm_malloc(
        (config.nodes * RADIX * 8) as u64,
        DsmAttr::default().home(HomePolicy::Block),
    );
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let collected = Arc::new(Mutex::new(vec![0u64; config.keys]));

    let keys_per_node = config.keys / config.nodes;
    let input = input_keys(config);
    for node in 0..config.nodes {
        let finish = finish.clone();
        let collected = collected.clone();
        let config = config.clone();
        let input = input.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("radix-{node}"), move |ctx| {
            let first = node * keys_per_node;
            let last = first + keys_per_node;
            // Deal the input keys into the shared source array.
            for (i, &key) in input.iter().enumerate().take(last).skip(first) {
                ctx.write::<u64>(key_addr(src, i), key);
            }
            ctx.dsm_barrier(barrier);

            let (mut from, mut to) = (src, dst);
            for pass in 0..config.passes() {
                let shift = (pass * 8) as u32;
                // Phase 1: histogram the local block into our slice.
                let mut local_hist = vec![0u64; RADIX];
                for i in first..last {
                    let key = ctx.read::<u64>(key_addr(from, i));
                    local_hist[((key >> shift) as usize) & (RADIX - 1)] += 1;
                }
                for (bucket, &count) in local_hist.iter().enumerate() {
                    ctx.write::<u64>(hist_addr(hist, node, bucket), count);
                }
                ctx.compute(SimDuration::from_micros_f64(
                    config.compute_per_key_us * keys_per_node as f64,
                ));
                ctx.dsm_barrier(barrier);

                // Phase 2: read every node's histogram and compute the global
                // starting offset of each of our buckets (bucket-major, then
                // node-major — the same deterministic rule on every node).
                let mut all = vec![0u64; config.nodes * RADIX];
                for n in 0..config.nodes {
                    for bucket in 0..RADIX {
                        all[n * RADIX + bucket] = ctx.read::<u64>(hist_addr(hist, n, bucket));
                    }
                }
                let mut offsets = vec![0u64; RADIX];
                let mut running = 0u64;
                for bucket in 0..RADIX {
                    for n in 0..config.nodes {
                        if n == node {
                            offsets[bucket] = running;
                        }
                        running += all[n * RADIX + bucket];
                    }
                }
                ctx.dsm_barrier(barrier);

                // Phase 3: scatter our keys to their destination slots.
                for i in first..last {
                    let key = ctx.read::<u64>(key_addr(from, i));
                    let bucket = ((key >> shift) as usize) & (RADIX - 1);
                    let slot = offsets[bucket];
                    offsets[bucket] += 1;
                    ctx.write::<u64>(key_addr(to, slot as usize), key);
                }
                ctx.compute(SimDuration::from_micros_f64(
                    config.compute_per_key_us * keys_per_node as f64,
                ));
                ctx.dsm_barrier(barrier);
                std::mem::swap(&mut from, &mut to);
            }

            // Collect the final (sorted) block this node is responsible for.
            for i in first..last {
                collected.lock()[i] = ctx.read::<u64>(key_addr(from, i));
            }
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    engine.run().expect("radix must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let sorted = collected.lock().clone();
    RadixResult {
        elapsed,
        sorted,
        stats: rt.stats().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_count_covers_the_key_range() {
        let mut config = RadixConfig::small(2);
        assert_eq!(config.passes(), 2);
        config.max_key = 1 << 8;
        assert_eq!(config.passes(), 1);
        config.max_key = 1 << 24;
        assert_eq!(config.passes(), 3);
    }

    #[test]
    fn input_keys_are_deterministic_per_seed() {
        let config = RadixConfig::small(2);
        assert_eq!(input_keys(&config), input_keys(&config));
        let other = RadixConfig {
            seed: 8,
            ..config.clone()
        };
        assert_ne!(input_keys(&config), input_keys(&other));
    }

    #[test]
    fn radix_sorts_correctly_under_sequential_consistency() {
        let config = RadixConfig::small(2);
        let mut oracle = input_keys(&config);
        oracle.sort_unstable();
        let result = run_radix(&config, "li_hudak");
        assert_eq!(result.sorted, oracle);
        assert!(result.elapsed > SimTime::ZERO);
    }

    #[test]
    fn radix_sorts_correctly_under_release_consistency() {
        let config = RadixConfig::small(2);
        let mut oracle = input_keys(&config);
        oracle.sort_unstable();
        for proto in ["hbrc_mw", "hlrc_notices"] {
            let result = run_radix(&config, proto);
            assert_eq!(result.sorted, oracle, "{proto} produced an unsorted array");
        }
    }
}
