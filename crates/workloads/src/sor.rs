//! Red-black successive over-relaxation (SOR): a barrier-heavy stencil with
//! nearest-neighbour sharing, in the style of the SPLASH-2 `ocean`/`sor`
//! kernels the paper lists as future evaluation targets.
//!
//! The grid is distributed block-wise by rows. Every iteration has two
//! half-sweeps (red cells, then black cells) separated by barriers, so only
//! the halo rows at block boundaries are ever shared between nodes — the
//! pattern release-consistency protocols are designed to exploit.

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{
    DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, DsmTuning, HomePolicy, NodeId, Pm2Config,
    TransportTuning, WireStatsSnapshot,
};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimDuration, SimTime, SimTuning};

/// Configuration of a red-black SOR run.
#[derive(Clone, Debug)]
pub struct SorConfig {
    /// Grid is `size x size` `f64` cells.
    pub size: usize,
    /// Number of red+black iterations.
    pub iterations: usize,
    /// Over-relaxation factor (0 < omega < 2).
    pub omega: f64,
    /// Number of cluster nodes (one thread per node).
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per updated cell, in µs.
    pub compute_per_cell_us: f64,
    /// DSM tuning knobs (page-table sharding, message batching).
    pub tuning: DsmTuning,
    /// Simulation-engine tuning knobs (scheduler baton hand-off).
    pub sim: SimTuning,
    /// Transport-layer tuning knobs (wire-level backend selection).
    pub transport: TransportTuning,
}

impl SorConfig {
    /// A small configuration usable in tests.
    pub fn small(nodes: usize) -> Self {
        SorConfig {
            size: 24,
            iterations: 3,
            omega: 1.25,
            nodes,
            network: dsmpm2_madeleine::profiles::sisci_sci(),
            compute_per_cell_us: 0.05,
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        }
    }
}

/// Result of a SOR run.
#[derive(Clone, Debug)]
pub struct SorResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// Sum of the final grid.
    pub checksum: f64,
    /// Bit patterns of every final grid cell in row-major order — the exact
    /// final shared memory, used by the cross-protocol conformance matrix.
    pub final_cells: Vec<u64>,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
    /// Total messages put on the wire (after any batching): the metric the
    /// batching ablation compares.
    pub wire_messages: u64,
    /// Wire-level transport statistics (NIC stalls, drops, retransmits):
    /// what the transport ablation compares across backends.
    pub wire: WireStatsSnapshot,
    /// Engine-level run report (events processed, context switches,
    /// parallel scheduler rounds): what the `engine_scaling` bench reads.
    pub engine: dsmpm2_sim::RunReport,
}

fn initial(size: usize, row: usize, col: usize) -> f64 {
    if row == 0 || row == size - 1 || col == 0 || col == size - 1 {
        100.0
    } else {
        0.0
    }
}

/// Sequential oracle: run the same red-black sweeps without any DSM and
/// return the grid checksum.
pub fn sequential_checksum(config: &SorConfig) -> f64 {
    let size = config.size;
    let mut grid = vec![0.0f64; size * size];
    for row in 0..size {
        for col in 0..size {
            grid[row * size + col] = initial(size, row, col);
        }
    }
    for _ in 0..config.iterations {
        for colour in 0..2usize {
            for row in 1..size - 1 {
                for col in 1..size - 1 {
                    if (row + col) % 2 != colour {
                        continue;
                    }
                    let neighbours = grid[(row - 1) * size + col]
                        + grid[(row + 1) * size + col]
                        + grid[row * size + col - 1]
                        + grid[row * size + col + 1];
                    let old = grid[row * size + col];
                    grid[row * size + col] = old + config.omega * (neighbours / 4.0 - old);
                }
            }
        }
    }
    grid.iter().sum()
}

fn cell(base: DsmAddr, size: usize, row: usize, col: usize) -> DsmAddr {
    base.add(((row * size + col) * 8) as u64)
}

/// Run red-black SOR under `protocol_name` (any registered built-in or
/// extension protocol).
pub fn run_sor(config: &SorConfig, protocol_name: &str) -> SorResult {
    assert!(config.size >= 4 && config.size.is_multiple_of(config.nodes));
    let cluster_config = Pm2Config::new(config.nodes, config.network.clone())
        .with_dsm_tuning(config.tuning)
        .with_sim_tuning(config.sim)
        .with_transport_tuning(config.transport);
    let engine = Engine::with_config(cluster_config.engine_config());
    let rt = DsmRuntime::new(&engine, cluster_config);
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let bytes = (config.size * config.size * 8) as u64;
    let grid = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::Block));
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let checksum = Arc::new(Mutex::new(0.0f64));
    let final_cells = Arc::new(Mutex::new(vec![0u64; config.size * config.size]));

    let rows_per_node = config.size / config.nodes;
    for node in 0..config.nodes {
        let finish = finish.clone();
        let checksum = checksum.clone();
        let final_cells = final_cells.clone();
        let config = config.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("sor-{node}"), move |ctx| {
            let size = config.size;
            let first = node * rows_per_node;
            let last = first + rows_per_node;
            for row in first..last {
                for col in 0..size {
                    ctx.write::<f64>(cell(grid, size, row, col), initial(size, row, col));
                }
            }
            ctx.dsm_barrier(barrier);

            for _iter in 0..config.iterations {
                for colour in 0..2usize {
                    let mut updated = 0u64;
                    for row in first.max(1)..last.min(size - 1) {
                        for col in 1..size - 1 {
                            if (row + col) % 2 != colour {
                                continue;
                            }
                            let neighbours = ctx.read::<f64>(cell(grid, size, row - 1, col))
                                + ctx.read::<f64>(cell(grid, size, row + 1, col))
                                + ctx.read::<f64>(cell(grid, size, row, col - 1))
                                + ctx.read::<f64>(cell(grid, size, row, col + 1));
                            let old = ctx.read::<f64>(cell(grid, size, row, col));
                            ctx.write::<f64>(
                                cell(grid, size, row, col),
                                old + config.omega * (neighbours / 4.0 - old),
                            );
                            updated += 1;
                        }
                    }
                    ctx.compute(SimDuration::from_micros_f64(
                        config.compute_per_cell_us * updated as f64,
                    ));
                    ctx.dsm_barrier(barrier);
                }
            }

            let mut local = 0.0;
            let mut block = Vec::with_capacity((last - first) * size);
            for row in first..last {
                for col in 0..size {
                    let v = ctx.read::<f64>(cell(grid, size, row, col));
                    block.push(v.to_bits());
                    local += v;
                }
            }
            final_cells.lock()[first * size..last * size].copy_from_slice(&block);
            *checksum.lock() += local;
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    let report = engine.run().expect("sor must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let checksum = *checksum.lock();
    let final_cells = std::mem::take(&mut *final_cells.lock());
    SorResult {
        elapsed,
        checksum,
        final_cells,
        stats: rt.stats().snapshot(),
        wire_messages: rt.cluster().network().stats().messages(),
        wire: rt.cluster().network().wire_stats(),
        engine: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sor_read_copies_granted_during_release_are_tracked() {
        // Regression: with 4 nodes and a 2-page grid, a read copy granted
        // while the owner's release-time invalidation was in flight used to
        // be wiped from the copyset bookkeeping, leaving the reader with a
        // permanently stale boundary row under erc_sw.
        let config = SorConfig {
            size: 32,
            iterations: 4,
            omega: 1.25,
            nodes: 4,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_cell_us: 0.05,
            tuning: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        };
        let oracle = sequential_checksum(&config);
        for proto in ["erc_sw", "hbrc_mw"] {
            let result = run_sor(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
        }
    }

    #[test]
    fn sequential_oracle_heats_the_interior() {
        let config = SorConfig::small(2);
        let boundary_only: f64 = (0..config.size)
            .flat_map(|r| (0..config.size).map(move |c| (r, c)))
            .map(|(r, c)| initial(config.size, r, c))
            .sum();
        assert!(sequential_checksum(&config) > boundary_only);
    }

    #[test]
    fn sor_matches_the_sequential_oracle_across_protocols() {
        let config = SorConfig::small(2);
        let oracle = sequential_checksum(&config);
        for proto in ["li_hudak", "erc_sw", "hbrc_mw", "hlrc_notices"] {
            let result = run_sor(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
        }
    }

    #[test]
    fn sor_shares_only_halo_rows() {
        let config = SorConfig::small(2);
        let result = run_sor(&config, "hbrc_mw");
        // Sharing exists (halo rows cross the block boundary) but the bulk of
        // the accesses are local.
        assert!(result.stats.page_transfers + result.stats.diffs_sent > 0);
        assert!(result.stats.local_accesses > result.stats.total_faults() * 10);
    }
}
