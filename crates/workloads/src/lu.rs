//! Dense LU factorisation without pivoting (the SPLASH-2 `lu` kernel shape).
//!
//! The matrix is factored in place: at step `k` every node updates its own
//! rows below `k` using row `k`, which is owned by one node and *read by all
//! the others* — a broadcast-like sharing pattern with a barrier per step.
//! The input is made strictly diagonally dominant so the factorisation is
//! numerically stable without pivoting, which keeps the kernel faithful to
//! the SPLASH-2 version (which also factors without pivoting).

use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_core::{DsmAddr, DsmAttr, DsmRuntime, DsmStatsSnapshot, HomePolicy, NodeId, Pm2Config};
use dsmpm2_madeleine::NetworkModel;
use dsmpm2_pm2::Engine;
use dsmpm2_protocols::register_all_protocols;
use dsmpm2_sim::{SimDuration, SimTime};

/// Configuration of an LU factorisation run.
#[derive(Clone, Debug)]
pub struct LuConfig {
    /// The matrix is `n x n` `f64`.
    pub n: usize,
    /// Number of cluster nodes (one thread per node, rows dealt round-robin).
    pub nodes: usize,
    /// Network profile.
    pub network: NetworkModel,
    /// Virtual compute time charged per updated element, in µs.
    pub compute_per_update_us: f64,
}

impl LuConfig {
    /// A small configuration usable in tests.
    pub fn small(nodes: usize) -> Self {
        LuConfig {
            n: 16,
            nodes,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_update_us: 0.02,
        }
    }
}

/// Result of an LU run.
#[derive(Clone, Debug)]
pub struct LuResult {
    /// Virtual completion time.
    pub elapsed: SimTime,
    /// Sum of the entries of the packed LU factors.
    pub checksum: f64,
    /// DSM statistics.
    pub stats: DsmStatsSnapshot,
}

/// Deterministic, strictly diagonally dominant input matrix.
pub fn input_entry(n: usize, row: usize, col: usize) -> f64 {
    if row == col {
        (2 * n) as f64 + 1.0
    } else {
        (((row * 31 + col * 17) % 11) as f64 - 5.0) / 3.0
    }
}

/// Sequential oracle: the checksum of the packed LU factors computed without
/// any DSM.
pub fn sequential_checksum(n: usize) -> f64 {
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = input_entry(n, i, j);
        }
    }
    for k in 0..n {
        for i in (k + 1)..n {
            a[i * n + k] /= a[k * n + k];
            for j in (k + 1)..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a.iter().sum()
}

fn cell(base: DsmAddr, n: usize, row: usize, col: usize) -> DsmAddr {
    base.add(((row * n + col) * 8) as u64)
}

/// Which node owns (and updates) `row` under the round-robin row
/// distribution.
pub fn row_owner(row: usize, nodes: usize) -> usize {
    row % nodes
}

/// Run the LU factorisation under `protocol_name`.
pub fn run_lu(config: &LuConfig, protocol_name: &str) -> LuResult {
    assert!(config.n >= config.nodes);
    let engine = Engine::new();
    let rt = DsmRuntime::new(
        &engine,
        Pm2Config::new(config.nodes, config.network.clone()),
    );
    let _ = register_all_protocols(&rt);
    let protocol = rt
        .protocol_by_name(protocol_name)
        .unwrap_or_else(|| panic!("unknown protocol {protocol_name}"));
    rt.set_default_protocol(protocol);

    let bytes = (config.n * config.n * 8) as u64;
    let a = rt.dsm_malloc(bytes, DsmAttr::default().home(HomePolicy::RoundRobin));
    let barrier = rt.create_barrier(config.nodes, None);
    let finish = Arc::new(Mutex::new(Vec::new()));
    let checksum = Arc::new(Mutex::new(0.0f64));

    for node in 0..config.nodes {
        let finish = finish.clone();
        let checksum = checksum.clone();
        let config = config.clone();
        rt.spawn_dsm_thread(NodeId(node), format!("lu-{node}"), move |ctx| {
            let n = config.n;
            // Initialise the rows this node owns.
            for row in (0..n).filter(|&r| row_owner(r, config.nodes) == node) {
                for col in 0..n {
                    ctx.write::<f64>(cell(a, n, row, col), input_entry(n, row, col));
                }
            }
            ctx.dsm_barrier(barrier);

            for k in 0..n {
                // Read the pivot row (owned by one node, read by all).
                let pivot = ctx.read::<f64>(cell(a, n, k, k));
                let mut updates = 0u64;
                for row in ((k + 1)..n).filter(|&r| row_owner(r, config.nodes) == node) {
                    let factor = ctx.read::<f64>(cell(a, n, row, k)) / pivot;
                    ctx.write::<f64>(cell(a, n, row, k), factor);
                    for col in (k + 1)..n {
                        let above = ctx.read::<f64>(cell(a, n, k, col));
                        let cur = ctx.read::<f64>(cell(a, n, row, col));
                        ctx.write::<f64>(cell(a, n, row, col), cur - factor * above);
                        updates += 1;
                    }
                }
                ctx.compute(SimDuration::from_micros_f64(
                    config.compute_per_update_us * updates as f64,
                ));
                ctx.dsm_barrier(barrier);
            }

            let mut local = 0.0;
            for row in (0..n).filter(|&r| row_owner(r, config.nodes) == node) {
                for col in 0..n {
                    local += ctx.read::<f64>(cell(a, n, row, col));
                }
            }
            *checksum.lock() += local;
            finish.lock().push(ctx.pm2.now());
        });
    }

    let mut engine = engine;
    engine.run().expect("lu must not deadlock");
    let elapsed = finish.lock().iter().copied().max().unwrap_or(SimTime::ZERO);
    let checksum = *checksum.lock();
    LuResult {
        elapsed,
        checksum,
        stats: rt.stats().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_concurrent_write_faults_on_shared_pages_complete() {
        // Regression: with 3+ nodes and a matrix spanning multiple pages,
        // rows interleave across nodes within each page and every step
        // produces concurrent write faults on the same pages. The original
        // request routing parked requests at arbitrary fetching nodes and
        // let late invalidations rewind ownership hints, which deadlocked
        // the single-writer protocols (li_hudak, li_hudak_fixed, erc_sw)
        // here. Ownership acquisition is now serialized by the page's home
        // manager.
        let config = LuConfig {
            n: 24,
            nodes: 4,
            network: dsmpm2_madeleine::profiles::bip_myrinet(),
            compute_per_update_us: 0.02,
        };
        let oracle = sequential_checksum(config.n);
        for proto in ["li_hudak", "li_hudak_fixed", "erc_sw"] {
            let result = run_lu(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
        }
    }

    #[test]
    fn oracle_factors_a_diagonally_dominant_matrix() {
        let n = 8;
        // The factorisation must leave finite values everywhere.
        let sum = sequential_checksum(n);
        assert!(sum.is_finite());
        // Reconstruct A from L and U and compare against the input.
        let mut lu = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                lu[i * n + j] = input_entry(n, i, j);
            }
        }
        for k in 0..n {
            for i in (k + 1)..n {
                lu[i * n + k] /= lu[k * n + k];
                for j in (k + 1)..n {
                    lu[i * n + j] -= lu[i * n + k] * lu[k * n + j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i {
                        1.0
                    } else if k < i {
                        lu[i * n + k]
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[k * n + j] } else { 0.0 };
                    acc += l * u;
                }
                assert!(
                    (acc - input_entry(n, i, j)).abs() < 1e-9,
                    "L*U must reconstruct A at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn lu_matches_the_sequential_oracle_across_protocols() {
        let config = LuConfig::small(2);
        let oracle = sequential_checksum(config.n);
        for proto in ["li_hudak", "li_hudak_fixed", "hbrc_mw"] {
            let result = run_lu(&config, proto);
            assert!(
                (result.checksum - oracle).abs() < 1e-6,
                "{proto}: {} != oracle {}",
                result.checksum,
                oracle
            );
        }
    }

    #[test]
    fn row_ownership_is_round_robin() {
        assert_eq!(row_owner(0, 4), 0);
        assert_eq!(row_owner(5, 4), 1);
        assert_eq!(row_owner(7, 2), 1);
    }
}
