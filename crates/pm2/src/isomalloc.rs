//! Iso-address allocation.
//!
//! PM2's `isomalloc` guarantees that the virtual address range allocated by a
//! thread on one node is left free on every other node, so a migrated thread
//! finds its stack and private data at the same addresses and all pointers
//! stay valid. In the simulation there is a single cluster-wide virtual
//! address space managed by this allocator, so the iso-address property holds
//! by construction; what the allocator adds is (a) page-aligned, disjoint
//! ranges, (b) the distinction between *shared* (DSM) and *node-private*
//! regions, and (c) bookkeeping used by tests and the monitoring report.

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;

/// Base of the shared (DSM) iso-address region.
pub const ISO_SHARED_BASE: u64 = 0x0000_1000_0000_0000;
/// Base of the node-private iso-address regions.
pub const ISO_PRIVATE_BASE: u64 = 0x0000_2000_0000_0000;
/// Size of each node's private iso-address slot.
pub const ISO_PRIVATE_SLOT: u64 = 0x0000_0001_0000_0000;

/// A range of iso-addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IsoRange {
    /// First address of the range.
    pub start: u64,
    /// Length in bytes (always a multiple of the requested alignment).
    pub len: u64,
}

impl IsoRange {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True if `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// True if the two ranges share at least one address.
    pub fn overlaps(&self, other: &IsoRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Kind of allocation, used in the allocation log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsoKind {
    /// DSM-shared data (visible from every node).
    Shared,
    /// Node-private data attached to a thread (migrates with it).
    Private(NodeId),
}

#[derive(Debug)]
struct Inner {
    next_shared: u64,
    next_private: Vec<u64>,
    log: Vec<(IsoRange, IsoKind)>,
}

/// The cluster-wide iso-address allocator.
#[derive(Debug)]
pub struct IsoAllocator {
    inner: Mutex<Inner>,
}

impl IsoAllocator {
    /// Create an allocator for a cluster of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        IsoAllocator {
            inner: Mutex::new(Inner {
                next_shared: ISO_SHARED_BASE,
                next_private: (0..num_nodes)
                    .map(|i| ISO_PRIVATE_BASE + i as u64 * ISO_PRIVATE_SLOT)
                    .collect(),
                log: Vec::new(),
            }),
        }
    }

    fn align_up(value: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        (value + align - 1) & !(align - 1)
    }

    /// Allocate `bytes` of DSM-shared iso-address space, aligned to `align`
    /// (which must be a power of two).
    pub fn alloc_shared(&self, bytes: u64, align: u64) -> IsoRange {
        assert!(bytes > 0, "cannot allocate zero bytes");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut inner = self.inner.lock();
        let start = Self::align_up(inner.next_shared, align);
        let len = Self::align_up(bytes, align);
        inner.next_shared = start + len;
        let range = IsoRange { start, len };
        inner.log.push((range, IsoKind::Shared));
        range
    }

    /// Allocate `bytes` of node-private iso-address space on `node`.
    pub fn alloc_private(&self, node: NodeId, bytes: u64, align: u64) -> IsoRange {
        assert!(bytes > 0, "cannot allocate zero bytes");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut inner = self.inner.lock();
        let slot_base = ISO_PRIVATE_BASE + node.index() as u64 * ISO_PRIVATE_SLOT;
        let slot_end = slot_base + ISO_PRIVATE_SLOT;
        let cursor = inner.next_private[node.index()];
        let start = Self::align_up(cursor, align);
        let len = Self::align_up(bytes, align);
        assert!(
            start + len <= slot_end,
            "node {node} exhausted its private iso-address slot"
        );
        inner.next_private[node.index()] = start + len;
        let range = IsoRange { start, len };
        inner.log.push((range, IsoKind::Private(node)));
        range
    }

    /// Number of allocations performed so far.
    pub fn allocation_count(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Total bytes handed out so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.lock().log.iter().map(|(r, _)| r.len).sum()
    }

    /// The full allocation log (used by tests and the monitoring report).
    pub fn allocations(&self) -> Vec<(IsoRange, IsoKind)> {
        self.inner.lock().log.clone()
    }

    /// Verify the iso-address invariant: no two live allocations overlap.
    pub fn check_disjoint(&self) -> bool {
        let log = self.inner.lock();
        for (i, (a, _)) in log.log.iter().enumerate() {
            for (b, _) in log.log.iter().skip(i + 1) {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shared_allocations_are_disjoint_and_aligned() {
        let a = IsoAllocator::new(2);
        let r1 = a.alloc_shared(4096, 4096);
        let r2 = a.alloc_shared(100, 4096);
        let r3 = a.alloc_shared(8192, 4096);
        assert_eq!(r1.start % 4096, 0);
        assert_eq!(r2.start % 4096, 0);
        assert_eq!(r2.len, 4096); // rounded up to alignment
        assert!(!r1.overlaps(&r2));
        assert!(!r2.overlaps(&r3));
        assert!(a.check_disjoint());
    }

    #[test]
    fn private_allocations_live_in_their_node_slot() {
        let a = IsoAllocator::new(3);
        let r0 = a.alloc_private(NodeId(0), 1024, 8);
        let r2 = a.alloc_private(NodeId(2), 1024, 8);
        assert!(r0.start >= ISO_PRIVATE_BASE && r0.end() <= ISO_PRIVATE_BASE + ISO_PRIVATE_SLOT);
        assert!(r2.start >= ISO_PRIVATE_BASE + 2 * ISO_PRIVATE_SLOT);
        assert!(!r0.overlaps(&r2));
    }

    #[test]
    fn shared_and_private_regions_never_collide() {
        let a = IsoAllocator::new(2);
        let s = a.alloc_shared(1 << 20, 4096);
        let p = a.alloc_private(NodeId(1), 1 << 20, 4096);
        assert!(!s.overlaps(&p));
        assert!(a.check_disjoint());
    }

    #[test]
    fn bookkeeping_counts_allocations() {
        let a = IsoAllocator::new(1);
        a.alloc_shared(10, 8);
        a.alloc_private(NodeId(0), 10, 8);
        assert_eq!(a.allocation_count(), 2);
        assert_eq!(a.allocated_bytes(), 32); // two 16-byte aligned blocks
        assert_eq!(a.allocations().len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_sized_allocation_is_rejected() {
        IsoAllocator::new(1).alloc_shared(0, 8);
    }

    #[test]
    fn range_contains_and_end() {
        let r = IsoRange {
            start: 100,
            len: 50,
        };
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert_eq!(r.end(), 150);
    }

    proptest! {
        /// Property: any interleaving of shared and private allocations keeps
        /// all ranges pairwise disjoint (the iso-address invariant).
        #[test]
        fn prop_all_allocations_disjoint(ops in proptest::collection::vec((0usize..3, 1u64..10_000, 0u32..4), 1..60)) {
            let alloc = IsoAllocator::new(3);
            for (kind, bytes, align_pow) in ops {
                let align = 1u64 << (3 + align_pow);
                if kind == 0 {
                    alloc.alloc_shared(bytes, align);
                } else {
                    alloc.alloc_private(NodeId(kind - 1), bytes, align);
                }
            }
            prop_assert!(alloc.check_disjoint());
        }

        /// Property: allocations are aligned as requested.
        #[test]
        fn prop_alignment_respected(bytes in 1u64..100_000, align_pow in 0u32..12) {
            let align = 1u64 << align_pow;
            let alloc = IsoAllocator::new(1);
            let r = alloc.alloc_shared(bytes, align);
            prop_assert_eq!(r.start % align, 0);
            prop_assert!(r.len >= bytes);
        }
    }
}
