//! The simulated PM2 cluster: nodes, per-node RPC dispatchers, service
//! registry, and the blocking/one-way RPC primitives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dsmpm2_madeleine::{Envelope, Network, NodeId, Topology};
use dsmpm2_sim::{
    BlockReason, Engine, EngineCtl, SimDuration, SimHandle, SimReceiver, SimTime, SpawnOptions,
};

use crate::config::{Pm2Config, Pm2Costs};
use crate::context::{Pm2Context, Pm2ThreadState};
use crate::isomalloc::IsoAllocator;
use crate::monitor::Monitor;
use crate::rpc::{
    ReplyTable, RpcClass, RpcMessage, RpcPayload, RpcReply, RpcRequestCtx, RpcService,
};

struct ClusterInner {
    config: Pm2Config,
    topology: Topology,
    network: Network<RpcMessage>,
    services: RwLock<HashMap<String, Arc<dyn RpcService>>>,
    replies: ReplyTable,
    next_rpc_id: AtomicU64,
    next_thread_seq: AtomicU64,
    monitor: Monitor,
    iso: IsoAllocator,
    ctl: EngineCtl,
    app_threads: Mutex<Vec<Arc<Pm2ThreadState>>>,
    /// Virtual time at which each node's (single) CPU becomes free again.
    /// Models the 450 MHz uniprocessor nodes of the paper's testbed: compute
    /// submitted through `Pm2Context::compute_shared` serializes per node.
    cpu_free: Vec<Mutex<SimTime>>,
}

/// Handle on a simulated PM2 cluster. Cheap to clone; all clones refer to the
/// same cluster.
pub struct Pm2Cluster {
    inner: Arc<ClusterInner>,
}

impl Clone for Pm2Cluster {
    fn clone(&self) -> Self {
        Pm2Cluster {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Pm2Cluster {
    /// Boot a cluster on `engine`: builds the network and starts one RPC
    /// dispatcher daemon per node.
    pub fn new(engine: &Engine, config: Pm2Config) -> Self {
        let topology = Topology::flat(config.num_nodes);
        let network = Network::with_transport(
            engine.ctl(),
            config.network.clone(),
            topology.clone(),
            config.transport,
        );
        let iso = IsoAllocator::new(config.num_nodes);
        let cluster = Pm2Cluster {
            inner: Arc::new(ClusterInner {
                topology: topology.clone(),
                network: network.clone(),
                services: RwLock::new(HashMap::new()),
                replies: ReplyTable::new(),
                next_rpc_id: AtomicU64::new(1),
                next_thread_seq: AtomicU64::new(0),
                monitor: Monitor::new(),
                iso,
                ctl: engine.ctl(),
                app_threads: Mutex::new(Vec::new()),
                cpu_free: (0..config.num_nodes)
                    .map(|_| Mutex::new(SimTime::ZERO))
                    .collect(),
                config,
            }),
        };
        for node in topology.nodes() {
            let c = cluster.clone();
            let rx = network.endpoint(node);
            // The dispatcher is bound to its node's shard: handler threads it
            // spawns inherit the shard, so all of a node's activity stays on
            // one scheduler worker.
            engine.spawn_daemon_on(
                node.index() as u64,
                format!("pm2-dispatch-{node}"),
                move |h| {
                    c.dispatcher_loop(h, node, rx);
                },
            );
        }
        cluster
    }

    /// Cluster configuration.
    pub fn config(&self) -> &Pm2Config {
        &self.inner.config
    }

    /// PM2 software cost constants.
    pub fn costs(&self) -> &Pm2Costs {
        &self.inner.config.costs
    }

    /// Cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.topology.num_nodes
    }

    /// The underlying network (model, statistics, raw sends).
    pub fn network(&self) -> &Network<RpcMessage> {
        &self.inner.network
    }

    /// The monitoring sink shared by every layer of this cluster.
    pub fn monitor(&self) -> &Monitor {
        &self.inner.monitor
    }

    /// The iso-address allocator.
    pub fn isomalloc(&self) -> &IsoAllocator {
        &self.inner.iso
    }

    /// Engine controller, for layers that need to schedule wake-ups.
    pub fn ctl(&self) -> EngineCtl {
        self.inner.ctl.clone()
    }

    /// Register a service under its name on every node. Registering the same
    /// name twice replaces the previous handler (useful in tests).
    pub fn register_service(&self, service: Arc<dyn RpcService>) {
        self.inner
            .services
            .write()
            .insert(service.name().to_string(), service);
    }

    fn service(&self, name: &str) -> Arc<dyn RpcService> {
        self.inner
            .services
            .read()
            .get(name)
            .cloned()
            .unwrap_or_else(|| panic!("RPC to unregistered service '{name}'"))
    }

    fn message_delay(&self, from: NodeId, to: NodeId, class: RpcClass) -> SimDuration {
        let model = self.inner.network.model();
        if from == to {
            return SimDuration::from_micros_f64(model.rpc_min_latency_us / 2.0);
        }
        match class {
            RpcClass::Minimal => SimDuration::from_micros_f64(model.rpc_min_latency_us / 2.0),
            RpcClass::Control => model.control_time(),
            RpcClass::Data(bytes) => model.message_time(bytes),
        }
    }

    /// Blocking RPC: send `payload` to `service` on node `to` and wait for the
    /// reply (in virtual time). `from` is the calling thread's current node.
    pub fn rpc_call(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        service: &str,
        payload: RpcPayload,
        class: RpcClass,
    ) -> RpcPayload {
        let start = sim.now();
        let id = self.inner.next_rpc_id.fetch_add(1, Ordering::SeqCst);
        self.inner.replies.register(id, sim.id());
        let delay = self.message_delay(from, to, class);
        self.inner.network.send_with_delay(
            sim,
            from,
            to,
            RpcMessage::Request {
                id,
                service: service.to_string(),
                needs_reply: true,
                payload,
            },
            class.accounted_bytes(),
            delay,
        );
        loop {
            if let Some(reply) = self.inner.replies.take(id) {
                self.inner
                    .monitor
                    .record(&format!("rpc_call:{service}"), sim.now().since(start));
                return reply;
            }
            sim.park_with(BlockReason::Rpc);
        }
    }

    /// Build the wire message and base delivery delay shared by the one-way
    /// RPC flavours, and count the send in the monitor.
    fn oneway_parts(
        &self,
        from: NodeId,
        to: NodeId,
        service: &str,
        payload: RpcPayload,
        class: RpcClass,
    ) -> (RpcMessage, SimDuration) {
        let id = self.inner.next_rpc_id.fetch_add(1, Ordering::SeqCst);
        self.inner.monitor.incr(&format!("rpc_oneway:{service}"));
        (
            RpcMessage::Request {
                id,
                service: service.to_string(),
                needs_reply: false,
                payload,
            },
            self.message_delay(from, to, class),
        )
    }

    /// One-way RPC: send `payload` to `service` on node `to` without waiting.
    pub fn rpc_oneway(
        &self,
        sim: &mut SimHandle,
        from: NodeId,
        to: NodeId,
        service: &str,
        payload: RpcPayload,
        class: RpcClass,
    ) {
        let (msg, delay) = self.oneway_parts(from, to, service, payload, class);
        self.inner
            .network
            .send_with_delay(sim, from, to, msg, class.accounted_bytes(), delay);
    }

    /// One-way RPC issued from a scheduler callback rather than a simulated
    /// thread (the DSM message batcher flushes its per-tick outbox this way).
    /// Semantics match [`Pm2Cluster::rpc_oneway`], timed from the global
    /// clock but never departing before `not_before` — the logical send time
    /// of a parked message, which may lie ahead of the global clock when the
    /// sending thread carried uncommitted local compute. `messages` is the
    /// number of logical messages the envelope carries (a batched coherence
    /// envelope carries several), fed to the wire-level accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn rpc_oneway_from_ctl(
        &self,
        ctl: &EngineCtl,
        from: NodeId,
        to: NodeId,
        service: &str,
        payload: RpcPayload,
        class: RpcClass,
        messages: u32,
        not_before: SimTime,
    ) {
        let (msg, mut delay) = self.oneway_parts(from, to, service, payload, class);
        let now = ctl.now();
        if not_before > now {
            delay += not_before - now;
        }
        self.inner.network.send_with_delay_from_ctl(
            ctl,
            from,
            to,
            msg,
            class.accounted_bytes(),
            messages,
            delay,
        );
    }

    fn dispatcher_loop(
        &self,
        sim: &mut SimHandle,
        node: NodeId,
        rx: SimReceiver<Envelope<RpcMessage>>,
    ) {
        loop {
            let envelope = rx.recv(sim);
            sim.charge(self.costs().rpc_dispatch());
            match envelope.msg {
                RpcMessage::Request {
                    id,
                    service,
                    needs_reply,
                    payload,
                } => {
                    let svc = self.service(&service);
                    let from = envelope.from;
                    if svc.spawn_thread() {
                        sim.charge(self.costs().thread_create());
                        let cluster = self.clone();
                        let seq = self.inner.next_thread_seq.fetch_add(1, Ordering::SeqCst);
                        sim.spawn(format!("rpc-{service}@{node}#{seq}"), move |handler_sim| {
                            cluster.run_handler(
                                handler_sim,
                                svc,
                                node,
                                from,
                                id,
                                needs_reply,
                                payload,
                            );
                        });
                    } else {
                        self.run_handler(sim, svc, node, from, id, needs_reply, payload);
                    }
                }
                RpcMessage::Reply { id, payload } => {
                    if let Some(waiter) = self.inner.replies.fulfill(id, payload) {
                        sim.wake(waiter, SimDuration::ZERO);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_handler(
        &self,
        sim: &mut SimHandle,
        svc: Arc<dyn RpcService>,
        local_node: NodeId,
        from_node: NodeId,
        id: u64,
        needs_reply: bool,
        payload: RpcPayload,
    ) {
        let start = sim.now();
        let reply = {
            let mut ctx = RpcRequestCtx {
                sim,
                cluster: self.clone(),
                local_node,
                from_node,
            };
            svc.handle(&mut ctx, payload)
        };
        self.inner.monitor.record(
            &format!("rpc_handler:{}", svc.name()),
            sim.now().since(start),
        );
        if needs_reply {
            let reply = reply.unwrap_or_else(|| {
                panic!(
                    "service '{}' did not produce a reply for a blocking call",
                    svc.name()
                )
            });
            self.send_reply(sim, local_node, from_node, id, reply);
        }
    }

    fn send_reply(&self, sim: &mut SimHandle, from: NodeId, to: NodeId, id: u64, reply: RpcReply) {
        let delay = self.message_delay(from, to, reply.class);
        self.inner.network.send_with_delay(
            sim,
            from,
            to,
            RpcMessage::Reply {
                id,
                payload: reply.payload,
            },
            reply.class.accounted_bytes(),
            delay,
        );
    }

    /// Send the reply to request `id` from a scheduler callback rather than
    /// a handler thread. This is the one-sided service path: a delivery
    /// interceptor that served a request at its arrival instant answers the
    /// blocked caller without any thread having run on the serving node.
    pub fn send_reply_from_ctl(
        &self,
        ctl: &EngineCtl,
        from: NodeId,
        to: NodeId,
        id: u64,
        reply: RpcReply,
    ) {
        let delay = self.message_delay(from, to, reply.class);
        self.inner.network.send_with_delay_from_ctl(
            ctl,
            from,
            to,
            RpcMessage::Reply {
                id,
                payload: reply.payload,
            },
            reply.class.accounted_bytes(),
            1,
            delay,
        );
    }

    /// Spawn an application thread on `node`. The closure receives a
    /// [`Pm2Context`] giving access to the cluster, the thread's current
    /// location, migration, and the virtual clock.
    pub fn spawn_thread_on<F>(
        &self,
        node: NodeId,
        name: impl Into<String>,
        f: F,
    ) -> Arc<Pm2ThreadState>
    where
        F: FnOnce(&mut Pm2Context<'_>) + Send + 'static,
    {
        self.spawn_thread_on_with(node, name, SpawnOptions::default(), f)
    }

    /// [`Pm2Cluster::spawn_thread_on`] with explicit scheduler
    /// [`SpawnOptions`]: workloads whose thread bodies cannot run on a
    /// fixed-size continuation stack (deep recursion) force the OS-thread
    /// baton or a bigger private stack for exactly those threads, while the
    /// rest of the simulation stays on continuations.
    pub fn spawn_thread_on_with<F>(
        &self,
        node: NodeId,
        name: impl Into<String>,
        opts: SpawnOptions,
        f: F,
    ) -> Arc<Pm2ThreadState>
    where
        F: FnOnce(&mut Pm2Context<'_>) + Send + 'static,
    {
        assert!(
            self.inner.topology.contains(node),
            "cannot spawn a thread on unknown node {node}"
        );
        let name = name.into();
        let state = Arc::new(Pm2ThreadState::new(
            name.clone(),
            node,
            self.costs().default_stack_bytes,
        ));
        self.inner.app_threads.lock().push(Arc::clone(&state));
        let cluster = self.clone();
        let thread_state = Arc::clone(&state);
        self.inner
            .ctl
            .spawn_on_with(node.index() as u64, name, opts, move |sim| {
                let mut ctx = Pm2Context::new(sim, cluster, thread_state);
                f(&mut ctx);
                ctx.mark_finished();
            });
        state
    }

    /// States of every application thread spawned so far.
    pub fn app_threads(&self) -> Vec<Arc<Pm2ThreadState>> {
        self.inner.app_threads.lock().clone()
    }

    /// Reserve `duration` of CPU time on `node`'s single processor, starting
    /// no earlier than `not_before`. Returns the reservation's end time.
    /// Threads computing on the same node therefore serialize, which is what
    /// makes a node "overloaded" when many threads migrate to it.
    pub fn reserve_cpu(&self, node: NodeId, not_before: SimTime, duration: SimDuration) -> SimTime {
        let mut free = self.inner.cpu_free[node.index()].lock();
        let start = (*free).max(not_before);
        let end = start + duration;
        *free = end;
        end
    }
}

impl std::fmt::Debug for Pm2Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pm2Cluster({} nodes, {})",
            self.num_nodes(),
            self.config().network.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{downcast, service_fn};
    use dsmpm2_madeleine::profiles;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    fn cluster(engine: &Engine, nodes: usize) -> Pm2Cluster {
        Pm2Cluster::new(engine, Pm2Config::bip_myrinet(nodes))
    }

    #[test]
    fn blocking_rpc_roundtrip_returns_reply() {
        let mut engine = Engine::new();
        let c = cluster(&engine, 2);
        c.register_service(service_fn("double", true, |ctx, payload| {
            let x: u64 = downcast(payload, "double arg");
            ctx.sim.charge(SimDuration::from_micros(2));
            Some(RpcReply::control(x * 2))
        }));
        let result = Arc::new(StdAtomicU64::new(0));
        let r = result.clone();
        let c2 = c.clone();
        engine.spawn("caller", move |h| {
            let reply = c2.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "double",
                Box::new(21u64),
                RpcClass::Control,
            );
            r.store(downcast::<u64>(reply, "double reply"), Ordering::SeqCst);
        });
        engine.run().unwrap();
        assert_eq!(result.load(Ordering::SeqCst), 42);
        assert_eq!(c.monitor().count("rpc_call:double"), 1);
    }

    #[test]
    fn rpc_roundtrip_takes_at_least_two_control_messages() {
        let mut engine = Engine::new();
        let c = cluster(&engine, 2);
        c.register_service(service_fn("echo", false, |_ctx, payload| {
            Some(RpcReply::control(downcast::<u32>(payload, "echo")))
        }));
        let elapsed = Arc::new(StdAtomicU64::new(0));
        let e = elapsed.clone();
        let c2 = c.clone();
        engine.spawn("caller", move |h| {
            let start = h.now();
            let _ = c2.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "echo",
                Box::new(7u32),
                RpcClass::Control,
            );
            e.store(h.now().since(start).as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        let two_control = profiles::bip_myrinet().control_time() * 2;
        assert!(elapsed.load(Ordering::SeqCst) >= two_control.as_nanos());
    }

    #[test]
    fn minimal_rpc_matches_paper_latency() {
        let mut engine = Engine::new();
        let c = Pm2Cluster::new(&engine, Pm2Config::sisci_sci(2));
        c.register_service(service_fn("null", false, |_ctx, _payload| {
            Some(RpcReply::minimal(()))
        }));
        let elapsed = Arc::new(StdAtomicU64::new(0));
        let e = elapsed.clone();
        let c2 = c.clone();
        engine.spawn("caller", move |h| {
            let start = h.now();
            let _ = c2.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "null",
                Box::new(()),
                RpcClass::Minimal,
            );
            e.store(h.now().since(start).as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        let us = elapsed.load(Ordering::SeqCst) as f64 / 1000.0;
        // Paper §2.1: 6us minimal RPC latency on SISCI/SCI. Allow the small
        // dispatch overhead on top.
        assert!((6.0..12.0).contains(&us), "null RPC took {us}us");
    }

    #[test]
    fn oneway_rpc_executes_without_reply() {
        let mut engine = Engine::new();
        let c = cluster(&engine, 2);
        let hits = Arc::new(StdAtomicU64::new(0));
        let hits_in_service = hits.clone();
        c.register_service(service_fn("notify", true, move |_ctx, _payload| {
            hits_in_service.fetch_add(1, Ordering::SeqCst);
            None
        }));
        let c2 = c.clone();
        engine.spawn("caller", move |h| {
            c2.rpc_oneway(
                h,
                NodeId(0),
                NodeId(1),
                "notify",
                Box::new(()),
                RpcClass::Control,
            );
            c2.rpc_oneway(
                h,
                NodeId(0),
                NodeId(1),
                "notify",
                Box::new(()),
                RpcClass::Control,
            );
        });
        engine.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_requests_are_served_in_parallel() {
        // Two callers issue requests to the same node at the same time; each
        // handler sleeps 100us. With per-request handler threads the total
        // time is ~one round trip + 100us, not 2x100us serialized.
        let mut engine = Engine::new();
        let c = cluster(&engine, 3);
        c.register_service(service_fn("slow", true, |ctx, _payload| {
            ctx.sim.sleep(SimDuration::from_micros(100));
            Some(RpcReply::control(()))
        }));
        let finish = Arc::new(Mutex::new(Vec::new()));
        for src in [0usize, 2] {
            let c2 = c.clone();
            let f = finish.clone();
            engine.spawn(format!("caller{src}"), move |h| {
                let _ = c2.rpc_call(
                    h,
                    NodeId(src),
                    NodeId(1),
                    "slow",
                    Box::new(()),
                    RpcClass::Control,
                );
                f.lock().push(h.now());
            });
        }
        engine.run().unwrap();
        let finish = finish.lock();
        let latest = finish.iter().max().unwrap();
        let serial_bound = profiles::bip_myrinet().control_time() * 2
            + SimDuration::from_micros(200)
            + SimDuration::from_micros(20);
        assert!(
            *latest < dsmpm2_sim::SimTime::ZERO + serial_bound,
            "requests were serialized: finished at {latest}"
        );
    }

    #[test]
    #[should_panic(expected = "unregistered service")]
    fn calling_unknown_service_panics() {
        let mut engine = Engine::new();
        let c = cluster(&engine, 2);
        let c2 = c.clone();
        engine.spawn("caller", move |h| {
            let _ = c2.rpc_call(
                h,
                NodeId(0),
                NodeId(1),
                "nope",
                Box::new(()),
                RpcClass::Control,
            );
        });
        if let Err(dsmpm2_sim::SimError::ThreadPanic { message, .. }) = engine.run() {
            panic!("{}", message);
        }
    }

    #[test]
    fn app_threads_are_tracked() {
        let mut engine = Engine::new();
        let c = cluster(&engine, 2);
        c.spawn_thread_on(NodeId(1), "app", |ctx| {
            assert_eq!(ctx.node(), NodeId(1));
        });
        engine.run().unwrap();
        assert_eq!(c.app_threads().len(), 1);
        assert!(c.app_threads()[0].finished());
    }
}
