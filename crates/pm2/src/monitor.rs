//! Post-mortem monitoring.
//!
//! The paper highlights PM2's "very precise post-mortem monitoring tools,
//! providing the user with valuable information on the time spent within each
//! elementary function". This module provides the equivalent for the
//! simulated runtime: named counters and timers that every layer (RPC, DSM
//! page manager, protocols, locks) feeds, plus a printable report used by the
//! examples and the benchmark harness.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

use dsmpm2_sim::SimDuration;

/// Statistics recorded for one named operation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStat {
    /// Number of occurrences.
    pub count: u64,
    /// Total virtual time spent.
    pub total: SimDuration,
    /// Largest single occurrence.
    pub max: SimDuration,
}

impl OpStat {
    /// Mean virtual time per occurrence (zero if the operation never ran).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// A monitoring sink shared by every layer of one cluster.
#[derive(Default)]
pub struct Monitor {
    ops: Mutex<HashMap<String, OpStat>>,
}

impl Monitor {
    /// New, empty monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Record one occurrence of `name` taking `elapsed` of virtual time.
    pub fn record(&self, name: &str, elapsed: SimDuration) {
        let mut ops = self.ops.lock();
        let stat = ops.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.total += elapsed;
        if elapsed > stat.max {
            stat.max = elapsed;
        }
    }

    /// Record one occurrence of `name` with no associated time (pure counter).
    pub fn incr(&self, name: &str) {
        self.record(name, SimDuration::ZERO);
    }

    /// Statistics for one operation.
    pub fn get(&self, name: &str) -> OpStat {
        self.ops.lock().get(name).copied().unwrap_or_default()
    }

    /// Number of occurrences of one operation.
    pub fn count(&self, name: &str) -> u64 {
        self.get(name).count
    }

    /// A snapshot of every operation, sorted by total time (descending).
    pub fn report(&self) -> MonitorReport {
        let mut rows: Vec<(String, OpStat)> = self
            .ops
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        MonitorReport { rows }
    }

    /// Reset every counter (used between benchmark iterations).
    pub fn reset(&self) {
        self.ops.lock().clear();
    }
}

/// Sorted snapshot of a [`Monitor`], printable as a post-mortem table.
#[derive(Clone, Debug)]
pub struct MonitorReport {
    /// Rows of `(operation name, statistics)`, sorted by total time.
    pub rows: Vec<(String, OpStat)>,
}

impl MonitorReport {
    /// Statistics for one operation in the snapshot, if present.
    pub fn get(&self, name: &str) -> Option<OpStat> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<36} {:>10} {:>14} {:>14} {:>14}",
            "operation", "count", "total (us)", "mean (us)", "max (us)"
        )?;
        for (name, stat) in &self.rows {
            writeln!(
                f,
                "{:<36} {:>10} {:>14.1} {:>14.2} {:>14.1}",
                name,
                stat.count,
                stat.total.as_micros_f64(),
                stat.mean().as_micros_f64(),
                stat.max.as_micros_f64()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_count_total_and_max() {
        let m = Monitor::new();
        m.record("page_fault", SimDuration::from_micros(11));
        m.record("page_fault", SimDuration::from_micros(15));
        m.incr("rpc");
        let stat = m.get("page_fault");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total, SimDuration::from_micros(26));
        assert_eq!(stat.max, SimDuration::from_micros(15));
        assert_eq!(stat.mean(), SimDuration::from_micros(13));
        assert_eq!(m.count("rpc"), 1);
        assert_eq!(m.count("unknown"), 0);
    }

    #[test]
    fn report_is_sorted_by_total_time() {
        let m = Monitor::new();
        m.record("cheap", SimDuration::from_micros(1));
        m.record("expensive", SimDuration::from_micros(100));
        let report = m.report();
        assert_eq!(report.rows[0].0, "expensive");
        assert!(report.get("cheap").is_some());
        assert!(report.get("missing").is_none());
        let rendered = report.to_string();
        assert!(rendered.contains("expensive"));
        assert!(rendered.contains("operation"));
    }

    #[test]
    fn reset_clears_everything() {
        let m = Monitor::new();
        m.incr("x");
        m.reset();
        assert_eq!(m.count("x"), 0);
        assert!(m.report().rows.is_empty());
    }

    #[test]
    fn mean_of_empty_stat_is_zero() {
        assert_eq!(OpStat::default().mean(), SimDuration::ZERO);
    }
}
