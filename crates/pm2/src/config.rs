//! Cluster configuration and PM2 software cost constants.

use dsmpm2_madeleine::{profiles, NetworkModel, TransportTuning};
use dsmpm2_sim::{SimDuration, SimTuning};

/// Software-path cost constants of the PM2 runtime itself (independent of the
/// interconnect). These model the user-level thread package (Marcel) and the
/// RPC dispatch machinery.
#[derive(Clone, Debug, PartialEq)]
pub struct Pm2Costs {
    /// Demultiplexing an incoming message to its service handler, in µs.
    pub rpc_dispatch_us: f64,
    /// Creating a (user-level) thread to run an RPC handler, in µs.
    pub thread_create_us: f64,
    /// A user-level context switch between Marcel threads, in µs.
    pub context_switch_us: f64,
    /// Default stack size assumed for application threads, in bytes. The
    /// paper's microbenchmark uses threads with ~1 kB stacks.
    pub default_stack_bytes: usize,
}

impl Default for Pm2Costs {
    fn default() -> Self {
        Pm2Costs {
            rpc_dispatch_us: 1.0,
            thread_create_us: 3.0,
            context_switch_us: 0.5,
            default_stack_bytes: 1024,
        }
    }
}

impl Pm2Costs {
    /// RPC dispatch cost as a virtual duration.
    pub fn rpc_dispatch(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.rpc_dispatch_us)
    }

    /// Thread creation cost as a virtual duration.
    pub fn thread_create(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.thread_create_us)
    }

    /// Context switch cost as a virtual duration.
    pub fn context_switch(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.context_switch_us)
    }
}

/// Tuning knobs of the DSM layer installed on a cluster. They live in the
/// cluster configuration (rather than in the DSM crate) so that a whole
/// deployment — network profile, node count and DSM scale-out parameters —
/// is described by one value that every layer can read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DsmTuning {
    /// Number of independent shards of each node's page table. Lookups for
    /// different shards never contend on the same lock; `1` reproduces the
    /// historical single-lock table.
    pub page_table_shards: usize,
    /// Coalesce DSM coherence messages (invalidations, diffs, acks, ownership
    /// notices) addressed to the same node within one virtual-time tick into
    /// a single batched envelope on the wire.
    pub batch_messages: bool,
    /// Width of the batching window. With the default (`ZERO`), only
    /// messages sent at the *same instant* coalesce — the historical
    /// behaviour. A non-zero window parks coherence messages for the same
    /// destination until the end of the window they were sent in, trading up
    /// to one window of extra latency for fewer wire messages. Ignored when
    /// `batch_messages` is off.
    pub batch_window: SimDuration,
    /// Default coherence granularity in bytes for new allocations: `0` (the
    /// default) manages whole pages, exactly as before granularity existed;
    /// a non-zero value must divide the page size and splits every page of an
    /// allocation into independently-owned coherence lines of that many
    /// bytes. Overridable per region through the allocation attributes, and
    /// transparently clamped back to whole pages for protocols that do not
    /// support sub-page coherence.
    pub granularity: usize,
    /// Serve uncontended remote read faults one-sided: the requester sends a
    /// `FetchRead` and the home answers at message-delivery instant directly
    /// from its installed frame — no handler-thread wake, no scheduler
    /// round-trip — falling back to the classic request path whenever the
    /// home-side state is contended. Off by default (bit-identical to the
    /// historical two-sided path). Only protocols that declare the
    /// capability use the fast path.
    pub one_sided_reads: bool,
}

impl Default for DsmTuning {
    fn default() -> Self {
        DsmTuning {
            page_table_shards: 8,
            batch_messages: true,
            batch_window: SimDuration::ZERO,
            granularity: 0,
            one_sided_reads: false,
        }
    }
}

impl DsmTuning {
    /// The pre-sharding, pre-batching behaviour (single-lock page table,
    /// one wire message per coherence message). Used as the ablation
    /// baseline.
    pub fn legacy() -> Self {
        DsmTuning {
            page_table_shards: 1,
            batch_messages: false,
            batch_window: SimDuration::ZERO,
            granularity: 0,
            one_sided_reads: false,
        }
    }

    /// Same-instant batching widened to a time window.
    pub fn with_batch_window(mut self, window: SimDuration) -> Self {
        self.batch_window = window;
        self
    }

    /// Set the default coherence granularity (bytes per line; `0` = whole
    /// pages).
    pub fn with_granularity(mut self, bytes: usize) -> Self {
        self.granularity = bytes;
        self
    }

    /// Enable the one-sided read fast path.
    pub fn with_one_sided_reads(mut self) -> Self {
        self.one_sided_reads = true;
        self
    }
}

/// Configuration of a simulated PM2 cluster.
#[derive(Clone, Debug)]
pub struct Pm2Config {
    /// Number of cluster nodes.
    pub num_nodes: usize,
    /// Interconnect cost model (see [`dsmpm2_madeleine::profiles`]).
    pub network: NetworkModel,
    /// PM2 software cost constants.
    pub costs: Pm2Costs,
    /// DSM-layer tuning knobs (page-table sharding, message batching).
    pub dsm: DsmTuning,
    /// Simulation-engine tuning knobs (hand-off substrate, spin budget,
    /// scheduler workers). Consumers that build their own
    /// [`dsmpm2_sim::Engine`] should construct it with these (the workload
    /// runners do). The default hand-off is the continuation mode, overridable
    /// process-wide with `DSM_SIM_HANDOFF=continuation|baton|legacy` — the
    /// default [`SimTuning`] reads that variable, so it flows through this
    /// field into every workload config without further plumbing.
    pub sim: SimTuning,
    /// Transport-layer tuning knobs (wire-level backend selection): the
    /// default is the `Ideal` uncontended pipe of the paper's cost model.
    pub transport: TransportTuning,
}

impl Pm2Config {
    /// A cluster of `num_nodes` nodes over the given network profile.
    pub fn new(num_nodes: usize, network: NetworkModel) -> Self {
        Pm2Config {
            num_nodes,
            network,
            costs: Pm2Costs::default(),
            dsm: DsmTuning::default(),
            sim: SimTuning::default(),
            transport: TransportTuning::default(),
        }
    }

    /// Replace the DSM tuning knobs.
    pub fn with_dsm_tuning(mut self, dsm: DsmTuning) -> Self {
        self.dsm = dsm;
        self
    }

    /// Replace the simulation-engine tuning knobs.
    pub fn with_sim_tuning(mut self, sim: SimTuning) -> Self {
        self.sim = sim;
        self
    }

    /// Replace the transport-layer tuning knobs.
    pub fn with_transport_tuning(mut self, transport: TransportTuning) -> Self {
        self.transport = transport;
        self
    }

    /// An [`dsmpm2_sim::EngineConfig`] matching this cluster configuration,
    /// so harnesses can build the engine and the cluster from one value.
    pub fn engine_config(&self) -> dsmpm2_sim::EngineConfig {
        dsmpm2_sim::EngineConfig {
            tuning: self.sim,
            ..dsmpm2_sim::EngineConfig::default()
        }
    }

    /// The default experimental platform of the paper: BIP/Myrinet.
    pub fn bip_myrinet(num_nodes: usize) -> Self {
        Pm2Config::new(num_nodes, profiles::bip_myrinet())
    }

    /// SISCI/SCI cluster (used for the Java-consistency experiments).
    pub fn sisci_sci(num_nodes: usize) -> Self {
        Pm2Config::new(num_nodes, profiles::sisci_sci())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_small_relative_to_network() {
        let costs = Pm2Costs::default();
        let net = profiles::bip_myrinet();
        assert!(costs.rpc_dispatch() < net.control_time());
        assert!(costs.thread_create() < net.control_time());
        assert_eq!(costs.default_stack_bytes, 1024);
    }

    #[test]
    fn named_constructors_pick_the_right_profile() {
        assert_eq!(Pm2Config::bip_myrinet(4).network.name, "BIP/Myrinet");
        assert_eq!(Pm2Config::sisci_sci(2).network.name, "SISCI/SCI");
        assert_eq!(Pm2Config::bip_myrinet(4).num_nodes, 4);
    }

    #[test]
    fn sim_tuning_flows_into_engine_config() {
        use dsmpm2_sim::HandoffMode;
        let legacy = Pm2Config::bip_myrinet(2).with_sim_tuning(SimTuning::legacy());
        assert_eq!(legacy.sim.handoff, HandoffMode::LegacyCondvar);
        assert_eq!(
            legacy.engine_config().tuning.handoff,
            HandoffMode::LegacyCondvar
        );
        let baton = Pm2Config::bip_myrinet(2).with_sim_tuning(SimTuning::baton());
        assert_eq!(baton.engine_config().tuning.handoff, HandoffMode::Baton);
    }

    #[test]
    fn dsm_tuning_defaults_and_legacy() {
        let config = Pm2Config::bip_myrinet(2);
        assert!(config.dsm.page_table_shards > 1);
        assert!(config.dsm.batch_messages);
        assert!(config.dsm.batch_window.is_zero());
        let legacy = Pm2Config::bip_myrinet(2).with_dsm_tuning(DsmTuning::legacy());
        assert_eq!(legacy.dsm.page_table_shards, 1);
        assert!(!legacy.dsm.batch_messages);
        let windowed = DsmTuning::default().with_batch_window(SimDuration::from_micros(50));
        assert_eq!(windowed.batch_window, SimDuration::from_micros(50));
        assert_eq!(config.dsm.granularity, 0, "whole pages by default");
        assert!(!config.dsm.one_sided_reads, "two-sided reads by default");
        let tuned = DsmTuning::default()
            .with_granularity(256)
            .with_one_sided_reads();
        assert_eq!(tuned.granularity, 256);
        assert!(tuned.one_sided_reads);
    }

    #[test]
    fn transport_tuning_defaults_to_ideal_and_threads_through() {
        use dsmpm2_madeleine::TransportBackend;
        let config = Pm2Config::bip_myrinet(2);
        assert_eq!(config.transport, TransportTuning::ideal());
        let contended =
            Pm2Config::bip_myrinet(2).with_transport_tuning(TransportTuning::contended());
        assert_eq!(contended.transport.backend, TransportBackend::Contended);
        let lossy = Pm2Config::bip_myrinet(2).with_transport_tuning(TransportTuning::lossy(7));
        assert!(matches!(lossy.transport.backend, TransportBackend::Lossy(c) if c.seed == 7));
    }
}
