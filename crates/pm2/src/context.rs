//! Application-thread context and preemptive thread migration.
//!
//! A PM2 application thread can be migrated transparently between nodes
//! during its execution: its stack and descriptor are copied to the
//! destination node at the same iso-address. In the simulation, the backing
//! execution context never moves (it is an OS thread of the host process);
//! what migration changes is (a) the thread's *location*, which every DSM
//! access consults, and (b) the virtual clock, which is charged the
//! calibrated migration cost for the thread's stack and attached data.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_madeleine::NodeId;
use dsmpm2_sim::{SimDuration, SimHandle, SimTime};

use crate::cluster::Pm2Cluster;
use crate::rpc::{RpcClass, RpcPayload};

/// Shared, externally observable state of one PM2 application thread.
#[derive(Debug)]
pub struct Pm2ThreadState {
    name: String,
    node: Mutex<NodeId>,
    stack_bytes: AtomicUsize,
    private_bytes: AtomicUsize,
    migrations: AtomicU64,
    finished: AtomicBool,
}

impl Pm2ThreadState {
    pub(crate) fn new(name: String, node: NodeId, stack_bytes: usize) -> Self {
        Pm2ThreadState {
            name,
            node: Mutex::new(node),
            stack_bytes: AtomicUsize::new(stack_bytes),
            private_bytes: AtomicUsize::new(0),
            migrations: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        }
    }

    /// Thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node the thread currently executes on.
    pub fn node(&self) -> NodeId {
        *self.node.lock()
    }

    /// Stack size accounted for migration costs.
    pub fn stack_bytes(&self) -> usize {
        self.stack_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of private iso-allocated data that migrate with the thread.
    pub fn private_bytes(&self) -> usize {
        self.private_bytes.load(Ordering::Relaxed)
    }

    /// Number of times the thread has migrated.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// True once the thread body has returned.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }
}

/// Execution context handed to every PM2 application thread body.
pub struct Pm2Context<'a> {
    /// The underlying simulation handle (virtual clock, sleeping, spawning).
    pub sim: &'a mut SimHandle,
    cluster: Pm2Cluster,
    state: Arc<Pm2ThreadState>,
}

impl<'a> Pm2Context<'a> {
    pub(crate) fn new(
        sim: &'a mut SimHandle,
        cluster: Pm2Cluster,
        state: Arc<Pm2ThreadState>,
    ) -> Self {
        Pm2Context {
            sim,
            cluster,
            state,
        }
    }

    pub(crate) fn mark_finished(&self) {
        self.state.finished.store(true, Ordering::Relaxed);
    }

    /// The cluster this thread runs in.
    pub fn cluster(&self) -> &Pm2Cluster {
        &self.cluster
    }

    /// The node this thread currently executes on.
    pub fn node(&self) -> NodeId {
        self.state.node()
    }

    /// Shared state handle (usable from outside the thread).
    pub fn state(&self) -> Arc<Pm2ThreadState> {
        Arc::clone(&self.state)
    }

    /// Current local virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Charge local compute time (folded into the clock at the next yield).
    /// This models compute that is private to the thread and does not contend
    /// for the node's CPU (bookkeeping, protocol overheads).
    pub fn compute(&mut self, d: SimDuration) {
        self.sim.charge(d);
    }

    /// Execute `d` of compute on the node's single CPU, contending with every
    /// other thread currently located on the same node. The thread resumes
    /// when its reservation completes; if other threads queued ahead of it,
    /// that is later than `now + d`.
    pub fn compute_shared(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.sim.flush();
        let now = self.sim.global_now();
        let node = self.node();
        let end = self.cluster.reserve_cpu(node, now, d);
        self.sim.sleep(end - now);
    }

    /// Declare the stack footprint of this thread (affects migration cost).
    pub fn set_stack_bytes(&self, bytes: usize) {
        self.state.stack_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Attach `bytes` of private iso-allocated data to this thread; the data
    /// is copied along on every migration.
    pub fn attach_private_bytes(&self, bytes: usize) {
        self.state.private_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Preemptively migrate this thread to `dest`.
    ///
    /// The virtual clock is charged the calibrated migration cost (stack +
    /// attached data over the configured interconnect); afterwards the thread
    /// continues executing with `dest` as its location, so subsequent DSM
    /// accesses are evaluated against `dest`'s page table.
    pub fn migrate_to(&mut self, dest: NodeId) {
        let from = self.node();
        if from == dest {
            return;
        }
        assert!(
            self.cluster.topology().contains(dest),
            "cannot migrate to unknown node {dest}"
        );
        let model = self.cluster.network().model();
        let cost =
            model.thread_migration_time(self.state.stack_bytes(), self.state.private_bytes());
        self.cluster.monitor().record("thread_migration", cost);
        self.cluster.network().stats().record(
            from,
            dest,
            self.state.stack_bytes() + self.state.private_bytes(),
        );
        // Re-home the thread onto the destination node's scheduler shard
        // *before* sleeping, so the post-migration wake-up (and everything
        // the thread does afterwards) executes on the worker that owns the
        // destination node's state.
        self.sim.set_shard(dest.index() as u64);
        self.sim.sleep(cost);
        *self.state.node.lock() = dest;
        self.state.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocking RPC issued from this thread's current node.
    pub fn rpc_call(
        &mut self,
        to: NodeId,
        service: &str,
        payload: RpcPayload,
        class: RpcClass,
    ) -> RpcPayload {
        let from = self.node();
        self.cluster
            .clone()
            .rpc_call(self.sim, from, to, service, payload, class)
    }

    /// One-way RPC issued from this thread's current node.
    pub fn rpc_oneway(&mut self, to: NodeId, service: &str, payload: RpcPayload, class: RpcClass) {
        let from = self.node();
        self.cluster
            .clone()
            .rpc_oneway(self.sim, from, to, service, payload, class)
    }
}

impl std::fmt::Debug for Pm2Context<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pm2Context('{}' on {} at {})",
            self.state.name(),
            self.node(),
            self.sim.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Pm2Config;
    use dsmpm2_madeleine::profiles;
    use dsmpm2_sim::Engine;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn migration_charges_the_calibrated_cost_and_moves_the_thread() {
        let mut engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::bip_myrinet(2));
        let elapsed = Arc::new(StdAtomicU64::new(0));
        let e = elapsed.clone();
        let state = cluster.spawn_thread_on(NodeId(0), "mover", move |ctx| {
            let start = ctx.now();
            ctx.migrate_to(NodeId(1));
            assert_eq!(ctx.node(), NodeId(1));
            e.store(ctx.now().since(start).as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        let expected = profiles::bip_myrinet().thread_migration_time(1024, 0);
        assert_eq!(elapsed.load(Ordering::SeqCst), expected.as_nanos());
        assert_eq!(state.node(), NodeId(1));
        assert_eq!(state.migrations(), 1);
        assert!(state.finished());
    }

    #[test]
    fn migration_to_current_node_is_free() {
        let mut engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::bip_myrinet(2));
        cluster.spawn_thread_on(NodeId(0), "stay", |ctx| {
            let start = ctx.now();
            ctx.migrate_to(NodeId(0));
            assert_eq!(ctx.now().since(start), SimDuration::ZERO);
        });
        engine.run().unwrap();
        assert_eq!(cluster.monitor().count("thread_migration"), 0);
    }

    #[test]
    fn migration_cost_includes_attached_private_data() {
        let mut engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::sisci_sci(2));
        let elapsed = Arc::new(StdAtomicU64::new(0));
        let e = elapsed.clone();
        cluster.spawn_thread_on(NodeId(0), "heavy", move |ctx| {
            ctx.attach_private_bytes(64 * 1024);
            let start = ctx.now();
            ctx.migrate_to(NodeId(1));
            e.store(ctx.now().since(start).as_nanos(), Ordering::SeqCst);
        });
        engine.run().unwrap();
        let light = profiles::sisci_sci().thread_migration_time(1024, 0);
        assert!(elapsed.load(Ordering::SeqCst) > light.as_nanos());
    }

    #[test]
    fn compute_advances_local_clock() {
        let mut engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::bip_myrinet(1));
        cluster.spawn_thread_on(NodeId(0), "worker", |ctx| {
            ctx.compute(SimDuration::from_micros(500));
            assert_eq!(ctx.now(), SimTime::from_micros(500));
        });
        engine.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn migrating_to_unknown_node_panics() {
        let mut engine = Engine::new();
        let cluster = Pm2Cluster::new(&engine, Pm2Config::bip_myrinet(2));
        cluster.spawn_thread_on(NodeId(0), "bad", |ctx| {
            ctx.migrate_to(NodeId(5));
        });
        if let Err(dsmpm2_sim::SimError::ThreadPanic { message, .. }) = engine.run() {
            panic!("{}", message);
        }
    }
}
