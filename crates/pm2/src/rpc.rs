//! Remote procedure calls.
//!
//! PM2's basic mechanism for inter-node interaction is the RPC: a thread
//! invokes the remote execution of a user-defined service, which may be
//! handled by a pre-existing thread or trigger the creation of a new one.
//! All DSM-PM2 communication primitives are built on this mechanism, which is
//! why it is modelled explicitly here rather than folded into the DSM layer.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dsmpm2_madeleine::{NodeId, CONTROL_MESSAGE_BYTES};
use dsmpm2_sim::{SimHandle, ThreadId};

use crate::cluster::Pm2Cluster;

/// Payload carried by requests and replies. Services downcast it to their
/// concrete argument type; the network layer only needs its accounted size.
pub type RpcPayload = Box<dyn Any + Send>;

/// How a message should be costed by the network model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcClass {
    /// A null RPC carrying (almost) no arguments: costs the interconnect's
    /// minimal RPC latency. Used by the §2.1 microbenchmark.
    Minimal,
    /// A small DSM control message (page request, invalidation, ack).
    Control,
    /// A bulk transfer of `n` payload bytes (page contents, diffs).
    Data(usize),
}

impl RpcClass {
    /// Payload bytes accounted to the network statistics.
    pub fn accounted_bytes(self) -> usize {
        match self {
            RpcClass::Minimal => 16,
            RpcClass::Control => CONTROL_MESSAGE_BYTES,
            RpcClass::Data(n) => n + CONTROL_MESSAGE_BYTES,
        }
    }
}

/// A reply produced by a service handler.
pub struct RpcReply {
    /// Reply value, downcast by the caller.
    pub payload: RpcPayload,
    /// Cost class of the reply message.
    pub class: RpcClass,
}

impl RpcReply {
    /// A reply carrying a small control answer.
    pub fn control(payload: impl Any + Send) -> Self {
        RpcReply {
            payload: Box::new(payload),
            class: RpcClass::Control,
        }
    }

    /// A reply carrying `bytes` of bulk data.
    pub fn data(payload: impl Any + Send, bytes: usize) -> Self {
        RpcReply {
            payload: Box::new(payload),
            class: RpcClass::Data(bytes),
        }
    }

    /// A minimal reply (null RPC completion).
    pub fn minimal(payload: impl Any + Send) -> Self {
        RpcReply {
            payload: Box::new(payload),
            class: RpcClass::Minimal,
        }
    }
}

/// Wire messages exchanged by the RPC layer. Exposed only because
/// [`crate::Pm2Cluster::network`] returns the underlying typed network; user
/// code never constructs these.
pub enum RpcMessage {
    /// A service invocation.
    Request {
        /// Correlation id.
        id: u64,
        /// Target service name.
        service: String,
        /// True if the caller blocks for a reply.
        needs_reply: bool,
        /// Arguments.
        payload: RpcPayload,
    },
    /// A reply to an earlier request.
    Reply {
        /// Correlation id of the request.
        id: u64,
        /// Reply value.
        payload: RpcPayload,
    },
}

/// Context passed to a service handler. The handler runs on the destination
/// node, either inline in the node's dispatcher thread or in a freshly
/// created handler thread (the PM2 "RPC with thread creation" flavour).
pub struct RpcRequestCtx<'a> {
    /// Simulation handle of the thread executing the handler.
    pub sim: &'a mut SimHandle,
    /// The cluster, for nested RPCs (e.g. forwarding a page request along the
    /// probable-owner chain).
    pub cluster: Pm2Cluster,
    /// Node on which the handler executes.
    pub local_node: NodeId,
    /// Node that issued the request.
    pub from_node: NodeId,
}

/// A named remote service.
pub trait RpcService: Send + Sync + 'static {
    /// Service name used for registration and monitoring.
    fn name(&self) -> &str;
    /// Handle one request. Must return `Some` if the caller expects a reply.
    fn handle(&self, ctx: &mut RpcRequestCtx<'_>, payload: RpcPayload) -> Option<RpcReply>;
    /// If true (the default, and the behaviour used by the DSM page servers),
    /// the dispatcher creates a dedicated thread per request so concurrent
    /// requests are served in parallel and may block on nested RPCs.
    fn spawn_thread(&self) -> bool {
        true
    }
}

/// Adapter turning a closure into an [`RpcService`].
pub struct FnService<F> {
    name: String,
    spawn_thread: bool,
    f: F,
}

impl<F> RpcService for FnService<F>
where
    F: Fn(&mut RpcRequestCtx<'_>, RpcPayload) -> Option<RpcReply> + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&self, ctx: &mut RpcRequestCtx<'_>, payload: RpcPayload) -> Option<RpcReply> {
        (self.f)(ctx, payload)
    }
    fn spawn_thread(&self) -> bool {
        self.spawn_thread
    }
}

/// Build a service from a closure. `spawn_thread` selects whether each
/// request gets a dedicated handler thread.
pub fn service_fn<F>(name: impl Into<String>, spawn_thread: bool, f: F) -> Arc<dyn RpcService>
where
    F: Fn(&mut RpcRequestCtx<'_>, RpcPayload) -> Option<RpcReply> + Send + Sync + 'static,
{
    Arc::new(FnService {
        name: name.into(),
        spawn_thread,
        f,
    })
}

struct ReplySlot {
    value: Option<RpcPayload>,
    waiter: ThreadId,
}

/// Table of outstanding RPC calls waiting for their reply.
#[derive(Default)]
pub(crate) struct ReplyTable {
    slots: Mutex<HashMap<u64, ReplySlot>>,
}

impl ReplyTable {
    pub fn new() -> Self {
        ReplyTable::default()
    }

    /// Register an outstanding call made by `waiter`.
    pub fn register(&self, id: u64, waiter: ThreadId) {
        let previous = self.slots.lock().insert(
            id,
            ReplySlot {
                value: None,
                waiter,
            },
        );
        debug_assert!(previous.is_none(), "duplicate RPC id {id}");
    }

    /// Deposit the reply for call `id`; returns the waiting thread to wake.
    pub fn fulfill(&self, id: u64, payload: RpcPayload) -> Option<ThreadId> {
        let mut slots = self.slots.lock();
        match slots.get_mut(&id) {
            Some(slot) => {
                slot.value = Some(payload);
                Some(slot.waiter)
            }
            None => None,
        }
    }

    /// Take the reply for call `id` if it has arrived, removing the slot.
    pub fn take(&self, id: u64) -> Option<RpcPayload> {
        let mut slots = self.slots.lock();
        if slots.get(&id).map(|s| s.value.is_some()).unwrap_or(false) {
            slots.remove(&id).and_then(|s| s.value)
        } else {
            None
        }
    }

    /// Number of calls still waiting for a reply.
    #[allow(dead_code)]
    pub fn outstanding(&self) -> usize {
        self.slots.lock().len()
    }
}

/// Downcast an RPC payload to a concrete type, panicking with a useful
/// message if the service and caller disagree on the type.
pub fn downcast<T: Any>(payload: RpcPayload, what: &str) -> T {
    *payload
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("RPC payload for {what} has an unexpected type"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_class_accounts_bytes() {
        assert_eq!(RpcClass::Minimal.accounted_bytes(), 16);
        assert_eq!(RpcClass::Control.accounted_bytes(), CONTROL_MESSAGE_BYTES);
        assert_eq!(
            RpcClass::Data(4096).accounted_bytes(),
            4096 + CONTROL_MESSAGE_BYTES
        );
    }

    #[test]
    fn reply_constructors_set_class() {
        assert_eq!(RpcReply::control(1u32).class, RpcClass::Control);
        assert_eq!(RpcReply::data(vec![0u8; 10], 10).class, RpcClass::Data(10));
        assert_eq!(RpcReply::minimal(()).class, RpcClass::Minimal);
    }

    fn some_thread_id() -> ThreadId {
        use dsmpm2_sim::Engine;
        let mut engine = Engine::new();
        let out = std::sync::Arc::new(Mutex::new(None));
        let o = out.clone();
        engine.spawn("probe", move |h| {
            *o.lock() = Some(h.id());
        });
        engine.run().unwrap();
        let id = out.lock().take().unwrap();
        id
    }

    #[test]
    fn reply_table_roundtrip() {
        let table = ReplyTable::new();
        let waiter = some_thread_id();
        table.register(1, waiter);
        assert_eq!(table.outstanding(), 1);
        assert!(table.take(1).is_none(), "no reply yet");
        assert_eq!(table.fulfill(1, Box::new(42u32)), Some(waiter));
        let v = table.take(1).expect("reply present");
        assert_eq!(downcast::<u32>(v, "test"), 42);
        assert_eq!(table.outstanding(), 0);
        assert!(table.fulfill(99, Box::new(())).is_none());
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn downcast_mismatch_panics() {
        let p: RpcPayload = Box::new("hello");
        let _: u64 = downcast(p, "mismatch test");
    }
}
