//! # dsmpm2-pm2 — the PM2 runtime model
//!
//! PM2 ("Parallel Multithreaded Machine") is the runtime DSM-PM2 is built on:
//! user-level threads (Marcel), portable communication (Madeleine), RPC-based
//! node interaction, iso-address allocation and preemptive thread migration.
//! This crate models those services on top of the simulation engine:
//!
//! * [`Pm2Cluster`] — boots a cluster of nodes with one RPC dispatcher per
//!   node, a service registry, and the blocking/one-way RPC primitives.
//! * [`Pm2Context`] / [`Pm2ThreadState`] — application threads with a current
//!   location and preemptive [`Pm2Context::migrate_to`] migration.
//! * [`IsoAllocator`] — iso-address allocation (shared and node-private).
//! * [`Monitor`] — post-mortem per-operation timing/counter reports.
//!
//! The DSM generic core (crate `dsmpm2-core`) is built exclusively on this
//! API, mirroring the layering of the original system.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
mod config;
mod context;
mod isomalloc;
mod monitor;
mod rpc;

pub use cluster::Pm2Cluster;
pub use config::{DsmTuning, Pm2Config, Pm2Costs};
pub use context::{Pm2Context, Pm2ThreadState};
pub use isomalloc::{
    IsoAllocator, IsoKind, IsoRange, ISO_PRIVATE_BASE, ISO_PRIVATE_SLOT, ISO_SHARED_BASE,
};
pub use monitor::{Monitor, MonitorReport, OpStat};
pub use rpc::{
    downcast, service_fn, FnService, RpcClass, RpcMessage, RpcPayload, RpcReply, RpcRequestCtx,
    RpcService,
};

/// Convenience re-exports of the layers below, so applications can depend on
/// a single crate for cluster setup.
pub use dsmpm2_madeleine::{
    profiles, LossyConfig, NetworkModel, NodeId, PermutedConfig, Topology, TransportBackend,
    TransportTuning, WireStatsSnapshot,
};
pub use dsmpm2_sim::{
    BlockReason, Engine, EngineConfig, HandoffMode, SimDuration, SimError, SimHandle, SimTime,
    SimTuning, SpawnOptions, ThreadId,
};
