//! `hbrc_mw` — home-based (lazy) release consistency with multiple writers.
//!
//! Every page has a fixed home node that always holds the reference copy and
//! write access. Other nodes fetch copies from the home on faults and may
//! write them concurrently ("multiple writers") thanks to the classical
//! twinning technique: the first write after an acquire creates a twin, and
//! at lock release the diffs between the twin and the working copy are
//! computed and shipped to the home node. The home integrates the diffs and
//! invalidates third-party copies; a third-party writer that receives such an
//! invalidation first pushes its own pending diffs, then drops its copy.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, ConsistencyModel, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, NodeId,
    PageDiff, PageRequest, PageTransfer, ServerCtx,
};

/// The `hbrc_mw` protocol (home-based release consistency, multiple writers).
#[derive(Debug, Default)]
pub struct HbrcMw;

impl HbrcMw {
    /// Create the protocol.
    pub fn new() -> Self {
        HbrcMw
    }
}

impl DsmProtocol for HbrcMw {
    fn name(&self) -> &str {
        "hbrc_mw"
    }

    fn consistency(&self) -> ConsistencyModel {
        ConsistencyModel::Release
    }

    fn multiple_writers(&self) -> bool {
        // Twin/diff merging lets several nodes write one page concurrently.
        true
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        if rt.tuning().one_sided_reads && protolib::one_sided_read(ctx, fault.page, fault.line) {
            return;
        }
        protolib::request_unit_and_wait(
            ctx.pm2.sim,
            node,
            &rt,
            fault.page,
            fault.line,
            Access::Read,
        );
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let page = fault.page;
        let line = fault.line;
        if rt.frames(node).has(page) && rt.page_table(node).access_at(page, line) != Access::None {
            // A read copy of the line is already present: become a local
            // writer without any communication — just create the twin and
            // upgrade locally.
            protolib::ensure_twin_at(ctx.pm2.sim, node, &rt, page, line);
            rt.page_table(node).set_access_at(page, line, Access::Write);
            ctx.pm2.sim.charge(rt.costs().table_update());
        } else {
            protolib::request_unit_and_wait(ctx.pm2.sim, node, &rt, page, line, Access::Write);
            protolib::ensure_twin_at(ctx.pm2.sim, node, &rt, page, line);
        }
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Read);
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        // Multiple writers: the home grants a writable copy but keeps its own
        // write access and ownership.
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let (line_offset, line_size) = rt
            .page_table(node)
            .read_at(inv.page, inv.line, |e| e.line_span());
        let whole_page = line_size == dsmpm2_core::PAGE_SIZE;
        let has_twin = rt.frames(node).has(inv.page)
            && if whole_page {
                rt.frames(node).has_twin(inv.page)
            } else {
                rt.frames(node).has_line_twin(inv.page, inv.line)
            };
        // A third-party writer must first push its own modifications to the
        // home node, then drop its copy.
        if has_twin {
            // Revoke local access *before* computing the diff: this handler
            // blocks below until the home has integrated the diff, and the
            // local application thread keeps running meanwhile — a write it
            // performs after the diff is taken would silently die with the
            // frame. Protected, such a write faults and refetches instead
            // (the mprotect-first discipline of real MW implementations).
            rt.page_table(node)
                .set_access_at(inv.page, inv.line, Access::None);
            ctx.sim.charge(rt.costs().table_update());
            let diff = if whole_page {
                rt.frames(node).take_twin_diff(inv.page)
            } else {
                rt.frames(node)
                    .take_line_twin_diff(inv.page, inv.line, line_offset)
            };
            ctx.sim.charge(rt.costs().diff_compute());
            if !diff.is_empty() {
                let home = rt.page_meta(inv.page).home;
                // The diff must be integrated at the home before we
                // acknowledge the invalidation, otherwise the invalidator can
                // proceed (and other nodes can refetch) while the reference
                // copy is still stale.
                rt.page_table(node)
                    .update_at(inv.page, inv.line, |e| e.pending_acks += 1);
                rt.send_diff(ctx.sim, node, home, diff, true);
                let table = rt.page_table(node);
                let waiters = table.waiters_at(inv.page, inv.line);
                waiters.wait_until(ctx.sim, || {
                    table.read_at(inv.page, inv.line, |e| e.pending_acks == 0)
                });
            }
        }
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Laziness: nothing to do at acquire; stale copies were invalidated
        // when the home node integrated the corresponding diffs.
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let modified = rt.page_table(node).modified_units();
        // Non-home units: ship the twin diffs to their home nodes.
        protolib::flush_unit_diffs_to_homes(ctx.pm2.sim, node, &rt, &modified, false);
        // Re-protect the flushed copies (the original protocol write-protects
        // the page again at release): the next write after this release takes
        // a fault, which re-creates the twin that the following release will
        // diff against.
        for &(page, line) in &modified {
            if rt.page_meta(page).home == node {
                continue;
            }
            if rt.page_table(node).access_at(page, line) == dsmpm2_core::Access::Write {
                rt.page_table(node)
                    .set_access_at(page, line, dsmpm2_core::Access::Read);
                ctx.pm2.sim.charge(rt.costs().table_update());
            }
        }
        // Units homed here: the reference copy changed in place, so remote
        // copies are stale and must be invalidated before the release
        // completes (they will be refetched on demand). All rounds are sent
        // first and the acknowledgements collected together, so the rounds
        // overlap in the network instead of serializing page by page — and
        // invalidations addressed to the same copy holder leave in one
        // same-tick burst the per-tick batcher can coalesce.
        let mut in_flight = Vec::new();
        for (page, line) in modified {
            if rt.page_meta(page).home != node {
                continue;
            }
            let (targets, version) = rt.page_table(node).read_at(page, line, |e| {
                let targets: Vec<NodeId> =
                    e.copyset.iter().copied().filter(|&n| n != node).collect();
                (targets, e.version)
            });
            if targets.is_empty() {
                continue;
            }
            protolib::send_copyset_invalidations_at(
                ctx.pm2.sim,
                node,
                &rt,
                page,
                line,
                &targets,
                None,
                version,
            );
            // Drop the condemned targets from the copyset *now*, before any
            // blocking: there is no yield point between the send and this
            // update, so a target that refetches the page while the ack wait
            // below blocks is re-inserted by the page server and survives —
            // whereas a post-wait retain would wrongly drop that fresh copy
            // (it is indistinguishable from the original membership) and
            // leave the node permanently stale.
            rt.page_table(node).update_at(page, line, |e| {
                e.copyset.retain(|n| !targets.contains(n));
            });
            in_flight.push((page, line));
        }
        for (page, line) in in_flight {
            protolib::await_invalidation_acks_at(ctx.pm2.sim, node, &rt, page, line);
        }
    }

    fn diff_server(&self, ctx: &mut ServerCtx<'_>, diff: PageDiff, from: NodeId) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let page = diff.page;
        let line = diff.line;
        let bytes = diff.modified_bytes();
        rt.frames(node).apply_diff(page, &diff);
        rt.page_table(node).update_at(page, line, |e| {
            e.version += 1;
        });
        ctx.sim.charge(rt.costs().diff_apply(bytes));
        // Home-based invalidation of third-party copies: nodes other than the
        // releaser lose their (now stale) copies and will refetch on demand.
        protolib::home_invalidate_other_copies_at(ctx.sim, node, &rt, page, line, from);
    }

    fn supports_subpage(&self) -> bool {
        // Twin creation, diff shipping and home-side invalidation all
        // operate on the faulting line (line twins diff only their span).
        true
    }

    fn one_sided_reads(&self) -> bool {
        // Home-based: the home's reference copy is always current between
        // diff integrations, and the fetch guard refuses while a diff round
        // is open on the line (pending acknowledgements).
        true
    }
}
