//! `hbrc_mw` — home-based (lazy) release consistency with multiple writers.
//!
//! Every page has a fixed home node that always holds the reference copy and
//! write access. Other nodes fetch copies from the home on faults and may
//! write them concurrently ("multiple writers") thanks to the classical
//! twinning technique: the first write after an acquire creates a twin, and
//! at lock release the diffs between the twin and the working copy are
//! computed and shipped to the home node. The home integrates the diffs and
//! invalidates third-party copies; a third-party writer that receives such an
//! invalidation first pushes its own pending diffs, then drops its copy.

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, ConsistencyModel, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, NodeId,
    PageDiff, PageRequest, PageTransfer, ServerCtx,
};

/// The `hbrc_mw` protocol (home-based release consistency, multiple writers).
#[derive(Debug, Default)]
pub struct HbrcMw;

impl HbrcMw {
    /// Create the protocol.
    pub fn new() -> Self {
        HbrcMw
    }
}

impl DsmProtocol for HbrcMw {
    fn name(&self) -> &str {
        "hbrc_mw"
    }

    fn consistency(&self) -> ConsistencyModel {
        ConsistencyModel::Release
    }

    fn multiple_writers(&self) -> bool {
        // Twin/diff merging lets several nodes write one page concurrently.
        true
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let page = fault.page;
        if rt.frames(node).has(page) && rt.page_table(node).access(page) != Access::None {
            // A read copy is already present: become a local writer without
            // any communication — just create the twin and upgrade locally.
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
            rt.page_table(node).set_access(page, Access::Write);
            ctx.pm2.sim.charge(rt.costs().table_update());
        } else {
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, page, Access::Write);
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
        }
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Read);
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        // Multiple writers: the home grants a writable copy but keeps its own
        // write access and ownership.
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        // A third-party writer must first push its own modifications to the
        // home node, then drop its copy.
        if rt.frames(node).has(inv.page) && rt.frames(node).has_twin(inv.page) {
            // Revoke local access *before* computing the diff: this handler
            // blocks below until the home has integrated the diff, and the
            // local application thread keeps running meanwhile — a write it
            // performs after the diff is taken would silently die with the
            // frame. Protected, such a write faults and refetches instead
            // (the mprotect-first discipline of real MW implementations).
            rt.page_table(node).set_access(inv.page, Access::None);
            ctx.sim.charge(rt.costs().table_update());
            let diff = rt.frames(node).take_twin_diff(inv.page);
            ctx.sim.charge(rt.costs().diff_compute());
            if !diff.is_empty() {
                let home = rt.page_meta(inv.page).home;
                // The diff must be integrated at the home before we
                // acknowledge the invalidation, otherwise the invalidator can
                // proceed (and other nodes can refetch) while the reference
                // copy is still stale.
                rt.page_table(node)
                    .update(inv.page, |e| e.pending_acks += 1);
                rt.send_diff(ctx.sim, node, home, diff, true);
                let table = rt.page_table(node);
                let waiters = table.waiters(inv.page);
                waiters.wait_until(ctx.sim, || table.read(inv.page, |e| e.pending_acks == 0));
            }
        }
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, _ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        // Laziness: nothing to do at acquire; stale copies were invalidated
        // when the home node integrated the corresponding diffs.
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, _lock: LockId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let modified = rt.page_table(node).modified_pages();
        // Non-home pages: ship the twin diffs to their home nodes.
        protolib::flush_diffs_to_homes(ctx.pm2.sim, node, &rt, &modified, false);
        // Re-protect the flushed copies (the original protocol write-protects
        // the page again at release): the next write after this release takes
        // a fault, which re-creates the twin that the following release will
        // diff against.
        for &page in &modified {
            if rt.page_meta(page).home == node {
                continue;
            }
            if rt.page_table(node).access(page) == dsmpm2_core::Access::Write {
                rt.page_table(node)
                    .set_access(page, dsmpm2_core::Access::Read);
                ctx.pm2.sim.charge(rt.costs().table_update());
            }
        }
        // Pages homed here: the reference copy changed in place, so remote
        // copies are stale and must be invalidated before the release
        // completes (they will be refetched on demand). All rounds are sent
        // first and the acknowledgements collected together, so the rounds
        // overlap in the network instead of serializing page by page — and
        // invalidations addressed to the same copy holder leave in one
        // same-tick burst the per-tick batcher can coalesce.
        let mut in_flight = Vec::new();
        for page in modified {
            if rt.page_meta(page).home != node {
                continue;
            }
            let (targets, version) = rt.page_table(node).read(page, |e| {
                let targets: Vec<NodeId> =
                    e.copyset.iter().copied().filter(|&n| n != node).collect();
                (targets, e.version)
            });
            if targets.is_empty() {
                continue;
            }
            protolib::send_copyset_invalidations(
                ctx.pm2.sim,
                node,
                &rt,
                page,
                &targets,
                None,
                version,
            );
            // Drop the condemned targets from the copyset *now*, before any
            // blocking: there is no yield point between the send and this
            // update, so a target that refetches the page while the ack wait
            // below blocks is re-inserted by the page server and survives —
            // whereas a post-wait retain would wrongly drop that fresh copy
            // (it is indistinguishable from the original membership) and
            // leave the node permanently stale.
            rt.page_table(node).update(page, |e| {
                e.copyset.retain(|n| !targets.contains(n));
            });
            in_flight.push(page);
        }
        for page in in_flight {
            protolib::await_invalidation_acks(ctx.pm2.sim, node, &rt, page);
        }
    }

    fn diff_server(&self, ctx: &mut ServerCtx<'_>, diff: PageDiff, from: NodeId) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let page = diff.page;
        let bytes = diff.modified_bytes();
        rt.frames(node).apply_diff(page, &diff);
        rt.page_table(node).update(page, |e| {
            e.version += 1;
        });
        ctx.sim.charge(rt.costs().diff_apply(bytes));
        // Home-based invalidation of third-party copies: nodes other than the
        // releaser lose their (now stale) copies and will refetch on demand.
        protolib::home_invalidate_other_copies(ctx.sim, node, &rt, page, from);
    }
}
