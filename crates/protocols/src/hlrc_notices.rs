//! `hlrc_notices` — home-based *lazy* release consistency with write notices.
//!
//! The paper's related-work section singles out TreadMarks for "the impact of
//! laziness in coherence propagation". The built-in `hbrc_mw` protocol is
//! *home-based* but still propagates coherence eagerly: the home invalidates
//! every third-party copy as soon as a diff is integrated. This protocol is
//! the lazy alternative, built on the same toolbox:
//!
//! * releases still push twin diffs to the home nodes (so the reference copy
//!   is always up to date), but the home does **not** invalidate anybody;
//! * instead, the releaser records a *write notice* (the list of pages it
//!   modified) against the lock being released — conceptually, the notice is
//!   piggybacked on the lock-transfer message, which is how TreadMarks and
//!   the home-based LRC protocols ship them;
//! * on acquire, the acquiring node consumes the notices it has not yet seen
//!   for that lock and drops its now-stale copies of the noticed pages; they
//!   are re-fetched from the home on the next access.
//!
//! Compared to `hbrc_mw`, nodes that never re-synchronize never pay any
//! invalidation traffic; the price is that an acquire must process the
//! accumulated notices. The `ablations` benchmark binary measures both
//! effects.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use dsmpm2_core::protolib;
use dsmpm2_core::{
    Access, ConsistencyModel, DsmProtocol, DsmThreadCtx, FaultInfo, Invalidation, LockId, NodeId,
    PageDiff, PageId, PageRequest, PageTransfer, ServerCtx,
};

/// One write notice: an interval stamp, the releasing node and the pages it
/// modified during that interval.
#[derive(Clone, Debug)]
struct WriteNotice {
    interval: u64,
    releaser: NodeId,
    pages: Vec<PageId>,
}

/// The `hlrc_notices` protocol (home-based lazy release consistency).
#[derive(Debug, Default)]
pub struct HlrcNotices {
    /// Global interval counter (each release opens a new interval).
    next_interval: AtomicU64,
    /// lock id → write notices recorded under that lock, oldest first.
    notices: Mutex<HashMap<u64, Vec<WriteNotice>>>,
    /// (lock id, acquiring node) → last interval already consumed.
    last_seen: Mutex<HashMap<(u64, NodeId), u64>>,
}

impl HlrcNotices {
    /// Create the protocol.
    pub fn new() -> Self {
        HlrcNotices::default()
    }

    /// Number of write notices currently retained (all locks). Exposed for
    /// tests and the ablation benchmarks.
    pub fn retained_notices(&self) -> usize {
        self.notices.lock().values().map(|v| v.len()).sum()
    }

    /// Record a write notice for `pages` under `lock`.
    fn record_notice(&self, lock: LockId, releaser: NodeId, pages: Vec<PageId>) {
        if pages.is_empty() {
            return;
        }
        let interval = self.next_interval.fetch_add(1, Ordering::SeqCst) + 1;
        self.notices
            .lock()
            .entry(lock.0)
            .or_default()
            .push(WriteNotice {
                interval,
                releaser,
                pages,
            });
    }

    /// The pages another node modified under `lock` since `node` last
    /// acquired it. Advances the node's last-seen interval.
    fn consume_notices(&self, lock: LockId, node: NodeId) -> Vec<PageId> {
        let notices = self.notices.lock();
        let Some(list) = notices.get(&lock.0) else {
            return Vec::new();
        };
        let mut last_seen = self.last_seen.lock();
        let seen = last_seen.entry((lock.0, node)).or_insert(0);
        let mut stale = BTreeSet::new();
        let mut newest = *seen;
        for notice in list.iter().filter(|n| n.interval > *seen) {
            newest = newest.max(notice.interval);
            if notice.releaser != node {
                stale.extend(notice.pages.iter().copied());
            }
        }
        *seen = newest;
        stale.into_iter().collect()
    }
}

impl DsmProtocol for HlrcNotices {
    fn name(&self) -> &str {
        "hlrc_notices"
    }

    fn consistency(&self) -> ConsistencyModel {
        ConsistencyModel::Release
    }

    fn multiple_writers(&self) -> bool {
        true
    }

    fn read_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, fault.page, Access::Read);
    }

    fn write_fault_handler(&self, ctx: &mut DsmThreadCtx<'_, '_>, fault: FaultInfo) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let page = fault.page;
        if rt.frames(node).has(page) && rt.page_table(node).access(page) != Access::None {
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
            rt.page_table(node).set_access(page, Access::Write);
            ctx.pm2.sim.charge(rt.costs().table_update());
        } else {
            protolib::request_page_and_wait(ctx.pm2.sim, node, &rt, page, Access::Write);
            protolib::ensure_twin(ctx.pm2.sim, node, &rt, page);
        }
    }

    fn read_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Read);
    }

    fn write_server(&self, ctx: &mut ServerCtx<'_>, req: PageRequest) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::serve_copy_from_home(ctx.sim, node, &rt, &req, Access::Write);
    }

    fn invalidate_server(&self, ctx: &mut ServerCtx<'_>, inv: Invalidation) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::apply_invalidation(ctx.sim, node, &rt, &inv);
    }

    fn receive_page_server(&self, ctx: &mut ServerCtx<'_>, transfer: PageTransfer) {
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        protolib::install_received_page(ctx.sim, node, &rt, &transfer);
    }

    fn lock_acquire(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let stale = self.consume_notices(lock, node);
        for page in stale {
            // Processing one notice is a page-table lookup + update; the
            // notices themselves travel with the lock grant we already paid
            // for.
            ctx.pm2.sim.charge(rt.costs().table_update());
            if rt.page_meta(page).home == node {
                // The home copy is authoritative (diffs were applied there).
                continue;
            }
            let (modified_since_release, access) = rt
                .page_table(node)
                .read(page, |e| (e.modified_since_release, e.access));
            if modified_since_release {
                // Our own unpublished writes live here; they will be merged
                // through a diff at our next release, so keep the copy.
                continue;
            }
            if rt.frames(node).has(page) && access != Access::None {
                rt.frames(node).evict(page);
                rt.page_table(node).set_access(page, Access::None);
            }
        }
    }

    fn lock_release(&self, ctx: &mut DsmThreadCtx<'_, '_>, lock: LockId) {
        let rt = ctx.runtime().clone();
        let node = ctx.node();
        let modified = rt.page_table(node).modified_pages();
        if modified.is_empty() {
            return;
        }
        // Push the diffs home so the reference copies are up to date...
        protolib::flush_diffs_to_homes(ctx.pm2.sim, node, &rt, &modified, false);
        // ...re-protect the flushed copies so the next critical section
        // faults, re-twins and produces a fresh diff...
        for &page in &modified {
            if rt.page_meta(page).home == node {
                continue;
            }
            if rt.page_table(node).access(page) == Access::Write {
                rt.page_table(node).set_access(page, Access::Read);
                ctx.pm2.sim.charge(rt.costs().table_update());
            }
        }
        // ...and leave a write notice for the next acquirer instead of
        // invalidating anybody now (laziness).
        self.record_notice(lock, node, modified);
    }

    fn diff_server(&self, ctx: &mut ServerCtx<'_>, diff: PageDiff, from: NodeId) {
        // Home side: integrate the diff and bump the version, but perform no
        // eager invalidation — stale copies are dealt with lazily at acquire
        // time through the write notices.
        let rt = ctx.runtime.clone();
        let node = ctx.local_node;
        let bytes = diff.modified_bytes();
        rt.frames(node).apply_diff(diff.page, &diff);
        rt.page_table(node).update(diff.page, |e| {
            e.version += 1;
            e.copyset.insert(from);
        });
        ctx.sim.charge(rt.costs().diff_apply(bytes));
    }
}
